"""Tests for the WGTT cyclic queue and index allocator."""

import pytest

from repro.core.cyclic_queue import CyclicQueue, IndexAllocator
from repro.net.packet import Packet


def pkt(seq=0):
    return Packet("server", "client0", 1500, seq=seq)


class TestCyclicQueue:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            CyclicQueue(1000)

    def test_insert_then_pop_in_order(self):
        queue = CyclicQueue(4096)
        for i in range(5):
            queue.insert(i, pkt(i))
        popped = [queue.pop_head() for _ in range(5)]
        assert [(i, p.seq) for i, p in popped] == [(i, i) for i in range(5)]
        assert queue.pop_head() is None

    def test_pop_skips_fanout_gap(self):
        """Indices missing because the AP was out of the fan-out set
        will never arrive (FIFO backhaul) — pop skips them."""
        queue = CyclicQueue(4096)
        queue.insert(0, pkt(0))
        queue.insert(5, pkt(5))  # 1-4 never arrived
        assert queue.pop_head()[0] == 0
        index, packet = queue.pop_head()
        assert index == 5 and packet.seq == 5
        assert queue.head == 6

    def test_reader_never_passes_writer(self):
        """Slots beyond the write edge hold previous-lap leftovers and
        must never be served (the m=12 uniqueness guarantee): a
        start(c, k) with k ahead of everything we hold proves our whole
        buffer is stale."""
        queue = CyclicQueue(16)
        for i in range(4, 8):
            queue.insert(i, pkt(100 + i))  # stale lap, edge = 8
        dropped = queue.advance_to(10)  # k ahead of the write edge
        assert dropped == 4
        assert queue.occupancy() == 0
        assert queue.pop_head() is None
        queue.insert(10, pkt(10))
        queue.insert(11, pkt(11))
        assert queue.pop_head()[1].seq == 10
        assert queue.pop_head()[1].seq == 11
        assert queue.pop_head() is None

    def test_advance_to_drops_passed_slots(self):
        queue = CyclicQueue(4096)
        for i in range(10):
            queue.insert(i, pkt(i))
        dropped = queue.advance_to(6)
        assert dropped == 6
        assert queue.pop_head()[0] == 6
        assert queue.backlog() == 3

    def test_advance_beyond_edge_clears_everything(self):
        queue = CyclicQueue(4096)
        for i in range(10):
            queue.insert(i, pkt(i))
        dropped = queue.advance_to(500)
        assert dropped == 10
        assert queue.occupancy() == 0
        assert queue.pop_head() is None
        # fresh data from the new position flows normally
        queue.insert(500, pkt(500))
        assert queue.pop_head()[0] == 500

    def test_backlog_counts_only_serveable(self):
        queue = CyclicQueue(4096)
        for i in range(8):
            queue.insert(i, pkt(i))
        queue.pop_head()
        assert queue.backlog() == 7

    def test_backlog_packets_sorted(self):
        queue = CyclicQueue(4096)
        for i in (3, 1, 2):
            queue.insert(i, pkt(i))
        assert [i for i, _ in queue.backlog_packets()] == [1, 2, 3]

    def test_overwrite_counted(self):
        queue = CyclicQueue(4096)
        queue.insert(7, pkt(1))
        queue.insert(7, pkt(2))
        assert queue.overwrites == 1

    def test_wraparound_pop(self):
        queue = CyclicQueue(16)
        queue.advance_to(14)
        for i in (14, 15, 0, 1):
            queue.insert(i, pkt(i))
        order = [queue.pop_head()[0] for _ in range(4)]
        assert order == [14, 15, 0, 1]

    def test_full_lap_insertion(self):
        queue = CyclicQueue(64)
        for i in range(64):
            queue.insert(i, pkt(i))
        assert queue.backlog() <= 64
        popped = 0
        while queue.pop_head() is not None:
            popped += 1
        assert popped > 0


class TestIndexAllocator:
    def test_sequential_per_client(self):
        alloc = IndexAllocator(4096)
        assert [alloc.allocate("a") for _ in range(3)] == [0, 1, 2]
        assert alloc.allocate("b") == 0

    def test_wraps_at_size(self):
        alloc = IndexAllocator(8)
        for _ in range(8):
            alloc.allocate("a")
        assert alloc.allocate("a") == 0

    def test_peek_does_not_consume(self):
        alloc = IndexAllocator(4096)
        alloc.allocate("a")
        assert alloc.peek("a") == 1
        assert alloc.peek("a") == 1
