"""Fault-injection tests: the switching protocol under a lossy
backhaul, the chaos rig (crash / partition / jitter / CSI blackout),
liveness-driven emergency failover, and determinism of it all."""

import pytest

from repro.faults import ApCrash, CsiBlackout, FaultPlan, LinkJitter, Partition
from repro.metrics.recorder import FailoverAudit
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND
from repro.sim.rng import RngRegistry


def lossy_testbed(loss_rate: float, seed: int = 3):
    testbed = build_testbed(
        TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[15.0],
                      client_start_x_m=6.0)
    )
    # Inject loss after construction so registration is unaffected.
    testbed.backhaul.loss_rate = loss_rate
    testbed.backhaul._loss_rng = testbed.rng.stream("backhaul-loss")
    return testbed


class TestLossyBackhaul:
    def test_backhaul_loss_parameter_validated(self):
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            EthernetBackhaul(Simulator(), loss_rate=1.5)
        with pytest.raises(ValueError):
            EthernetBackhaul(Simulator(), loss_rate=-0.1)

    def test_total_blackhole_is_a_legal_fault(self):
        """loss_rate == 1.0 models a black-holed wire and must be
        accepted (only values outside [0, 1] are invalid)."""
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        sim = Simulator()
        backhaul = EthernetBackhaul(sim, loss_rate=1.0)
        got = []
        backhaul.register("dst", lambda *a: got.append(a))
        backhaul.send("src", "dst", "data", "x")
        sim.run()
        assert got == []
        assert backhaul.dropped == 1

    def test_missing_loss_rng_defaults_instead_of_disabling(self):
        """The old bug: loss_rate > 0 with no rng silently disabled
        loss.  Now a default seeded stream is built on first use."""
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        sim = Simulator()
        backhaul = EthernetBackhaul(sim, loss_rate=0.5)  # no loss_rng
        backhaul.register("dst", lambda *a: None)
        for _ in range(200):
            backhaul.send("src", "dst", "data", "x")
        sim.run()
        assert 30 < backhaul.dropped < 170  # loss actually engaged

    def test_default_loss_stream_is_reproducible(self):
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        def run_once():
            sim = Simulator()
            backhaul = EthernetBackhaul(sim, loss_rate=0.3)
            delivered = []
            backhaul.register("dst", lambda s, k, p: delivered.append(p))
            for i in range(100):
                backhaul.send("src", "dst", "data", i)
            sim.run()
            return delivered

        assert run_once() == run_once()

    def test_messages_actually_dropped(self):
        testbed = lossy_testbed(0.5)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(2.0)
        assert testbed.backhaul.dropped > 100

    def test_switching_survives_control_loss(self):
        """Lost stop/start/ack messages trigger the 30 ms retransmission
        and the system keeps making forward progress (paper §3.1.2)."""
        testbed = lossy_testbed(0.10)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(8.0)
        history = testbed.controller.coordinator.history
        completed = [r for r in history if r.completed_us is not None]
        assert len(completed) >= 3
        # some switches needed the retransmission path
        retried = [r for r in completed if r.retries > 0]
        assert retried, "10% loss should have forced at least one retry"
        # retried switches took at least one extra timeout round
        timeout = testbed.config.wgtt.switch_timeout_us
        assert all(r.duration_us >= timeout for r in retried)
        # and data still flowed (10% of tunneled datagrams are lost on
        # the wire too, so throughput is necessarily modest)
        assert sender.snd_una > 150

    def test_clean_backhaul_never_retries(self):
        testbed = lossy_testbed(0.0)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(6.0)
        history = testbed.controller.coordinator.history
        assert history
        assert all(r.retries == 0 for r in history)


class TestUplinkTcp:
    def test_uplink_tcp_flow_over_wgtt(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        sender, receiver = testbed.add_uplink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        # client -> APs -> controller (de-dup) -> server, ACKs back down
        assert sender.snd_una > 200
        assert receiver.rcv_nxt >= sender.snd_una

    def test_uplink_tcp_flow_over_baseline(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="baseline", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        sender, receiver = testbed.add_uplink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        assert sender.snd_una > 200


def chaos_testbed(plan=None, seed=3, **overrides):
    config = TestbedConfig(
        seed=seed, scheme="wgtt", fault_plan=plan, **overrides
    )
    return build_testbed(config)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            [
                ApCrash(at_us=300, ap_id="ap1"),
                CsiBlackout(at_us=100, duration_us=50, ap_id="ap0"),
                Partition(
                    at_us=200, duration_us=50,
                    side_a={"ap0"}, side_b={"controller"},
                ),
            ]
        )
        assert [e.at_us for e in plan] == [100, 200, 300]

    def test_validation(self):
        with pytest.raises(ValueError):
            ApCrash(at_us=-1, ap_id="ap0")
        with pytest.raises(ValueError):
            ApCrash(at_us=0, ap_id="ap0", down_us=0)
        with pytest.raises(ValueError):
            Partition(at_us=0, duration_us=10,
                      side_a={"a"}, side_b={"a", "b"})
        with pytest.raises(ValueError):
            LinkJitter(at_us=0, duration_us=10, src="a", dst="b", jitter_us=0)
        with pytest.raises(ValueError):
            CsiBlackout(at_us=0, duration_us=0, ap_id="ap0")

    def test_random_plan_reproducible(self):
        def draw():
            rng = RngRegistry(42).spawn("faultplan")
            return FaultPlan.random(
                rng, ["ap0", "ap1", "ap2"], 10 * SECOND,
                crash_rate_per_s=0.5, partition_rate_per_s=0.3,
                jitter_rate_per_s=0.3, csi_blackout_rate_per_s=0.3,
            )

        assert draw().describe() == draw().describe()

    def test_random_plan_rate_zero_is_empty(self):
        rng = RngRegistry(1)
        plan = FaultPlan.random(rng, ["ap0"], SECOND)
        assert len(plan) == 0


class TestApCrash:
    def test_crash_silences_ap(self):
        testbed = chaos_testbed()
        ap = testbed.wgtt_aps["ap0"]
        testbed.run_seconds(0.5)
        heartbeats_before = ap.stats["heartbeats_sent"]
        assert heartbeats_before > 0
        testbed.crash_ap("ap0")
        assert not ap.alive
        assert not ap.device.powered
        assert testbed.backhaul.is_node_down("ap0")
        testbed.run_seconds(0.5)
        assert ap.stats["heartbeats_sent"] == heartbeats_before

    def test_restart_resyncs_associations(self):
        testbed = chaos_testbed()
        testbed.run_seconds(0.2)
        testbed.crash_ap("ap0")
        assert not testbed.wgtt_aps["ap0"].directory.clients()
        testbed.run_seconds(0.2)
        testbed.restart_ap("ap0")
        testbed.run_seconds(0.2)
        ap = testbed.wgtt_aps["ap0"]
        assert ap.alive and ap.device.powered
        # sta-sync replay restored the association directory
        assert "client0" in ap.directory.clients()
        assert testbed.controller.stats["ap_resyncs"] >= 1

    def test_liveness_declares_crashed_ap_dead(self):
        testbed = chaos_testbed()
        testbed.run_seconds(0.5)
        testbed.crash_ap("ap5")  # not the serving AP at t=0.5s
        testbed.run_seconds(0.5)
        controller = testbed.controller
        assert "ap5" in controller.dead_aps()
        assert controller.stats["aps_declared_dead"] == 1
        # detection within the documented bound (plus the one-way
        # backhaul control latency the last heartbeat rode on)
        config = testbed.config.wgtt
        bound = (
            (config.heartbeat_miss_limit + 1) * config.heartbeat_interval_us
            + testbed.backhaul.control_latency_us
        )
        down_events = [e for e in controller.liveness.events if e[1] == "down"]
        assert down_events[0][0] - int(0.5 * SECOND) <= bound
        # recovery on restart
        testbed.restart_ap("ap5")
        testbed.run_seconds(0.2)
        assert "ap5" not in testbed.controller.dead_aps()
        assert controller.stats["aps_recovered"] == 1


class TestEmergencyFailover:
    def test_mid_drive_crash_fails_over_within_deadline(self):
        """The acceptance scenario: kill the serving AP mid-drive; the
        client must be re-served by a live AP within the deadline and
        TCP must keep making forward progress."""
        testbed = chaos_testbed()
        sender, receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(2.0)
        victim = testbed.serving_ap_of(0)
        crash_us = testbed.sim.now
        testbed.install_fault_plan(
            FaultPlan([ApCrash(at_us=crash_us, ap_id=victim,
                               down_us=2 * SECOND)])
        )
        segments_at_crash = receiver.rcv_nxt
        testbed.run_seconds(3.0)

        audit = FailoverAudit(testbed)
        summary = audit.summary()
        assert summary["crashes"] == 1
        assert summary["recovered"] == 1
        assert summary["unrecovered"] == 0
        assert summary["deadline_violations"] == 0
        assert summary["max_failover_ms"] is not None
        assert summary["max_failover_ms"] <= (
            testbed.config.wgtt.failover_deadline_us / 1_000.0
        )
        # the new serving AP is live and different
        new_ap = testbed.serving_ap_of(0)
        assert new_ap != victim
        assert new_ap not in testbed.controller.dead_aps()
        # the failover handshake is recorded as such
        assert testbed.controller.failover_records()
        # TCP kept flowing after the crash
        assert receiver.rcv_nxt > segments_at_crash

    def test_failover_restarts_from_fanned_out_backlog(self):
        """The adopting AP resumes from its own cyclic-queue backlog —
        the paper's fan-out makes failover nearly free."""
        testbed = chaos_testbed()
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(2.0)
        victim = testbed.serving_ap_of(0)
        testbed.install_fault_plan(
            FaultPlan([ApCrash(at_us=testbed.sim.now, ap_id=victim)])
        )
        testbed.run_seconds(1.0)
        new_ap = testbed.serving_ap_of(0)
        assert new_ap != victim
        assert testbed.wgtt_aps[new_ap].stats["failovers_handled"] >= 1


class TestPartition:
    def test_partition_blocks_and_heal_restores(self):
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("a", lambda *m: got.append(("a", m)))
        backhaul.register("b", lambda *m: got.append(("b", m)))
        pid = backhaul.partition({"a"}, {"b"})
        backhaul.send("a", "b", "data", 1)
        backhaul.send("b", "a", "data", 2)
        sim.run()
        assert got == []
        assert backhaul.stats.fault_dropped == 2
        backhaul.heal(pid)
        backhaul.send("a", "b", "data", 3)
        sim.run()
        assert len(got) == 1

    def test_partitioned_aps_declared_dead_then_recover(self):
        testbed = chaos_testbed()
        testbed.run_seconds(0.3)
        start = testbed.sim.now
        testbed.install_fault_plan(
            FaultPlan([
                Partition(
                    at_us=start,
                    duration_us=int(0.5 * SECOND),
                    side_a={"ap6", "ap7"},
                    side_b={"controller"} | {f"ap{i}" for i in range(6)},
                )
            ])
        )
        testbed.run_seconds(0.4)
        assert {"ap6", "ap7"} <= testbed.controller.dead_aps()
        testbed.run_seconds(0.6)  # heal + heartbeats resume
        assert not ({"ap6", "ap7"} & testbed.controller.dead_aps())


class TestCsiBlackout:
    def test_blackout_suppresses_reports_then_recovers(self):
        testbed = chaos_testbed(client_speeds_mph=[0.0],
                                client_start_x_m=11.0)
        source, _ = testbed.add_uplink_udp_flow(0, rate_bps=3e6)
        source.start()
        testbed.run_seconds(0.5)
        ap0 = testbed.wgtt_aps["ap0"]
        before = ap0.stats["csi_reports"]
        assert before > 0
        testbed.install_fault_plan(
            FaultPlan([
                CsiBlackout(at_us=testbed.sim.now,
                            duration_us=int(0.5 * SECOND), ap_id="ap0")
            ])
        )
        testbed.run_seconds(0.5)
        during = ap0.stats["csi_reports"]
        assert during == before  # nothing reported while suppressed
        assert ap0.stats["csi_suppressed"] > 0
        testbed.run_seconds(0.5)
        assert ap0.stats["csi_reports"] > during  # reports resumed


class TestLinkJitter:
    def test_jitter_delays_and_reorders(self):
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        rng = RngRegistry(7).stream("test-jitter")
        backhaul.set_link_jitter("src", "dst", 5_000, rng)
        for i in range(50):
            backhaul.send_control("src", "dst", "data", i)
        sim.run()
        assert sorted(got) == list(range(50))
        assert got != list(range(50))  # at least one reorder
        backhaul.clear_link_jitter("src", "dst")
        got.clear()
        for i in range(10):
            backhaul.send_control("src", "dst", "data", i)
        sim.run()
        assert got == list(range(10))  # order restored


class TestDeterministicChaos:
    def _run_chaos(self, seed):
        rng = RngRegistry(seed).spawn("faultplan")
        plan = FaultPlan.random(
            rng, [f"ap{i}" for i in range(8)], 4 * SECOND,
            crash_rate_per_s=0.5, crash_down_us=SECOND,
            partition_rate_per_s=0.3, partition_duration_us=200_000,
        )
        testbed = chaos_testbed(plan=plan, seed=seed)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(4.0)
        return {
            "fault_trace": testbed.fault_injector.trace_lines(),
            "liveness": list(testbed.controller.liveness.events),
            "timeline": list(testbed.controller.serving_timeline),
            "history": [
                (r.client, r.from_ap, r.to_ap, r.started_us,
                 r.completed_us, r.retries, r.outcome, r.failover)
                for r in testbed.controller.coordinator.history
            ],
            "snd_una": sender.snd_una,
        }

    def test_same_seed_same_plan_byte_identical(self):
        """The determinism contract: identical (seed, plan) pairs give
        byte-identical fault traces AND byte-identical protocol
        behaviour (liveness events, failovers, switch history)."""
        a = self._run_chaos(11)
        b = self._run_chaos(11)
        assert a == b

    def test_different_seed_different_trace(self):
        a = self._run_chaos(11)
        b = self._run_chaos(12)
        assert a["fault_trace"] != b["fault_trace"]


class TestFaultFreeEquivalence:
    def test_fault_free_run_is_clean(self):
        """No faults -> no retries, no failovers, no aborts, no dead
        APs: the robustness machinery is invisible on a healthy array."""
        testbed = chaos_testbed()
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(5.0)
        controller = testbed.controller
        history = controller.coordinator.history
        assert history
        assert all(r.retries == 0 for r in history)
        assert all(r.outcome == "completed" for r in history)
        assert all(not r.failover for r in history)
        assert controller.coordinator.aborted == 0
        assert controller.dead_aps() == set()
        assert controller.stats["failovers_initiated"] == 0
        assert controller.liveness.events == []
        assert testbed.backhaul.stats.fault_dropped == 0

    def test_empty_fault_plan_identical_to_no_plan(self):
        def fingerprint(plan):
            testbed = chaos_testbed(plan=plan)
            sender, _ = testbed.add_downlink_tcp_flow(0)
            sender.start()
            testbed.run_seconds(3.0)
            return (
                sender.snd_una,
                list(testbed.controller.serving_timeline),
            )

        assert fingerprint(None) == fingerprint(FaultPlan())


class TestMultiChannel:
    def test_cross_channel_deafness(self):
        """APs on another channel hear nothing from the client."""
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=11.0, channel_plan=[1, 6, 11])
        )
        # client associated to ap0 (channel 1); retuned at association
        assert testbed.clients[0].device.channel == 1
        source, _ = testbed.add_uplink_udp_flow(0, rate_bps=3e6)
        source.start()
        testbed.run_seconds(2.0)
        # ap1 (channel 6) is nearby but tuned away: zero CSI from it
        assert testbed.wgtt_aps["ap1"].stats["csi_reports"] == 0
        assert testbed.wgtt_aps["ap0"].stats["csi_reports"] > 50

    def test_single_channel_default(self):
        testbed = build_testbed(TestbedConfig(seed=3, scheme="wgtt"))
        channels = {ap.device.channel for ap in testbed.wgtt_aps.values()}
        assert channels == {11}
