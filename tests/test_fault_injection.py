"""Fault-injection tests: the switching protocol under a lossy
backhaul, and related robustness paths."""

import pytest

from repro.scenarios.testbed import TestbedConfig, build_testbed


def lossy_testbed(loss_rate: float, seed: int = 3):
    testbed = build_testbed(
        TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[15.0],
                      client_start_x_m=6.0)
    )
    # Inject loss after construction so registration is unaffected.
    testbed.backhaul.loss_rate = loss_rate
    testbed.backhaul._loss_rng = testbed.rng.stream("backhaul-loss")
    return testbed


class TestLossyBackhaul:
    def test_backhaul_loss_parameter_validated(self):
        from repro.net.backhaul import EthernetBackhaul
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            EthernetBackhaul(Simulator(), loss_rate=1.5)

    def test_messages_actually_dropped(self):
        testbed = lossy_testbed(0.5)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(2.0)
        assert testbed.backhaul.dropped > 100

    def test_switching_survives_control_loss(self):
        """Lost stop/start/ack messages trigger the 30 ms retransmission
        and the system keeps making forward progress (paper §3.1.2)."""
        testbed = lossy_testbed(0.10)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(8.0)
        history = testbed.controller.coordinator.history
        completed = [r for r in history if r.completed_us is not None]
        assert len(completed) >= 3
        # some switches needed the retransmission path
        retried = [r for r in completed if r.retries > 0]
        assert retried, "10% loss should have forced at least one retry"
        # retried switches took at least one extra timeout round
        timeout = testbed.config.wgtt.switch_timeout_us
        assert all(r.duration_us >= timeout for r in retried)
        # and data still flowed (10% of tunneled datagrams are lost on
        # the wire too, so throughput is necessarily modest)
        assert sender.snd_una > 150

    def test_clean_backhaul_never_retries(self):
        testbed = lossy_testbed(0.0)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(6.0)
        history = testbed.controller.coordinator.history
        assert history
        assert all(r.retries == 0 for r in history)


class TestUplinkTcp:
    def test_uplink_tcp_flow_over_wgtt(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        sender, receiver = testbed.add_uplink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        # client -> APs -> controller (de-dup) -> server, ACKs back down
        assert sender.snd_una > 200
        assert receiver.rcv_nxt >= sender.snd_una

    def test_uplink_tcp_flow_over_baseline(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="baseline", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        sender, receiver = testbed.add_uplink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        assert sender.snd_una > 200


class TestMultiChannel:
    def test_cross_channel_deafness(self):
        """APs on another channel hear nothing from the client."""
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=11.0, channel_plan=[1, 6, 11])
        )
        # client associated to ap0 (channel 1); retuned at association
        assert testbed.clients[0].device.channel == 1
        source, _ = testbed.add_uplink_udp_flow(0, rate_bps=3e6)
        source.start()
        testbed.run_seconds(2.0)
        # ap1 (channel 6) is nearby but tuned away: zero CSI from it
        assert testbed.wgtt_aps["ap1"].stats["csi_reports"] == 0
        assert testbed.wgtt_aps["ap0"].stats["csi_reports"] > 50

    def test_single_channel_default(self):
        testbed = build_testbed(TestbedConfig(seed=3, scheme="wgtt"))
        channels = {ap.device.channel for ap in testbed.wgtt_aps.values()}
        assert channels == {11}
