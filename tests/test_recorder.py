"""Tests for the run-time recorders (rate log, uplink loss meter)."""

from repro.metrics.recorder import RateUsageLog, UplinkLossMeter
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim import Simulator


class FakeCounter:
    def __init__(self):
        self.packets_sent = 0
        self._received = 0

    def packets_received(self):
        return self._received


class TestUplinkLossMeter:
    def test_windowed_loss(self):
        sim = Simulator()
        source, sink = FakeCounter(), FakeCounter()
        meter = UplinkLossMeter(sim, source, sink)
        source.packets_sent = 100
        sink._received = 90
        meter.sample()
        source.packets_sent = 200
        sink._received = 190
        meter.sample()
        rates = meter.loss_rates()
        assert abs(rates[0] - 0.1) < 1e-9
        assert rates[1] == 0.0

    def test_no_traffic_is_zero_loss(self):
        sim = Simulator()
        meter = UplinkLossMeter(sim, FakeCounter(), FakeCounter())
        meter.sample()
        assert meter.loss_rates() == [0.0]

    def test_receiver_ahead_clamps_to_zero(self):
        sim = Simulator()
        source, sink = FakeCounter(), FakeCounter()
        meter = UplinkLossMeter(sim, source, sink)
        source.packets_sent = 10
        sink._received = 10
        meter.sample()
        # next bin: only deliveries (queue drain), no new sends
        sink._received = 15
        source.packets_sent = 10
        meter.sample()
        assert meter.loss_rates()[1] == 0.0


class TestRateUsageLog:
    def test_captures_rates_for_target_client(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        log = RateUsageLog(testbed, client_id="client0")
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=20e6)
        source.start()
        testbed.run_seconds(1.5)
        rates = log.rates_mbps()
        assert rates
        assert all(5.0 <= r <= 72.2 for r in rates)
        # MPDU weighting yields more samples than per-aggregate logging
        assert len(rates) > len(log.rates_mbps(weight_by_mpdus=False))

    def test_coexists_with_other_event_subscribers(self):
        # The old monkey-patched device hook supported chaining; the
        # event-stream rewrite must allow multiple independent sinks.
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        seen = []
        testbed.sim.obs.trace.subscribe(
            lambda event: seen.append(event.tags["count"]),
            names=("ampdu-tx",),
        )
        log = RateUsageLog(testbed, client_id="client0")
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(1.0)
        assert seen  # the independent sink fires
        assert log.entries  # ...and so does the recorder
