"""End-to-end application-pipeline tests over the real testbed: video,
conferencing, and web on a parked (good-link) client."""


from repro.apps.conferencing import SKYPE, ConferencingReceiver, ConferencingSender
from repro.apps.video import VideoPlayer
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND


def parked_testbed(seed=3, scheme="wgtt"):
    return build_testbed(
        TestbedConfig(seed=seed, scheme=scheme, client_speeds_mph=[0.0],
                      client_start_x_m=9.5)
    )


def test_video_streams_cleanly_on_good_link():
    testbed = parked_testbed()
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    player = VideoPlayer(testbed.sim, receiver)
    sender.start()
    testbed.run_seconds(6.0)
    player.stop()
    assert player.rebuffer_count == 0
    assert player.rebuffer_ratio(6 * SECOND) == 0.0
    # playback really consumed media (~4.5 s of it after prebuffering)
    assert player.playback_us > 3 * SECOND


def test_video_stalls_when_scheme_cannot_deliver():
    """Throttle the link far below the video rate: the player must
    report a high rebuffer ratio, not silently zero."""
    testbed = parked_testbed()
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    sender._bulk = False
    player = VideoPlayer(testbed.sim, receiver, bitrate_bps=3_000_000)
    sender.start()
    # Supply only ~1 s of media over 6 s of wall clock.
    from repro.transport.tcp import MSS

    sender.supply(int(3_000_000 / 8 / MSS))
    testbed.run_seconds(6.0)
    player.stop()
    assert player.rebuffer_ratio(6 * SECOND) > 0.4


def test_conferencing_over_real_testbed():
    testbed = parked_testbed()
    client = testbed.clients[0]
    down = ConferencingSender(
        testbed.sim, "server", client.client_id, testbed.send_downlink,
        SKYPE, flow_id="conf-dl",
    )
    down_rx = ConferencingReceiver(testbed.sim, "conf-dl", down)
    client.host.attach_raw("conf-dl", down_rx.on_packet)
    down.start()
    testbed.run_seconds(5.0)
    fps = down_rx.fps_series()
    assert fps
    mid = fps[len(fps) // 2]
    assert mid >= SKYPE.target_fps - 4  # near-perfect on a parked link


def test_web_load_faster_than_transit_budget():
    from repro.apps.web import PageLoad

    testbed = parked_testbed()
    page = PageLoad(testbed)
    testbed.run_seconds(10.0)
    assert page.complete
    assert page.load_time_s() < 8.0
