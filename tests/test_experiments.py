"""Smoke tests for the experiment-driver layer (cheap drivers only —
the expensive sweeps are exercised by the benchmark suite)."""


from repro.experiments import fig02, fig10, format_table
from repro.experiments.common import mean, seeds_for


class TestCommonHelpers:
    def test_seeds_for(self):
        assert len(seeds_for(quick=True)) < len(seeds_for(quick=False))

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_format_table(self):
        rows = [
            {"a": 1, "b": 2.5},
            {"a": 10, "b": float("inf")},
        ]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in text and "inf" in text
        assert len(lines) == 4

    def test_format_table_missing_key(self):
        text = format_table([{"a": 1}], ["a", "missing"])
        assert "-" in text


class TestFig02Driver:
    def test_returns_series_and_flip_stats(self):
        result = fig02.run(seed=3, quick=True)
        assert set(result["esnr_series"]) == {"ap0", "ap1", "ap2"}
        lengths = {len(s) for s in result["esnr_series"].values()}
        assert len(lengths) == 1
        assert result["flips"] >= 0
        assert 0.0 <= result["contested_fraction"] <= 1.0
        assert result["best_ap"][0] in result["esnr_series"]


class TestExtFaultsDriver:
    def test_registered_in_cli(self):
        from repro.cli import EXPERIMENTS

        assert "ext_faults" in EXPERIMENTS
        assert "ext_density" in EXPERIMENTS

    def test_smoke_recovers_within_deadline(self):
        """The CI chaos smoke: one mid-drive crash of the serving AP
        must fail over to a live AP inside the recovery deadline."""
        from repro.experiments import ext_faults

        result = ext_faults.run_smoke(seed=3)
        assert result["ok"] is True
        assert result["tcp_forward_progress"] is True
        assert result["summary"]["deadline_violations"] == 0
        assert all(
            latency <= result["deadline_ms"]
            for latency in result["failover_ms"]
        )

    def test_smoke_cli_exit_code(self):
        from repro.experiments import ext_faults

        assert ext_faults.main(["--smoke", "--seed", "3"]) == 0


class TestFig10Driver:
    def test_heatmap_geometry(self):
        result = fig10.run(seed=3)
        assert len(result["heatmap"]) == 8
        # each AP's kerbside ESNR peaks near its own x position
        xs = result["xs"]
        for i in range(8):
            row = result["heatmap"][f"ap{i}"][0]
            peak_x = xs[row.index(max(row))]
            assert abs(peak_x - (10.0 + 7.5 * i)) < 2.0
        # overlaps land in the paper's 6-10 m band (with slack)
        for overlap in result["overlaps_m"]:
            assert 4.0 <= overlap <= 12.0
