"""Tests for the testbed builder and scenario presets."""

import pytest

from repro.scenarios import (
    MIXED_DENSITY_AP_XS,
    TestbedConfig,
    build_testbed,
    dense_segment_bounds,
    following_config,
    mixed_density_config,
    multi_client_config,
    opposing_config,
    parallel_config,
    sparse_segment_bounds,
    two_ap_config,
)


class TestTestbedConfig:
    def test_default_ap_layout(self):
        config = TestbedConfig()
        xs = config.ap_xs()
        assert len(xs) == 8
        assert xs[0] == 10.0
        assert xs[1] - xs[0] == pytest.approx(7.5)

    def test_explicit_positions_override(self):
        config = TestbedConfig(ap_positions_m=[5.0, 20.0])
        assert config.ap_xs() == [5.0, 20.0]

    def test_road_covers_all_aps(self):
        config = TestbedConfig()
        assert config.road_length_m() > config.ap_xs()[-1]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_testbed(TestbedConfig(scheme="5g"))


class TestTestbedBuild:
    def test_wgtt_build_wires_everything(self):
        testbed = build_testbed(TestbedConfig(seed=1, scheme="wgtt"))
        assert testbed.controller is not None
        assert testbed.wlc is None
        assert len(testbed.wgtt_aps) == 8
        assert len(testbed.clients) == 1
        assert testbed.controller.ap_ids() == set(testbed.ap_ids)

    def test_baseline_build_wires_everything(self):
        testbed = build_testbed(TestbedConfig(seed=1, scheme="baseline"))
        assert testbed.wlc is not None
        assert testbed.controller is None
        assert len(testbed.baseline_aps) == 8
        assert testbed.clients[0].agent is not None

    def test_same_seed_same_channel(self):
        """Cross-scheme comparisons rely on identical fading given the
        same seed."""
        a = build_testbed(TestbedConfig(seed=5, scheme="wgtt"))
        b = build_testbed(TestbedConfig(seed=5, scheme="baseline"))
        snr_a = a.channel.link("ap0", "client0").subcarrier_snr_db(0)
        snr_b = b.channel.link("ap0", "client0").subcarrier_snr_db(0)
        assert snr_a.tolist() == snr_b.tolist()

    def test_run_determinism(self):
        def run():
            testbed = build_testbed(
                TestbedConfig(seed=9, scheme="wgtt", client_speeds_mph=[15.0])
            )
            sender, _ = testbed.add_downlink_tcp_flow(0)
            sender.start()
            testbed.run_seconds(2.0)
            return sender.snd_una, len(testbed.controller.coordinator.history)

        assert run() == run()

    def test_multiple_clients(self):
        config = multi_client_config(3, seed=1, scheme="wgtt")
        testbed = build_testbed(config)
        assert len(testbed.clients) == 3
        ids = {c.client_id for c in testbed.clients}
        assert ids == {"client0", "client1", "client2"}

    def test_keepalives_emitted_when_idle(self):
        testbed = build_testbed(
            TestbedConfig(seed=1, scheme="wgtt", client_speeds_mph=[0.0],
                          client_start_x_m=9.5)
        )
        testbed.run_seconds(2.0)
        assert testbed.clients[0].keepalives_sent > 10

    def test_keepalives_can_be_disabled(self):
        testbed = build_testbed(
            TestbedConfig(seed=1, scheme="wgtt", client_speeds_mph=[0.0],
                          client_keepalive_us=0)
        )
        testbed.run_seconds(1.0)
        assert testbed.clients[0].keepalives_sent == 0

    def test_ground_truth_probe_does_not_perturb(self):
        """Oracle sampling must not change the run (side-effect-free
        channel probes)."""

        def run(probe):
            testbed = build_testbed(
                TestbedConfig(seed=9, scheme="wgtt", client_speeds_mph=[15.0])
            )
            sender, _ = testbed.add_downlink_tcp_flow(0)
            sender.start()
            for _ in range(10):
                testbed.run_seconds(0.2)
                if probe:
                    testbed.best_ap_ground_truth(0, testbed.sim.now)
            return sender.snd_una

        assert run(False) == run(True)


class TestPresets:
    def test_two_ap_config(self):
        config = two_ap_config(seed=1, scheme="baseline")
        assert len(config.ap_xs()) == 2

    def test_mixed_density_layout(self):
        config = mixed_density_config(seed=1, scheme="wgtt")
        assert config.ap_xs() == MIXED_DENSITY_AP_XS
        dense = dense_segment_bounds()
        sparse = sparse_segment_bounds()
        dense_span = dense[1] - dense[0]
        sparse_span = sparse[1] - sparse[0]
        # same number of APs covers a longer stretch in the sparse part
        assert sparse_span > dense_span

    def test_following_spacing(self):
        config = following_config(speed_mph=15.0, count=3, spacing_m=3.0, seed=1)
        xs = [t.position_at(0).x for t in config.client_tracks]
        assert xs[0] - xs[1] == pytest.approx(3.0)

    def test_parallel_lanes_differ(self):
        config = parallel_config(speed_mph=15.0, seed=1)
        ys = {t.position_at(0).y for t in config.client_tracks}
        assert len(ys) == 2

    def test_opposing_directions(self):
        config = opposing_config(speed_mph=15.0, seed=1)
        a, b = config.client_tracks
        assert a.direction == 1 and b.direction == -1
