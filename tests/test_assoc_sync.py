"""Tests for association-state replication (hostapd sta_info sync)."""

from repro.core.assoc_sync import AssociationDirectory, StaInfo


def info(client="client0", first_ap="ap0", authorized=True):
    return StaInfo(
        client=client, associated_at_us=0, first_ap=first_ap,
        authorized=authorized,
    )


def test_admit_and_lookup():
    directory = AssociationDirectory()
    assert directory.admit(info())
    assert directory.is_associated("client0")
    assert directory.get("client0").first_ap == "ap0"


def test_double_admit_rejected():
    directory = AssociationDirectory()
    assert directory.admit(info())
    assert not directory.admit(info(first_ap="ap3"))
    # first writer wins (replication races resolve deterministically)
    assert directory.get("client0").first_ap == "ap0"


def test_unauthorized_not_associated():
    directory = AssociationDirectory()
    directory.admit(info(authorized=False))
    assert not directory.is_associated("client0")


def test_remove():
    directory = AssociationDirectory()
    directory.admit(info())
    directory.remove("client0")
    assert not directory.is_associated("client0")
    directory.remove("client0")  # idempotent


def test_clients_listing():
    directory = AssociationDirectory()
    directory.admit(info("a"))
    directory.admit(info("b"))
    assert directory.clients() == {"a", "b"}
