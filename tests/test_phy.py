"""Tests for the PHY models: BER curves, effective SNR, PER."""

import numpy as np
import pytest

from repro.phy.ber import (
    ber_16qam,
    ber_64qam,
    ber_bpsk,
    ber_qpsk,
    db_to_linear,
    linear_to_db,
    q_function,
    q_inverse,
    snr_for_ber_16qam,
    snr_for_ber_64qam,
    snr_for_ber_bpsk,
    snr_for_ber_qpsk,
)
from repro.phy.esnr import ESNR_CAP_DB, effective_snr_db
from repro.phy.mcs import (
    BASIC_RATE,
    CONTROL_RATE,
    MCS_TABLE,
    mcs_by_index,
)
from repro.phy.per import (
    best_rate_bps,
    coded_ber,
    expected_throughput_bps,
    mpdu_success_probability,
    preamble_success_probability,
)


def test_q_function_known_values():
    assert q_function(0.0) == pytest.approx(0.5)
    assert q_function(1.96) == pytest.approx(0.025, abs=2e-3)


def test_q_inverse_roundtrip():
    for p in [0.4, 0.1, 1e-3, 1e-6]:
        assert q_function(q_inverse(p)) == pytest.approx(p, rel=1e-6)


def test_db_linear_roundtrip():
    assert linear_to_db(db_to_linear(17.0)) == pytest.approx(17.0)
    assert db_to_linear(0.0) == pytest.approx(1.0)


@pytest.mark.parametrize(
    "ber,inverse,snr_points_db",
    [
        # Points chosen inside each curve's invertible range (above the
        # 1e-15 BER floor where inversion saturates by design).
        (ber_bpsk, snr_for_ber_bpsk, [1.0, 6.0, 10.0]),
        (ber_qpsk, snr_for_ber_qpsk, [3.0, 8.0, 13.0]),
        (ber_16qam, snr_for_ber_16qam, [5.0, 12.0, 18.0]),
        (ber_64qam, snr_for_ber_64qam, [8.0, 16.0, 24.0]),
    ],
)
def test_ber_inversion_roundtrip(ber, inverse, snr_points_db):
    for snr_db in snr_points_db:
        snr = db_to_linear(snr_db)
        assert inverse(ber(snr)) == pytest.approx(snr, rel=1e-6)


def test_ber_ordering_by_modulation():
    # At equal SNR, denser constellations always have higher BER.
    snr = db_to_linear(12.0)
    assert ber_bpsk(snr) < ber_qpsk(snr) < ber_16qam(snr) < ber_64qam(snr)


def test_ber_monotone_decreasing_in_snr():
    snrs = db_to_linear(np.linspace(-5, 30, 50))
    for ber in (ber_bpsk, ber_qpsk, ber_16qam, ber_64qam):
        values = ber(snrs)
        assert np.all(np.diff(values) <= 1e-18)


class TestMcsTable:
    def test_eight_entries_monotone_rates(self):
        assert len(MCS_TABLE) == 8
        rates = [m.data_rate_bps for m in MCS_TABLE]
        assert rates == sorted(rates)

    def test_top_rate_is_722(self):
        assert MCS_TABLE[-1].data_rate_bps == 72_200_000

    def test_lookup_and_bounds(self):
        assert mcs_by_index(3).modulation == "16qam"
        with pytest.raises(ValueError):
            mcs_by_index(8)
        with pytest.raises(ValueError):
            mcs_by_index(-1)

    def test_airtime(self):
        mcs = mcs_by_index(7)
        assert mcs.airtime_us(72_200_000) == pytest.approx(1e6)

    def test_control_and_basic_rates(self):
        assert CONTROL_RATE.data_rate_bps == 24_000_000
        assert BASIC_RATE.data_rate_bps == 6_000_000


class TestEffectiveSnr:
    def test_flat_channel_esnr_equals_snr(self):
        flat = np.full(56, 15.0)
        assert effective_snr_db(flat) == pytest.approx(15.0, abs=0.1)

    def test_esnr_below_mean_for_selective_channel(self):
        # One deep-faded subcarrier drags ESNR below the dB mean: that
        # is precisely why ESNR beats RSSI for delivery prediction.
        snrs = np.full(56, 20.0)
        snrs[7] = -5.0
        assert effective_snr_db(snrs) < 20.0

    def test_esnr_monotone_in_uniform_shift(self):
        base = np.linspace(5, 20, 56)
        assert effective_snr_db(base + 3.0) > effective_snr_db(base)

    def test_esnr_saturates_at_high_snr(self):
        # The BER floor makes the metric saturate (~31 dB for 64-QAM):
        # links that are "more than good enough" rank equal, which is
        # fine — every MCS already succeeds there.
        high = effective_snr_db(np.full(56, 80.0))
        higher = effective_snr_db(np.full(56, 90.0))
        assert high == pytest.approx(higher)
        assert 28.0 < high <= ESNR_CAP_DB

    def test_esnr_handles_very_low_snr(self):
        value = effective_snr_db(np.full(56, -20.0))
        assert value < 0.0
        assert np.isfinite(value)


class TestPer:
    def test_success_monotone_in_snr(self):
        mcs = mcs_by_index(4)
        p_low = mpdu_success_probability(np.full(56, 8.0), mcs, 1500)
        p_high = mpdu_success_probability(np.full(56, 25.0), mcs, 1500)
        assert p_low < p_high
        assert 0.0 <= p_low <= 1.0
        assert 0.0 <= p_high <= 1.0

    def test_longer_frames_fail_more(self):
        mcs = mcs_by_index(4)
        snr = np.full(56, 14.0)
        assert mpdu_success_probability(
            snr, mcs, 200
        ) > mpdu_success_probability(snr, mcs, 1500)

    def test_higher_mcs_needs_more_snr(self):
        snr = np.full(56, 10.0)
        p0 = mpdu_success_probability(snr, mcs_by_index(0), 1500)
        p7 = mpdu_success_probability(snr, mcs_by_index(7), 1500)
        assert p0 > 0.95
        assert p7 < 0.05

    def test_preamble_fails_below_floor(self):
        assert preamble_success_probability(np.full(56, -10.0)) == 0.0
        assert preamble_success_probability(np.full(56, 15.0)) > 0.99

    def test_coded_ber_in_unit_range(self):
        for snr_db in [-5.0, 5.0, 15.0, 30.0]:
            for mcs in MCS_TABLE:
                value = coded_ber(np.full(56, snr_db), mcs)
                assert 0.0 <= value <= 0.5 + 1e-9

    def test_expected_throughput_peaks_at_right_mcs(self):
        # At 12 dB flat SNR the best expected throughput should come
        # from a mid-table MCS, not the extremes.
        snr = np.full(56, 12.0)
        rates = [expected_throughput_bps(snr, m) for m in MCS_TABLE]
        best = int(np.argmax(rates))
        assert 1 <= best <= 5

    def test_best_rate_saturates_at_top_mcs(self):
        assert best_rate_bps(np.full(56, 35.0)) == pytest.approx(
            72_200_000, rel=0.01
        )

    def test_best_rate_zero_when_unreachable(self):
        assert best_rate_bps(np.full(56, -10.0)) == 0.0
