"""Runtime protocol-invariant checker tests, plus regression tests for
the handler bugs the adversary gate flushed out (stale stop/takeover/
hello, replayed sta-sync resurrection, split-brain serving duty)."""

import pytest

from repro.core.assoc_sync import StaInfo
from repro.core.switching import StopMsg, SwitchRecord, _Pending
from repro.invariants import InvariantChecker, InvariantViolation
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND


def static_testbed(seed=3, **kwargs):
    """One parked client — no organic switches to muddy assertions."""
    return build_testbed(
        TestbedConfig(
            seed=seed, scheme="wgtt", client_speeds_mph=[0.0],
            client_start_x_m=6.0, **kwargs,
        )
    )


def serving_ap(testbed, client_id="client0"):
    ap_id = testbed.controller.serving_ap(client_id)
    return testbed.wgtt_aps[ap_id]


class TestCheckerLifecycle:
    def test_install_requires_wgtt_scheme(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="baseline",
                          client_speeds_mph=[0.0], client_start_x_m=6.0)
        )
        with pytest.raises(ValueError):
            testbed.install_invariant_checker()

    def test_double_install_rejected(self):
        testbed = static_testbed()
        testbed.install_invariant_checker()
        with pytest.raises(RuntimeError):
            testbed.install_invariant_checker()

    def test_start_twice_rejected(self):
        testbed = static_testbed()
        checker = InvariantChecker(testbed)
        checker.start()
        with pytest.raises(RuntimeError):
            checker.start()

    def test_interval_validated(self):
        testbed = static_testbed()
        with pytest.raises(ValueError):
            InvariantChecker(testbed, interval_us=0)

    def test_finish_is_idempotent(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.2)
        first = checker.finish()
        second = checker.finish()
        assert first == second


class TestHealthyRun:
    def test_clean_run_has_zero_violations(self):
        testbed = build_testbed(
            TestbedConfig(seed=3, scheme="wgtt", client_speeds_mph=[15.0],
                          client_start_x_m=6.0)
        )
        checker = testbed.install_invariant_checker()
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(4.0)
        report = checker.finish()
        assert report["ok"]
        assert report["violations"] == []
        assert report["checks"] > 50
        assert all(count == 0 for count in report["counts"].values())
        # Real switches happened under the checker's watch.
        assert testbed.controller.coordinator.history

    def test_metrics_shape_complete_and_sorted(self):
        """Every invariant exports a labelled counter even at zero —
        snapshot shape must not change the moment something breaks."""
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.3)
        metrics = checker.collect_metrics()
        assert metrics["invariant_checks"] == checker.checks > 0
        assert metrics["invariant_violations_total"] == 0
        labelled = [k for k in metrics if k.startswith("invariant_violations{")]
        assert len(labelled) == len(InvariantChecker.INVARIANTS)
        assert labelled == sorted(labelled)
        # And the registry integration surfaces them in snapshots.
        snapshot = testbed.obs.metrics.snapshot()
        assert snapshot["invariant_violations_total"] == 0


class TestTraceFedInvariants:
    """Feed the checker synthetic trace events and watch it object."""

    def setup_checker(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        return testbed, checker, testbed.sim.obs.trace

    def emit_serving(self, tracer, client, gen):
        tracer.emit("controller", "serving-update", track="test",
                    client=client, ap="ap0", gen=gen)

    def test_monotonic_serving_gen(self):
        testbed, checker, tracer = self.setup_checker()
        self.emit_serving(tracer, "ghost", (100, 1))
        self.emit_serving(tracer, "ghost", (100, 2))
        assert checker.counts["monotonic-serving-gen"] == 0
        self.emit_serving(tracer, "ghost", (100, 2))  # duplicate
        assert checker.counts["monotonic-serving-gen"] == 1
        self.emit_serving(tracer, "ghost", (99, 7))  # epoch regression
        assert checker.counts["monotonic-serving-gen"] == 2
        # A newer epoch clears the bar again.
        self.emit_serving(tracer, "ghost", (101, 0))
        assert checker.counts["monotonic-serving-gen"] == 2

    def test_untagged_generation_is_skipped(self):
        """Non-WGTT publishers carry no generation tuple; the checker
        must not manufacture violations from them."""
        testbed, checker, tracer = self.setup_checker()
        self.emit_serving(tracer, "ghost", None)
        self.emit_serving(tracer, "ghost", None)
        assert checker.counts["monotonic-serving-gen"] == 0

    def test_duplicate_delivery_flagged(self):
        testbed, checker, tracer = self.setup_checker()
        tracer.emit("testbed", "uplink-deliver", track="server",
                    key=0xABC, src="client9", ip_id=1, protocol="udp")
        assert checker.counts["no-duplicate-delivery"] == 0
        tracer.emit("testbed", "uplink-deliver", track="server",
                    key=0xABC, src="client9", ip_id=1, protocol="udp")
        assert checker.counts["no-duplicate-delivery"] == 1

    def test_arp_repeats_are_legitimate(self):
        testbed, checker, tracer = self.setup_checker()
        for _ in range(3):
            tracer.emit("testbed", "uplink-deliver", track="server",
                        key=0xDEF, src="client9", ip_id=0, protocol="arp")
        assert checker.counts["no-duplicate-delivery"] == 0

    def test_retry_storm_bound(self):
        testbed, checker, tracer = self.setup_checker()
        limit = testbed.config.wgtt.switch_retry_limit
        tracer.emit("controller", "switch-retry", track="test",
                    client="ghost", switch_id=7, retries=limit)
        assert checker.counts["bounded-retry-storm"] == 0
        tracer.emit("controller", "switch-retry", track="test",
                    client="ghost", switch_id=7, retries=limit + 1)
        assert checker.counts["bounded-retry-storm"] == 1

    def test_drain_new_returns_each_breach_once(self):
        testbed, checker, tracer = self.setup_checker()
        self.emit_serving(tracer, "ghost", (1, 1))
        self.emit_serving(tracer, "ghost", (1, 1))
        fresh = checker.drain_new()
        assert len(fresh) == 1
        assert isinstance(fresh[0], InvariantViolation)
        assert fresh[0].invariant == "monotonic-serving-gen"
        assert checker.drain_new() == []


class TestProbeInvariants:
    def test_single_active_controller(self):
        from repro.core.config import WgttConfig

        testbed = static_testbed(wgtt=WgttConfig(ha_enabled=True))
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.2)
        assert checker.counts["single-active-controller"] == 0
        # Force dual-active: the standby claims the active role while
        # the primary is still alive.
        testbed.standby.role = "active"
        testbed.run_seconds(0.3)
        # Flagged once per episode, not once per probe.
        assert checker.counts["single-active-controller"] == 1
        testbed.standby.role = "standby"
        testbed.run_seconds(0.1)
        testbed.standby.role = "active"
        testbed.run_seconds(0.2)
        assert checker.counts["single-active-controller"] == 2

    def test_single_serving_ap_overlap_flagged_after_slack(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.2)
        holder = serving_ap(testbed)
        other = next(
            ap for ap_id, ap in sorted(testbed.wgtt_aps.items())
            if ap is not holder
        )
        other._serving.add("client0")
        # Within the reconvergence slack: observed but not yet flagged.
        testbed.run_seconds(0.1)
        assert checker.counts["single-serving-ap"] == 0
        assert "client0" in checker._overlap_since
        testbed.run_seconds(0.4)
        assert checker.counts["single-serving-ap"] == 1
        # Overlap resolves -> episode clears; a fresh overlap later
        # would count again.
        other._serving.discard("client0")
        testbed.run_seconds(0.1)
        assert "client0" not in checker._overlap_since

    def test_overlap_excused_while_handshake_in_flight(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.2)
        holder = serving_ap(testbed)
        other = next(
            ap for ap_id, ap in sorted(testbed.wgtt_aps.items())
            if ap is not holder
        )
        other._serving.add("client0")
        # Park a pending handshake slot for the client: duty is
        # legitimately in motion, the checker must stay quiet.
        record = SwitchRecord(
            client="client0", from_ap=holder.ap_id, to_ap=other.ap_id,
            started_us=testbed.sim.now,
        )
        coordinator = testbed.controller.coordinator
        coordinator._pending["client0"] = _Pending(
            record=record, switch_id=9_999
        )
        testbed.run_seconds(0.5)
        assert checker.counts["single-serving-ap"] == 0
        del coordinator._pending["client0"]
        other._serving.discard("client0")

    def test_switch_span_terminates(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        coordinator = testbed.controller.coordinator
        record = SwitchRecord(
            client="ghost", from_ap="ap0", to_ap="ap1", started_us=0
        )
        coordinator._pending["ghost"] = _Pending(record=record, switch_id=77)
        bound_s = checker._switch_age_bound_us() / SECOND
        testbed.run_seconds(bound_s / 2)
        assert checker.counts["switch-span-terminates"] == 0
        testbed.run_seconds(bound_s)
        assert checker.counts["switch-span-terminates"] == 1
        # Stuck-handshake episodes are one violation, not one per probe.
        testbed.run_seconds(0.2)
        assert checker.counts["switch-span-terminates"] == 1
        del coordinator._pending["ghost"]

    def test_liveness_agreement(self):
        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        testbed.run_seconds(0.2)
        active = testbed.active_controller()
        # The controller swears ap3 is dead; ap3 is demonstrably alive
        # and reachable — a stuck failure detector.
        active.dead_aps = lambda: {"ap3"}
        slack_s = checker._liveness_slack_us() / SECOND
        testbed.run_seconds(slack_s * 2 + 0.1)
        assert checker.counts["liveness-agreement"] == 1

    def test_max_violations_caps_list_not_counters(self):
        testbed = static_testbed()
        checker = InvariantChecker(testbed, max_violations=2)
        checker.start()
        tracer = testbed.sim.obs.trace
        for i in range(5):
            tracer.emit("controller", "serving-update", track="test",
                        client="ghost", ap="ap0", gen=(1, 1))
        assert len(checker.violations) == 2
        assert checker.counts["monotonic-serving-gen"] == 4
        assert checker.total_violations() == 4


class TestSloGuardIntegration:
    def test_invariant_breach_becomes_slo_violation(self):
        from repro.soak.slo import SloGuard

        testbed = static_testbed()
        checker = testbed.install_invariant_checker()
        guard = SloGuard(
            testbed, None, interval_us=SECOND // 10, invariants=checker
        )
        guard.start()
        testbed.run_seconds(0.05)
        tracer = testbed.sim.obs.trace
        tracer.emit("controller", "serving-update", track="test",
                    client="ghost", ap="ap0", gen=(1, 1))
        tracer.emit("controller", "serving-update", track="test",
                    client="ghost", ap="ap0", gen=(1, 1))
        testbed.run_seconds(0.3)
        report = guard.finish()
        assert not report["ok"]
        kinds = [v["kind"] for v in report["violations"]]
        assert kinds == ["invariant"]
        assert (report["violations"][0]["probe"]
                == "monotonic-serving-gen")

    def test_soak_with_invariants_enabled_stays_clean(self):
        from repro.soak.harness import SoakConfig, run_soak

        result = run_soak(
            SoakConfig(seed=2, duration_s=4.0, num_aps=4,
                       fault_intensity=0.0, invariants_enabled=True)
        )
        assert result.ok
        assert result.final_metrics["invariant_violations_total"] == 0
        assert result.final_metrics["invariant_checks"] > 0


class TestHandlerHardeningRegressions:
    """The previously-latent bugs the adversary gate flushed out: each
    test replays the exact stale/duplicated message that used to
    corrupt state and asserts the hardened handler refuses it."""

    def _warm_testbed(self):
        testbed = static_testbed()
        testbed.run_seconds(0.3)  # registration + first serving-update
        return testbed

    def test_stale_stop_does_not_revoke_serving_duty(self):
        """A replayed stop from an old round used to silently strip the
        AP of duty the controller still believes it holds — the client
        went dark with no handshake to repair it."""
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        assert "client0" in ap._serving
        ap._switch_handled["client0"] = 5
        ap._on_backhaul(
            "controller", "stop",
            StopMsg(client="client0", target_ap="ap1", switch_id=3),
        )
        assert "client0" in ap._serving  # duty intact
        assert ap.stats["stale_stops"] == 1
        assert ap.stats["stops_handled"] == 0

    def test_equal_switch_id_stop_still_reexecutes(self):
        """The live round's own retransmission must keep re-running the
        handler — that *is* the loss-recovery path."""
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        ap._switch_handled["client0"] = 3
        ap._on_backhaul(
            "controller", "stop",
            StopMsg(client="client0", target_ap="ap1", switch_id=3),
        )
        assert ap.stats["stale_stops"] == 0
        assert ap.stats["stops_handled"] == 1

    def test_replayed_takeover_does_not_rehome(self):
        """A replayed ctrl-takeover with an old epoch used to point the
        AP back at a dead controller incarnation."""
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        home = ap._controller_id
        ap._ctrl_epoch = 500_000
        ap._on_backhaul("controller-z", "ctrl-takeover", 400_000)
        assert ap._controller_id == home
        assert ap.stats["stale_takeovers"] == 1
        assert ap.stats["rehomed"] == 0

    def test_replayed_ctrl_hello_does_not_resync(self):
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        home = ap._controller_id
        ap._ctrl_epoch = 500_000
        claims_before = ap.stats["serving_claims_sent"]
        ap._on_backhaul("controller-z", "ctrl-hello", 400_000)
        assert ap._controller_id == home
        assert ap.stats["stale_ctrl_hellos"] == 1
        assert ap.stats["serving_claims_sent"] == claims_before

    def test_replayed_sta_sync_does_not_resurrect_departed_client(self):
        """Controller side: a pre-departure sta-sync replayed after the
        departure used to recreate the client's selection loop and
        serving entry with no radio behind them — leaked forever."""
        testbed = self._warm_testbed()
        controller = testbed.controller
        assert controller.client_state("client0") is not None
        original = controller.directory.get("client0")
        controller.deregister_client("client0")
        testbed.run_seconds(0.1)
        assert controller.client_state("client0") is None
        controller.register_association(
            StaInfo(
                client="client0",
                associated_at_us=original.associated_at_us,
                first_ap=original.first_ap,
            )
        )
        assert controller.client_state("client0") is None  # stays gone
        assert controller.stats["stale_sta_syncs"] == 1

    def test_replayed_sta_sync_does_not_reopen_departed_ap_state(self):
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        original = ap.directory.get("client0")
        ap._on_backhaul("controller", "client-departed", "client0")
        assert not ap.directory.is_associated("client0")
        ap._on_backhaul("controller", "sta-sync", original)
        assert not ap.directory.is_associated("client0")
        assert ap.stats["stale_sta_syncs"] == 1
        # A genuinely fresh re-association lifts the guard.
        readmit = StaInfo(
            client="client0",
            associated_at_us=testbed.sim.now + 1,
            first_ap=original.first_ap,
        )
        ap._on_backhaul("controller", "sta-sync", readmit)
        assert ap.directory.is_associated("client0")

    def test_newer_serving_update_relinquishes_split_brain_duty(self):
        """The partitioned-AP split brain: a one-way partition hides a
        failover from the serving AP, which keeps transmitting after
        the controller re-homed the client.  The first serving-update
        that reaches it must strip duty immediately."""
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        assert "client0" in ap._serving
        gen = ap._serving_gen_view.get("client0", (0, 0))
        newer = (gen[0], gen[1] + 1)
        ap._on_backhaul(
            "controller", "serving-update", ("client0", "ap9", newer)
        )
        assert "client0" not in ap._serving
        assert ap.stats["serving_relinquished"] == 1
        assert ap._serving_view["client0"] == "ap9"

    def test_stale_serving_update_does_not_relinquish(self):
        """The mirror image: an *old* replayed serving-update naming a
        different AP must be ignored — the generation tag is what makes
        the relinquish safe."""
        testbed = self._warm_testbed()
        ap = serving_ap(testbed)
        assert "client0" in ap._serving
        gen = ap._serving_gen_view.get("client0", (0, 0))
        ap._on_backhaul(
            "controller", "serving-update", ("client0", "ap9", gen)
        )
        assert "client0" in ap._serving
        assert ap.stats["serving_relinquished"] == 0
        assert ap.stats["stale_serving_updates"] >= 1
