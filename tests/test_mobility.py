"""Tests for road geometry and vehicle tracks."""

import math

import pytest

from repro.mobility import (
    MPH_TO_MPS,
    Position,
    Road,
    VehicleTrack,
    following_tracks,
    mph,
    opposing_tracks,
    parallel_tracks,
)
from repro.sim.engine import SECOND


def test_mph_conversion():
    assert mph(25.0) == pytest.approx(11.176)
    assert MPH_TO_MPS == pytest.approx(0.44704)


def test_position_distance():
    a = Position(0, 0, 0)
    b = Position(3, 4, 0)
    assert a.distance_to(b) == pytest.approx(5.0)
    c = Position(3, 4, 12)
    assert a.distance_to(c) == pytest.approx(13.0)


def test_position_bearing():
    a = Position(0, 0, 0)
    azimuth, elevation = a.bearing_to(Position(1, 1, 0))
    assert azimuth == pytest.approx(math.pi / 4)
    assert elevation == pytest.approx(0.0)
    _, elev_up = a.bearing_to(Position(1, 0, 1))
    assert elev_up == pytest.approx(math.pi / 4)


def test_road_lane_selection():
    road = Road(near_lane_y=0.0, far_lane_y=3.5)
    assert road.lane_y(+1) == 0.0
    assert road.lane_y(-1) == 3.5


def test_road_contains_x():
    road = Road(length_m=60.0)
    assert road.contains_x(0.0)
    assert road.contains_x(60.0)
    assert not road.contains_x(-0.1)
    assert not road.contains_x(60.1)


class TestVehicleTrack:
    def test_position_advances_linearly(self):
        road = Road()
        track = VehicleTrack(road, start_x=0.0, speed_mph=15.0)
        one_second = track.position_at(SECOND)
        assert one_second.x == pytest.approx(15.0 * MPH_TO_MPS)
        assert one_second.y == road.near_lane_y
        assert one_second.z == track.antenna_height_m

    def test_static_client_never_moves(self):
        track = VehicleTrack(Road(), start_x=10.0, speed_mph=0.0)
        assert track.position_at(0).x == 10.0
        assert track.position_at(10 * SECOND).x == 10.0

    def test_reverse_direction(self):
        road = Road()
        track = VehicleTrack(road, start_x=50.0, speed_mph=10.0, direction=-1)
        later = track.position_at(SECOND)
        assert later.x < 50.0
        assert later.y == road.far_lane_y

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            VehicleTrack(Road(), start_x=0.0, speed_mph=5.0, direction=0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            VehicleTrack(Road(), start_x=0.0, speed_mph=-5.0)

    def test_time_to_reach_x(self):
        track = VehicleTrack(Road(), start_x=0.0, speed_mph=15.0)
        t = track.time_to_reach_x(15.0 * MPH_TO_MPS)
        assert t == pytest.approx(SECOND, rel=1e-6)

    def test_time_to_reach_x_behind_rejected(self):
        track = VehicleTrack(Road(), start_x=10.0, speed_mph=15.0)
        with pytest.raises(ValueError):
            track.time_to_reach_x(5.0)

    def test_transit_duration_scales_inversely_with_speed(self):
        road = Road(length_m=60.0)
        slow = VehicleTrack(road, start_x=0.0, speed_mph=5.0)
        fast = VehicleTrack(road, start_x=0.0, speed_mph=25.0)
        assert slow.transit_duration_us() == pytest.approx(
            5 * fast.transit_duration_us(), rel=1e-3
        )

    def test_paper_dwell_time_at_25_mph(self):
        # Paper Fig 3: at 25 mph a car spends ~460 ms in each ~5 m cell.
        road = Road(length_m=5.2)
        track = VehicleTrack(road, start_x=0.0, speed_mph=25.0)
        dwell_ms = track.transit_duration_us() / 1000.0
        assert 430 <= dwell_ms <= 490


def test_following_tracks_spacing():
    tracks = following_tracks(Road(), speed_mph=15.0, count=3, spacing_m=3.0)
    xs = [t.position_at(0).x for t in tracks]
    assert xs == [0.0, -3.0, -6.0]
    later = [t.position_at(SECOND).x for t in tracks]
    assert later[0] - later[1] == pytest.approx(3.0)


def test_parallel_tracks_stay_abreast_in_different_lanes():
    road = Road()
    a, b = parallel_tracks(road, speed_mph=15.0)
    pa, pb = a.position_at(SECOND), b.position_at(SECOND)
    assert pa.x == pytest.approx(pb.x)
    assert pa.y != pb.y


def test_opposing_tracks_close_on_each_other():
    road = Road(length_m=60.0)
    a, b = opposing_tracks(road, speed_mph=15.0)
    gap_start = abs(a.position_at(0).x - b.position_at(0).x)
    gap_later = abs(a.position_at(SECOND).x - b.position_at(SECOND).x)
    assert gap_later < gap_start
