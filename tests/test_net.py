"""Tests for packets, queues, tunneling, and the backhaul."""

import pytest

from repro.net import (
    ByteLimitedQueue,
    DropTailQueue,
    EthernetBackhaul,
    IpIdAllocator,
    Packet,
    decapsulate,
    encapsulate_downlink,
    tunnel_wire_size,
)
from repro.sim import Simulator


def make_packet(seq=0, src="server", dst="client0", size=1500):
    return Packet(src=src, dst=dst, size_bytes=size, seq=seq)


# ----------------------------------------------------------------------
# packets
# ----------------------------------------------------------------------

class TestPacket:
    def test_uids_unique(self):
        assert make_packet().uid != make_packet().uid

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Packet("a", "b", 0)

    def test_dedup_key_same_for_same_identity(self):
        a = Packet("client0", "server", 100, ip_id=7)
        b = Packet("client0", "server", 100, ip_id=7)
        assert a.dedup_key() == b.dedup_key()

    def test_dedup_key_differs_by_ip_id(self):
        a = Packet("client0", "server", 100, ip_id=7)
        b = Packet("client0", "server", 100, ip_id=8)
        assert a.dedup_key() != b.dedup_key()

    def test_dedup_key_differs_by_source(self):
        a = Packet("client0", "server", 100, ip_id=7)
        b = Packet("client1", "server", 100, ip_id=7)
        assert a.dedup_key() != b.dedup_key()

    def test_dedup_key_is_48_bits(self):
        packet = Packet("client0", "server", 100, ip_id=0xFFFF)
        assert 0 <= packet.dedup_key() < (1 << 48)

    def test_ip_id_wraps_16_bits(self):
        allocator = IpIdAllocator()
        for _ in range(65536):
            allocator.allocate("x")
        assert allocator.allocate("x") == 0

    def test_ip_id_per_source(self):
        allocator = IpIdAllocator()
        assert allocator.allocate("a") == 0
        assert allocator.allocate("a") == 1
        assert allocator.allocate("b") == 0


# ----------------------------------------------------------------------
# queues
# ----------------------------------------------------------------------

class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(4)
        for i in range(3):
            queue.enqueue(make_packet(seq=i))
        assert [queue.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_drop_when_full(self):
        queue = DropTailQueue(2)
        assert queue.enqueue(make_packet())
        assert queue.enqueue(make_packet())
        assert not queue.enqueue(make_packet())
        assert queue.stats.dropped == 1

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(2).dequeue() is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue(2)
        queue.enqueue(make_packet(seq=9))
        assert queue.peek().seq == 9
        assert len(queue) == 1

    def test_flush_and_drain(self):
        queue = DropTailQueue(8)
        for i in range(5):
            queue.enqueue(make_packet(seq=i))
        drained = queue.drain()
        assert [p.seq for p in drained] == [0, 1, 2, 3, 4]
        assert queue.empty
        queue.enqueue(make_packet())
        assert queue.flush() == 1

    def test_remove_for_client(self):
        queue = DropTailQueue(8)
        queue.enqueue(make_packet(dst="a", seq=1))
        queue.enqueue(make_packet(dst="b", seq=2))
        queue.enqueue(make_packet(dst="a", seq=3))
        assert queue.remove_for_client("a") == 2
        assert len(queue) == 1
        assert queue.peek().dst == "b"

    def test_high_watermark(self):
        queue = DropTailQueue(8)
        for i in range(5):
            queue.enqueue(make_packet(seq=i))
        queue.dequeue()
        assert queue.stats.high_watermark == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestByteLimitedQueue:
    def test_enforces_byte_budget(self):
        queue = ByteLimitedQueue(3000)
        assert queue.enqueue(make_packet(size=1500))
        assert queue.enqueue(make_packet(size=1500))
        assert not queue.enqueue(make_packet(size=100))
        assert queue.stats.dropped == 1

    def test_small_packets_fill_remaining(self):
        queue = ByteLimitedQueue(2000)
        assert queue.enqueue(make_packet(size=1500))
        assert queue.enqueue(make_packet(size=400))


# ----------------------------------------------------------------------
# tunneling
# ----------------------------------------------------------------------

class TestTunnel:
    def test_encapsulation_marks_hop_not_addresses(self):
        packet = make_packet()
        encapsulate_downlink(packet, "ap3")
        assert packet.tunnel_dst == "ap3"
        assert packet.dst == "client0"  # inner addresses untouched
        decapsulate(packet)
        assert packet.tunnel_dst is None

    def test_wire_size_overheads(self):
        packet = make_packet(size=1000)
        assert tunnel_wire_size(packet, downlink=True) == 1020
        assert tunnel_wire_size(packet, downlink=False) == 1042


# ----------------------------------------------------------------------
# backhaul
# ----------------------------------------------------------------------

class TestBackhaul:
    def test_delivers_with_latency(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim, latency_us=300)
        got = []
        backhaul.register("ap1", lambda src, kind, p: got.append((sim.now, src, kind, p)))
        backhaul.send("controller", "ap1", "data", "payload", size_bytes=1000)
        sim.run()
        assert len(got) == 1
        time_us, src, kind, payload = got[0]
        assert src == "controller" and kind == "data" and payload == "payload"
        assert time_us >= 300

    def test_control_path_is_faster(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        times = {}
        backhaul.register("ap1", lambda s, k, p: times.setdefault(k, sim.now))
        backhaul.send("controller", "ap1", "data", None, size_bytes=1500)
        backhaul.send_control("controller", "ap1", "stop", None)
        sim.run()
        assert times["stop"] < times["data"]

    def test_fifo_serialization_per_port(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim, bandwidth_bps=10_000_000)  # slow
        arrivals = []
        backhaul.register("ap1", lambda s, k, p: arrivals.append((sim.now, p)))
        for i in range(3):
            backhaul.send("controller", "ap1", "data", i, size_bytes=12_500)
        sim.run()
        assert [p for _, p in arrivals] == [0, 1, 2]
        # each 12.5 kB message takes 10 ms to serialize at 10 Mbit/s
        assert arrivals[1][0] - arrivals[0][0] >= 9_000

    def test_unknown_destination_raises(self):
        backhaul = EthernetBackhaul(Simulator())
        with pytest.raises(KeyError):
            backhaul.send("a", "nowhere", "data", None)

    def test_duplicate_registration_rejected(self):
        backhaul = EthernetBackhaul(Simulator())
        backhaul.register("x", lambda *a: None)
        with pytest.raises(ValueError):
            backhaul.register("x", lambda *a: None)

    def test_broadcast_excludes_sender(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = {"a": 0, "b": 0, "c": 0}
        for node in got:
            backhaul.register(node, lambda s, k, p, n=node: got.__setitem__(n, got[n] + 1))
        backhaul.broadcast("a", "sync", None)
        sim.run()
        assert got == {"a": 0, "b": 1, "c": 1}

    def test_stats_accounting(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        backhaul.register("ap1", lambda *a: None)
        backhaul.send("c", "ap1", "data", None, size_bytes=100)
        backhaul.send_control("c", "ap1", "stop", None)
        assert backhaul.stats.messages == 2
        assert backhaul.stats.control_messages == 1
        assert backhaul.stats.by_kind == {"data": 1, "stop": 1}
