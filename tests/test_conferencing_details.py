"""Detail tests for the conferencing receiver: deadlines, garbage
collection, and feedback plumbing."""

from repro.apps.conferencing import (
    SKYPE,
    ConferencingReceiver,
    ConferencingSender,
    PLAYOUT_DEADLINE_US,
)
from repro.net.packet import Packet
from repro.sim import MS, SECOND, Simulator


def fragment(frame_id, index, fragments, flow="conf"):
    packet = Packet("a", "b", 1240, protocol="udp", flow_id=flow,
                    seq=frame_id * 64 + index)
    packet.meta["frame_id"] = frame_id
    packet.meta["fragment"] = index
    packet.meta["fragments"] = fragments
    return packet


def make_receiver():
    sim = Simulator()
    sender = ConferencingSender(sim, "a", "b", lambda p: None, SKYPE, "conf")
    receiver = ConferencingReceiver(sim, "conf", sender)
    return sim, sender, receiver


class TestFrameReassembly:
    def test_frame_delivered_when_all_fragments_arrive(self):
        sim, _, receiver = make_receiver()
        for i in range(3):
            receiver.on_packet(fragment(0, i, 3))
        assert receiver.frames_delivered == 1

    def test_partial_frame_not_delivered(self):
        sim, _, receiver = make_receiver()
        receiver.on_packet(fragment(0, 0, 3))
        receiver.on_packet(fragment(0, 2, 3))
        assert receiver.frames_delivered == 0

    def test_duplicate_fragment_harmless(self):
        sim, _, receiver = make_receiver()
        receiver.on_packet(fragment(0, 0, 2))
        receiver.on_packet(fragment(0, 0, 2))
        receiver.on_packet(fragment(0, 1, 2))
        assert receiver.frames_delivered == 1

    def test_late_fragment_misses_playout_deadline(self):
        sim, _, receiver = make_receiver()
        receiver.on_packet(fragment(0, 0, 2))
        sim.run(until_us=PLAYOUT_DEADLINE_US + 10 * MS)
        receiver.on_packet(fragment(0, 1, 2))
        assert receiver.frames_delivered == 0

    def test_stale_partial_frames_garbage_collected(self):
        sim, _, receiver = make_receiver()
        for frame_id in range(300):
            receiver.on_packet(fragment(frame_id, 0, 2))  # never complete
        sim.run(until_us=SECOND)
        for frame_id in range(300, 600):
            receiver.on_packet(fragment(frame_id, 0, 2))
        assert len(receiver._partial) < 600

    def test_fps_series_counts_per_second(self):
        sim, _, receiver = make_receiver()

        def deliver(frame_id):
            receiver.on_packet(fragment(frame_id, 0, 1))

        for frame_id in range(5):
            sim.schedule(frame_id * 100 * MS, lambda f=frame_id: deliver(f))
        for frame_id in range(5, 8):
            sim.schedule(
                SECOND + (frame_id - 5) * 100 * MS,
                lambda f=frame_id: deliver(f),
            )
        # bounded run: the receiver's feedback timer re-arms forever
        sim.run(until_us=2 * SECOND - 1)
        assert receiver.fps_series() == [5, 3]


class TestFeedbackLoop:
    def test_receiver_reports_delivery_fraction(self):
        sim, sender, receiver = make_receiver()
        sender.frames_sent = 10
        for frame_id in range(5):
            receiver.on_packet(fragment(frame_id, 0, 1))
        sim.run(until_us=SECOND + 1000)
        assert abs(sender.reported_delivery - 0.5) < 1e-9
