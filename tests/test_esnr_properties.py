"""Additional property-based tests: the Effective-SNR metric and the
PER model under hypothesis-generated frequency-selective channels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.esnr import effective_snr_db
from repro.phy.mcs import MCS_TABLE
from repro.phy.per import (
    expected_throughput_bps,
    mpdu_success_probability,
    preamble_success_probability,
)

snr_vectors = st.lists(
    st.floats(min_value=-15.0, max_value=40.0, allow_nan=False),
    min_size=56,
    max_size=56,
).map(np.array)


@given(snr_vectors)
@settings(max_examples=60)
def test_esnr_flat_channel_fixed_point(snrs):
    """ESNR of a flat channel equals the flat value (within the
    metric's saturation zone)."""
    flat = np.full(56, float(np.median(snrs)))
    if -5.0 <= flat[0] <= 25.0:
        assert abs(effective_snr_db(flat) - flat[0]) < 0.2


@given(snr_vectors, st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=60)
def test_esnr_monotone_under_uniform_boost(snrs, boost):
    before = effective_snr_db(snrs)
    after = effective_snr_db(snrs + boost)
    assert after >= before - 1e-6


@given(snr_vectors)
@settings(max_examples=60)
def test_per_probabilities_valid_for_all_mcs(snrs):
    for mcs in MCS_TABLE:
        p = mpdu_success_probability(snrs, mcs, 1500)
        assert 0.0 <= p <= 1.0


@given(snr_vectors)
@settings(max_examples=60)
def test_per_ordering_lower_mcs_never_worse(snrs):
    """At any channel, a more robust MCS delivers at least as reliably
    as a denser one."""
    probs = [mpdu_success_probability(snrs, mcs, 1500) for mcs in MCS_TABLE]
    for robust, dense in zip(probs, probs[1:]):
        assert robust >= dense - 1e-9


@given(snr_vectors)
@settings(max_examples=60)
def test_preamble_at_least_as_robust_as_any_payload(snrs):
    preamble = preamble_success_probability(snrs)
    best_payload = max(
        mpdu_success_probability(snrs, mcs, 1500) for mcs in MCS_TABLE
    )
    assert preamble >= best_payload - 1e-6


@given(snr_vectors, st.integers(min_value=100, max_value=3000))
@settings(max_examples=60)
def test_expected_throughput_bounded_by_phy_rate(snrs, length):
    for mcs in MCS_TABLE:
        tput = expected_throughput_bps(snrs, mcs, length)
        assert 0.0 <= tput <= mcs.data_rate_bps + 1e-6
