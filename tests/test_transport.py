"""Tests for TCP Reno, UDP flows, and host demultiplexing.

TCP is exercised over a scriptable fake network so loss/reorder/delay
cases are deterministic.
"""

import pytest

from repro.net.packet import Packet
from repro.sim import SECOND, Simulator
from repro.transport import (
    Host,
    MIN_RTO_US,
    MSS,
    TcpReceiver,
    TcpSender,
    UdpSink,
    UdpSource,
)


class FakeNetwork:
    """Bidirectional pipe with programmable loss and delay."""

    def __init__(self, sim, delay_us=5_000):
        self.sim = sim
        self.delay_us = delay_us
        self.drop_data_seqs = set()
        self.drop_all_data = False
        self.drop_acks_below = -1
        self.sender = None
        self.receiver = None
        self.data_sent = []

    def to_receiver(self, packet):
        self.data_sent.append(packet.seq)
        if self.drop_all_data:
            return
        if packet.seq in self.drop_data_seqs:
            self.drop_data_seqs.discard(packet.seq)  # drop once
            return
        self.sim.schedule(self.delay_us, lambda: self.receiver.on_packet(packet))

    def to_sender(self, packet):
        if packet.meta.get("ack", -1) <= self.drop_acks_below:
            return
        self.sim.schedule(self.delay_us, lambda: self.sender.on_ack(packet))


def make_tcp(delay_us=5_000, bulk=True):
    sim = Simulator()
    net = FakeNetwork(sim, delay_us)
    sender = TcpSender(sim, "server", "client", net.to_receiver, bulk=bulk)
    receiver = TcpReceiver(sim, "client", "server", net.to_sender)
    net.sender, net.receiver = sender, receiver
    return sim, net, sender, receiver


class TestTcpBasics:
    def test_clean_transfer_advances(self):
        sim, net, sender, receiver = make_tcp()
        sender.start()
        sim.run(until_us=2 * SECOND)
        assert sender.snd_una > 500
        assert receiver.rcv_nxt == sender.snd_una
        assert sender.timeouts == 0

    def test_slow_start_doubles_window(self):
        sim, net, sender, receiver = make_tcp()
        sender.start()
        initial = sender.cwnd
        sim.run(until_us=60_000)  # a few RTTs at 10 ms RTT
        assert sender.cwnd > 2 * initial

    def test_single_loss_fast_retransmit(self):
        sim, net, sender, receiver = make_tcp()
        net.drop_data_seqs = {20}
        sender.start()
        sim.run(until_us=2 * SECOND)
        assert sender.timeouts == 0  # recovered via triple-dup-ack
        assert sender.retransmits >= 1
        assert receiver.rcv_nxt > 100

    def test_rto_on_total_blackout(self):
        sim, net, sender, receiver = make_tcp()
        sender.start()
        sim.run(until_us=300_000)
        progressed = sender.snd_una
        net.drop_all_data = True  # total blackout from here on
        sim.run(until_us=3 * SECOND)
        assert sender.timeouts >= 2
        assert sender.rto_us > MIN_RTO_US  # exponential backoff engaged
        assert sender.snd_una >= progressed

    def test_go_back_n_recovery_after_rto(self):
        """After a blackout ends, the whole lost window must be
        retransmitted under slow start, not one segment per RTO."""
        sim, net, sender, receiver = make_tcp()
        sender.start()
        sim.run(until_us=300_000)
        # black out 200 consecutive segments (each lost exactly once)
        lost = set(range(sender.snd_nxt, sender.snd_nxt + 200))
        net.drop_data_seqs = set(lost)
        sim.run(until_us=1 * SECOND)
        before = receiver.rcv_nxt
        sim.run(until_us=6 * SECOND)
        # full recovery well within a few RTO rounds
        assert receiver.rcv_nxt > before + 190
        assert receiver.rcv_nxt == sender.snd_una

    def test_rto_backoff_resets_on_progress(self):
        sim, net, sender, receiver = make_tcp()
        sender.start()
        sim.run(until_us=200_000)
        net.drop_all_data = True
        sim.run(until_us=2 * SECOND)
        inflated = sender.rto_us
        assert inflated > MIN_RTO_US
        net.drop_all_data = False
        sim.run(until_us=6 * SECOND)
        assert sender.rto_us < inflated

    def test_rtt_estimator_tracks_path(self):
        sim, net, sender, receiver = make_tcp(delay_us=20_000)
        sender.start()
        sim.run(until_us=2 * SECOND)
        assert sender.srtt_us is not None
        assert 30_000 < sender.srtt_us < 120_000  # ~40 ms RTT

    def test_app_limited_flow_stops_at_supply(self):
        sim, net, sender, receiver = make_tcp(bulk=False)
        sender.supply(25)
        sender.start()
        sim.run(until_us=2 * SECOND)
        assert sender.snd_una == 25
        assert receiver.rcv_nxt == 25
        assert receiver.delivered_bytes() == 25 * MSS

    def test_receiver_handles_reordering(self):
        sim = Simulator()
        out = []
        receiver = TcpReceiver(sim, "c", "s", lambda p: out.append(p.meta["ack"]))
        for seq in (1, 0, 3, 2):
            packet = Packet("s", "c", 1500, protocol="tcp", seq=seq)
            packet.meta["kind"] = "data"
            receiver.on_packet(packet)
        assert receiver.rcv_nxt == 4
        assert out[-1] == 4

    def test_receiver_counts_duplicates(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, "c", "s", lambda p: None)
        for seq in (0, 0, 1, 1):
            packet = Packet("s", "c", 1500, protocol="tcp", seq=seq)
            receiver.on_packet(packet)
        assert receiver.duplicates == 2

    def test_goodput_series(self):
        sim, net, sender, receiver = make_tcp()
        sender.start()
        sim.run(until_us=3 * SECOND)
        series = receiver.goodput_series_mbps(3 * SECOND)
        assert len(series) == 3
        assert series[-1] > 1.0


class TestUdp:
    def test_cbr_packet_rate(self):
        sim = Simulator()
        sent = []
        source = UdpSource(sim, "s", "c", rate_bps=12_000_000,
                           send_fn=sent.append)
        source.start()
        sim.run(until_us=SECOND)
        expected = 12_000_000 / (1498 * 8)
        assert abs(len(sent) - expected) <= expected * 0.05

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            UdpSource(Simulator(), "s", "c", 0, lambda p: None)

    def test_stop_halts_emission(self):
        sim = Simulator()
        sent = []
        source = UdpSource(sim, "s", "c", 10e6, sent.append)
        source.start()
        sim.run(until_us=100_000)
        count = len(sent)
        source.stop()
        sim.run(until_us=SECOND)
        assert len(sent) == count

    def test_sink_metrics(self):
        sim = Simulator()
        sink = UdpSink(sim)
        for seq in (0, 1, 1, 3):
            sink.on_packet(Packet("s", "c", 1000, seq=seq, created_us=0))
        assert sink.packets_received() == 3
        assert sink.duplicates == 1
        assert sink.loss_rate(expected=4) == pytest.approx(0.25)
        assert sink.bytes_received() == 3000

    def test_sink_throughput_series(self):
        sim = Simulator()
        sink = UdpSink(sim)
        sim.schedule(
            100, lambda: sink.on_packet(Packet("s", "c", 125_000, seq=0))
        )
        sim.run()
        series = sink.throughput_series_mbps(SECOND)
        assert series[0] == pytest.approx(1.0)  # 1 Mbit in 1 s


class TestHost:
    def test_routes_by_protocol_and_flow(self):
        sim = Simulator()
        host = Host("client")
        sink = UdpSink(sim, flow_id="u1")
        host.attach_udp_sink(sink)
        got_acks = []

        class FakeSender:
            flow_id = "t1"

            def on_ack(self, p):
                got_acks.append(p.seq)

        host.attach_tcp_sender(FakeSender())
        udp = Packet("s", "c", 100, protocol="udp", flow_id="u1")
        host.deliver(udp)
        ack = Packet("c", "s", 52, protocol="tcp", flow_id="t1", seq=9)
        ack.meta["kind"] = "ack"
        host.deliver(ack)
        assert sink.packets_received() == 1
        assert got_acks == [9]

    def test_unrouted_counted(self):
        host = Host("client")
        host.deliver(Packet("s", "c", 100, flow_id="nope"))
        assert host.unrouted == 1

    def test_raw_handler_wins(self):
        host = Host("client")
        raw = []
        host.attach_raw("conf", raw.append)
        host.deliver(Packet("s", "c", 100, protocol="udp", flow_id="conf"))
        assert len(raw) == 1
