"""Tests for the MAC layer: medium, DCF, rate control, aggregation,
and the WifiDevice end-to-end over a controlled channel."""

import pytest

from repro.channel import ChannelMap, OmniAntenna, ParabolicAntenna, RadioPort
from repro.mac import (
    Dcf,
    MinstrelRateController,
    WifiDevice,
    WirelessMedium,
    build_ampdu_mpdus,
)
from repro.mac.blockack import BlockAckScoreboard
from repro.mac.frames import DIFS_US, MAX_AMPDU_SUBFRAMES
from repro.mobility import Position, Road, VehicleTrack
from repro.net import DropTailQueue, Packet
from repro.phy.mcs import mcs_by_index
from repro.sim import RngRegistry, SECOND, Simulator


def make_pair(seed=1, client_x=9.0, speed_mph=0.0, ap_x=10.0):
    """One AP + one client on a quiet channel; client near boresight."""
    sim = Simulator()
    rng = RngRegistry(seed)
    road = Road()
    cmap = ChannelMap(sim, rng)
    mount = Position(ap_x, -12.0, 10.0)
    antenna = ParabolicAntenna(mount=mount, boresight=Position(ap_x, 0.0, 1.5))
    cmap.register_port(RadioPort("ap1", antenna, 20.0, lambda t: mount))
    track = VehicleTrack(road, start_x=client_x, speed_mph=speed_mph)
    cmap.register_port(
        RadioPort(
            "client1", OmniAntenna(), 15.0, track.position_at,
            lambda: track.speed_mps,
        )
    )
    medium = WirelessMedium(sim, cmap)
    ap = WifiDevice(sim, medium, rng, "ap1", role="ap")
    client = WifiDevice(sim, medium, rng, "client1", role="client")
    return sim, medium, ap, client


def pkt(seq=0, dst="client1"):
    return Packet("server", dst, 1500, seq=seq)


# ----------------------------------------------------------------------
# medium
# ----------------------------------------------------------------------

class TestMedium:
    def test_downlink_delivery_at_good_snr(self):
        sim, medium, ap, client = make_pair()
        got = []
        client.on_packet = lambda p, src: got.append(p.seq)
        for i in range(20):
            ap.enqueue(pkt(i), "client1")
        sim.run(until_us=SECOND)
        assert len(got) >= 18  # near-boresight link delivers
        assert got == sorted(got)  # in order

    def test_block_ack_round_trip(self):
        sim, medium, ap, client = make_pair()
        for i in range(10):
            ap.enqueue(pkt(i), "client1")
        sim.run(until_us=SECOND)
        assert ap.stats["ba_received"] >= 1
        assert client.stats["ba_sent"] >= 1
        assert ap.stats["mpdus_acked"] >= 9

    def test_carrier_sense_busy_during_transmission(self):
        sim, medium, ap, client = make_pair()
        ap.enqueue(pkt(0), "client1")
        # step until the frame is on the air
        while not medium._transmissions and sim.step():
            pass
        assert medium._transmissions
        tx = medium._transmissions[-1]
        probe_time = tx.start_us + 50
        assert medium.busy_until("client1", now=probe_time) >= tx.end_us

    def test_airtime_accounting(self):
        sim, medium, ap, client = make_pair()
        ap.enqueue(pkt(0), "client1")
        sim.run(until_us=SECOND // 10)
        assert medium.frames_sent >= 2  # data + BA
        assert medium.airtime_us > 0

    def test_duplicate_device_rejected(self):
        sim, medium, ap, client = make_pair()
        with pytest.raises(ValueError):
            medium.register(ap)

    def test_half_duplex_no_self_reception(self):
        """A device never receives its own transmission."""
        sim, medium, ap, client = make_pair()
        heard_own = []
        original = ap.on_air_frame
        ap.on_air_frame = lambda f, s, d: (
            heard_own.append(f) if f.tx_device == "ap1" else original(f, s, d)
        )
        ap.enqueue(pkt(0), "client1")
        sim.run(until_us=SECOND // 10)
        assert heard_own == []


# ----------------------------------------------------------------------
# DCF
# ----------------------------------------------------------------------

class TestDcf:
    def make(self):
        sim, medium, ap, client = make_pair()
        return sim, Dcf(sim, medium, "ap1", RngRegistry(9).stream("dcf"))

    def test_grant_after_difs_on_idle_medium(self):
        sim, dcf = self.make()
        granted = []
        dcf.request_access(lambda: granted.append(sim.now))
        sim.run()
        assert len(granted) == 1
        assert granted[0] >= DIFS_US

    def test_single_outstanding_request(self):
        sim, dcf = self.make()
        dcf.request_access(lambda: None)
        with pytest.raises(RuntimeError):
            dcf.request_access(lambda: None)

    def test_cancel_prevents_grant(self):
        sim, dcf = self.make()
        granted = []
        dcf.request_access(lambda: granted.append(1))
        dcf.cancel()
        sim.run()
        assert granted == []
        assert not dcf.busy

    def test_cw_escalation_and_reset(self):
        _, dcf = self.make()
        initial = dcf.contention_window
        dcf.notify_failure()
        assert dcf.contention_window == 2 * initial + 1
        for _ in range(20):
            dcf.notify_failure()
        assert dcf.contention_window == 1023
        dcf.notify_success()
        assert dcf.contention_window == initial


# ----------------------------------------------------------------------
# rate control
# ----------------------------------------------------------------------

class TestMinstrel:
    def make(self):
        sim = Simulator()
        return sim, MinstrelRateController(sim, RngRegistry(4).stream("m"))

    def test_initial_rate_is_mid_table(self):
        _, rc = self.make()
        assert rc.current_mcs.index == 4

    def test_converges_down_under_failure(self):
        sim, rc = self.make()
        for round_no in range(200):
            mcs = rc.select_mcs()
            # everything above MCS2 fails, MCS<=2 succeeds
            acked = 10 if mcs.index <= 2 else 0
            rc.feedback(mcs, attempted=10, acked=acked)
            sim._now += 60_000
        assert rc.current_mcs.index <= 2

    def test_converges_up_when_everything_succeeds(self):
        sim, rc = self.make()
        for _ in range(200):
            mcs = rc.select_mcs()
            rc.feedback(mcs, attempted=10, acked=10)
            sim._now += 60_000
        assert rc.current_mcs.index >= 6

    def test_untried_rates_not_promoted_without_samples(self):
        sim, rc = self.make()
        rc.feedback(mcs_by_index(4), attempted=10, acked=10)
        sim._now += 200_000
        rc.feedback(mcs_by_index(4), attempted=10, acked=10)
        # MCS7 untried: must not be the primary rate purely on priors.
        assert rc.current_mcs.index != 7 or rc.probability(7) != 0.5

    def test_control_rate_feedback_ignored(self):
        from repro.phy.mcs import CONTROL_RATE

        _, rc = self.make()
        rc.feedback(CONTROL_RATE, attempted=5, acked=0)  # must not crash

    def test_sampling_occurs(self):
        sim, rc = self.make()
        chosen = set()
        for _ in range(200):
            chosen.add(rc.select_mcs().index)
        assert len(chosen) > 1


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

class TestAggregation:
    def test_builds_up_to_window_and_subframe_limits(self):
        board = BlockAckScoreboard()
        queue = DropTailQueue(256)
        for i in range(200):
            queue.enqueue(pkt(i))
        mpdus = build_ampdu_mpdus(board, queue, mcs_by_index(7))
        assert 1 <= len(mpdus) <= MAX_AMPDU_SUBFRAMES
        # the 4 ms airtime budget binds before the 64-frame window:
        # ~23 x 1568-byte subframes fit at 72.2 Mbit/s
        assert 18 <= len(mpdus) <= 30

    def test_airtime_budget_limits_low_rates(self):
        board = BlockAckScoreboard()
        queue = DropTailQueue(256)
        for i in range(200):
            queue.enqueue(pkt(i))
        mpdus = build_ampdu_mpdus(board, queue, mcs_by_index(0))
        # 4 ms at 7.2 Mbit/s is ~2-3 full frames
        assert len(mpdus) <= 3

    def test_retransmissions_first(self):
        board = BlockAckScoreboard()
        queue = DropTailQueue(16)
        first = board.issue(pkt(0))
        board.record_transmit([first])
        board.process_timeout([first.seq])
        queue.enqueue(pkt(1))
        mpdus = build_ampdu_mpdus(board, queue, mcs_by_index(7))
        assert mpdus[0].seq == first.seq
        assert mpdus[0].retries == 1

    def test_empty_inputs_yield_empty(self):
        board = BlockAckScoreboard()
        queue = DropTailQueue(4)
        assert build_ampdu_mpdus(board, queue, mcs_by_index(5)) == []

    def test_always_at_least_one_frame_even_at_min_rate(self):
        board = BlockAckScoreboard()
        queue = DropTailQueue(4)
        queue.enqueue(pkt(0))
        mpdus = build_ampdu_mpdus(board, queue, mcs_by_index(0))
        assert len(mpdus) == 1


# ----------------------------------------------------------------------
# device behaviours
# ----------------------------------------------------------------------

class TestWifiDevice:
    def test_shared_bssid_reaches_all_aps(self):
        """A frame addressed to the shared BSSID is received by every
        WGTT AP at once — uplink diversity for free."""
        sim = Simulator()
        rng = RngRegistry(2)
        road = Road()
        cmap = ChannelMap(sim, rng)
        for i, x in enumerate((10.0, 17.5)):
            mount = Position(x, -12.0, 10.0)
            ant = ParabolicAntenna(mount=mount, boresight=Position(x, 0.0, 1.5))
            cmap.register_port(RadioPort(f"ap{i}", ant, 20.0, lambda t, m=mount: m))
        track = VehicleTrack(road, start_x=13.75, speed_mph=0.0)  # midway
        cmap.register_port(
            RadioPort("client1", OmniAntenna(), 15.0, track.position_at,
                      lambda: track.speed_mps)
        )
        medium = WirelessMedium(sim, cmap)
        aps = [
            WifiDevice(sim, medium, rng, f"ap{i}", role="ap",
                       addresses={"bss"}, monitor=True, response_jitter_us=16)
            for i in range(2)
        ]
        for ap in aps:
            ap.ta_address = "bss"
        client = WifiDevice(sim, medium, rng, "client1", role="client")
        received = {0: [], 1: []}
        aps[0].on_packet = lambda p, s: received[0].append(p.seq)
        aps[1].on_packet = lambda p, s: received[1].append(p.seq)
        for i in range(60):
            client.enqueue(Packet("client1", "server", 1400, seq=i), "bss")
        sim.run(until_us=3 * SECOND)
        # both APs decode a substantial share from the midpoint
        assert len(received[0]) > 10
        assert len(received[1]) > 10

    def test_beaconing(self):
        sim, medium, ap, client = make_pair()
        beacons = []
        client.on_beacon = lambda f, rssi: beacons.append((sim.now, rssi))
        ap.start_beaconing(interval_us=100_000)
        sim.run(until_us=SECOND)
        assert 7 <= len(beacons) <= 11
        assert all(-95 < rssi < -20 for _, rssi in beacons)

    def test_mgmt_exchange_with_ack(self):
        sim, medium, ap, client = make_pair()
        results = []
        seen = []
        ap.on_mgmt = lambda f: seen.append(f.subtype)
        client.send_mgmt("assoc-req", "ap1", on_result=results.append)
        sim.run(until_us=SECOND // 10)
        assert seen == ["assoc-req"]
        assert results == [True]

    def test_mgmt_fails_out_of_range(self):
        sim, medium, ap, client = make_pair(client_x=300.0)
        results = []
        client.send_mgmt("assoc-req", "ap1", on_result=results.append)
        sim.run(until_us=2 * SECOND)
        assert results == [False]

    def test_session_mode_gating(self):
        sim, medium, ap, client = make_pair()
        got = []
        client.on_packet = lambda p, s: got.append(p.seq)
        ap.set_session_mode("client1", "off")
        for i in range(5):
            ap.enqueue(pkt(i), "client1")
        sim.run(until_us=SECOND // 5)
        assert got == []
        ap.set_session_mode("client1", "active")
        sim.run(until_us=SECOND)
        assert len(got) == 5

    def test_invalid_session_mode(self):
        sim, medium, ap, client = make_pair()
        with pytest.raises(ValueError):
            ap.set_session_mode("client1", "paused")

    def test_reset_tx_state_continues_seq_space(self):
        sim, medium, ap, client = make_pair()
        ap.reset_tx_state("client1", 777)
        got = []
        client.on_packet = lambda p, s: got.append(p.seq)
        ap.enqueue(pkt(42), "client1")
        sim.run(until_us=SECOND // 5)
        assert got == [42]
        session = ap.session("client1")
        assert session.scoreboard.window_start == 778

    def test_data_filter_blocks_foreign_bss(self):
        sim, medium, ap, client = make_pair()
        client.accept_data_from = lambda ta: ta == "some-other-ap"
        got = []
        client.on_packet = lambda p, s: got.append(p)
        ap.enqueue(pkt(0), "client1")
        sim.run(until_us=SECOND // 5)
        assert got == []
        assert ap.stats["ba_timeouts"] >= 1  # client never acknowledged

    def test_csi_measured_on_client_frames_only(self):
        sim, medium, ap, client = make_pair()
        csi = []
        ap.on_csi = lambda c, snr, rssi: csi.append((c, rssi))
        client.enqueue(Packet("client1", "server", 500, seq=0), "ap1")
        sim.run(until_us=SECOND // 5)
        assert csi and all(c == "client1" for c, _ in csi)
        assert all(isinstance(r, float) for _, r in csi)

    def test_role_validation(self):
        sim, medium, ap, client = make_pair()
        with pytest.raises(ValueError):
            WifiDevice(sim, medium, RngRegistry(1), "x", role="router")

    def test_client_cannot_beacon(self):
        sim, medium, ap, client = make_pair()
        with pytest.raises(RuntimeError):
            client.start_beaconing()
