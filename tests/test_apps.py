"""Tests for the application workloads: video, conferencing, web, bulk."""


from repro.apps.conferencing import (
    HANGOUTS,
    SKYPE,
    ConferencingReceiver,
    ConferencingSender,
)
from repro.apps.video import VideoPlayer
from repro.apps.web import PageLoad
from repro.sim import MS, SECOND, Simulator
from repro.transport.tcp import MSS


class FakeReceiver:
    """Stands in for a TcpReceiver: the player only uses on_deliver."""

    def __init__(self):
        self.on_deliver = lambda segments: None


class TestVideoPlayer:
    def make(self, bitrate=3_000_000):
        sim = Simulator()
        receiver = FakeReceiver()
        player = VideoPlayer(sim, receiver, bitrate_bps=bitrate)
        return sim, receiver, player

    def feed_seconds(self, receiver, player, media_seconds):
        segments = int(media_seconds * player.bitrate_bps / 8 / MSS) + 1
        receiver.on_deliver(segments)

    def test_playback_starts_after_prebuffer(self):
        sim, receiver, player = self.make()
        assert not player.playing
        self.feed_seconds(receiver, player, 2.0)
        sim.run(until_us=200 * MS)
        assert player.playing

    def test_no_rebuffer_when_supply_keeps_up(self):
        sim, receiver, player = self.make()
        for _ in range(20):
            self.feed_seconds(receiver, player, 0.6)
            sim.run(until_us=sim.now + 500 * MS)
        player.stop()
        assert player.rebuffer_count == 0
        assert player.rebuffer_ratio(10 * SECOND) == 0.0

    def test_stall_when_supply_stops(self):
        sim, receiver, player = self.make()
        self.feed_seconds(receiver, player, 2.0)
        sim.run(until_us=4 * SECOND)  # buffer drains after ~2 s
        assert not player.playing
        # refill: playback resumes after the prebuffer, one rebuffer
        self.feed_seconds(receiver, player, 3.0)
        sim.run(until_us=5 * SECOND)
        assert player.playing
        player.stop()
        assert player.rebuffer_count == 1
        assert player.rebuffer_ratio(5 * SECOND) > 0.1

    def test_initial_buffering_not_counted_as_rebuffer(self):
        sim, receiver, player = self.make()
        self.feed_seconds(receiver, player, 3.0)
        sim.run(until_us=2 * SECOND)
        player.stop()
        assert player.rebuffer_count == 0


class TestConferencing:
    def run_call(self, codec, loss_fragments=lambda p: False, seconds=5):
        sim = Simulator()
        delivered = []

        def network(packet):
            if not loss_fragments(packet):
                sim.schedule(2_000, lambda: receiver.on_packet(packet))

        sender = ConferencingSender(sim, "a", "b", network, codec, "conf")
        receiver = ConferencingReceiver(sim, "conf", sender)
        sender.start()
        sim.run(until_us=seconds * SECOND)
        sender.stop()
        return sender, receiver

    def test_clean_path_delivers_target_fps(self):
        sender, receiver = self.run_call(SKYPE)
        fps = receiver.fps_series()
        assert fps and abs(fps[len(fps) // 2] - SKYPE.target_fps) <= 2

    def test_lost_fragment_kills_whole_frame(self):
        drop = lambda p: p.meta["frame_id"] % 2 == 0 and p.meta["fragment"] == 0
        sender, receiver = self.run_call(SKYPE, drop)
        fps = receiver.fps_series()
        mid = fps[len(fps) // 2]
        assert mid <= SKYPE.target_fps // 2 + 2

    def test_hangouts_adapts_frame_size_under_loss(self):
        import random

        rng = random.Random(7)
        drop = lambda p: rng.random() < 0.2
        sender, receiver = self.run_call(HANGOUTS, drop, seconds=8)
        assert sender._frame_bytes < HANGOUTS.frame_bytes

    def test_skype_never_adapts(self):
        import random

        rng = random.Random(7)
        drop = lambda p: rng.random() < 0.2
        sender, receiver = self.run_call(SKYPE, drop, seconds=8)
        assert sender._frame_bytes == SKYPE.frame_bytes


class TestPageLoad:
    def test_page_completes_on_good_link(self):
        from repro.scenarios.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(
                seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                client_start_x_m=9.5,
            )
        )
        page = PageLoad(testbed, page_bytes=400_000)
        testbed.run_seconds(8.0)
        assert page.complete
        assert 0.05 < page.load_time_s() < 8.0
        assert page.bytes_delivered() >= 400_000 - 6 * MSS

    def test_incomplete_page_reports_infinity(self):
        from repro.scenarios.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(
                seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                client_start_x_m=9.5,
            )
        )
        page = PageLoad(testbed, page_bytes=50_000_000)
        testbed.run_seconds(2.0)
        assert not page.complete
        assert page.load_time_s() == float("inf")
