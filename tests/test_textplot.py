"""Tests for the terminal plotting helpers."""

from repro.metrics.textplot import cdf_strip, series_panel, sparkline, timeline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert line == " ▁▂▃▄▅▆▇█"

    def test_flat_series_does_not_crash(self):
        assert len(sparkline([5, 5, 5])) == 3

    def test_explicit_scale_clamps(self):
        line = sparkline([100.0], lo=0.0, hi=10.0)
        assert line == "█"


class TestSeriesPanel:
    def test_shared_scale(self):
        panel = series_panel({"a": [1, 1], "b": [10, 10]})
        lines = panel.splitlines()
        assert len(lines) == 2
        # 'a' renders low on the shared scale, 'b' renders at the top
        assert "█" in lines[1]
        assert "█" not in lines[0]

    def test_empty(self):
        assert series_panel({}) == ""


class TestTimeline:
    def test_step_changes(self):
        line = timeline([(0.0, "ap0"), (5.0, "ap1")], duration=10.0, slots=10)
        assert line == "0000011111"

    def test_unknown_before_first_event(self):
        line = timeline([(5.0, "ap2")], duration=10.0, slots=10)
        assert line.startswith(".")
        assert line.endswith("2")

    def test_zero_duration(self):
        assert timeline([(0, "a")], duration=0) == ""


class TestCdfStrip:
    def test_percentile_values(self):
        strip = cdf_strip(list(range(100)), percentiles=(50, 90))
        assert "p50=50.0" in strip
        assert "p90=90.0" in strip

    def test_empty(self):
        assert cdf_strip([]) == "(no samples)"
