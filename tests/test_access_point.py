"""Focused unit tests for the WGTT access point's protocol behaviour,
using a minimal hand-built testbed (one AP, one parked client)."""


from repro.core.switching import StartMsg, StopMsg
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.net.packet import Packet
from repro.sim.engine import MS, SECOND


def make(seed=3, start_x=9.5):
    testbed = build_testbed(
        TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[0.0],
                      client_start_x_m=start_x, num_aps=2)
    )
    return testbed


class TestStopStart:
    def test_stop_reports_first_unsent_index(self):
        testbed = make()
        ap0 = testbed.wgtt_aps["ap0"]
        captured = {}

        def capture(src, kind, payload):
            if kind == "start":
                captured["msg"] = payload

        testbed.backhaul._handlers["ap1"] = capture
        # Give ap0 a deep backlog it cannot possibly have sent yet.
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=80e6)
        source.start()
        testbed.run_seconds(0.3)
        backlog_head = ap0.device.session("client0").queue.peek()
        assert backlog_head is not None
        expected_k = backlog_head.meta["wgtt_index"]
        ap0._handle_stop(StopMsg(client="client0", target_ap="ap1", switch_id=1))
        testbed.run_seconds(0.1)  # let the ioctl delay elapse
        message = captured["msg"]
        assert isinstance(message, StartMsg)
        assert message.index == expected_k
        assert message.from_ap == "ap0"
        assert not ap0.is_serving("client0")

    def test_stop_with_empty_queue_reports_cyclic_head(self):
        testbed = make()
        ap0 = testbed.wgtt_aps["ap0"]
        captured = {}
        testbed.backhaul._handlers["ap1"] = (
            lambda src, kind, p: captured.setdefault(kind, p)
        )
        head = ap0.cyclic_queue("client0").head
        ap0._handle_stop(StopMsg(client="client0", target_ap="ap1", switch_id=2))
        testbed.run_seconds(0.1)
        assert captured["start"].index == head

    def test_start_adopts_index_and_acks(self):
        testbed = make()
        ap1 = testbed.wgtt_aps["ap1"]
        acks = []
        original = testbed.backhaul._handlers["controller"]

        def spy(src, kind, payload):
            if kind == "ack":
                acks.append(payload)
            original(src, kind, payload)

        testbed.backhaul._handlers["controller"] = spy
        # Preload the cyclic queue as the controller's fan-out would.
        for i in range(40, 50):
            ap1.cyclic_queue("client0").insert(
                i, Packet("server", "client0", 1000, seq=i)
            )
        ap1._handle_start(
            StartMsg(client="client0", index=45, switch_id=9, from_ap="ap0")
        )
        testbed.run_seconds(0.1)
        assert len(acks) == 1 and acks[0].switch_id == 9
        assert ap1.is_serving("client0")
        session = ap1.device.session("client0")
        # sequence space continues from k (45..) — slots 40-44 dropped
        assert session.scoreboard.window_start >= 45
        assert ap1.cyclic_queue("client0").head >= 45

    def test_drain_window_bounded(self):
        testbed = make()
        ap0 = testbed.wgtt_aps["ap0"]
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=50e6)
        source.start()
        testbed.run_seconds(0.3)
        ap0._handle_stop(StopMsg(client="client0", target_ap="ap1", switch_id=1))
        session = ap0.device.session("client0")
        assert session.mode == "drain"
        drain = testbed.config.wgtt.nic_drain_us
        testbed.run_seconds((drain + 5 * MS) / SECOND)
        assert session.mode == "off"
        assert session.scoreboard.in_flight() == 0


class TestCsiPath:
    def test_csi_report_reaches_controller_with_esnr(self):
        testbed = make()
        reports = []
        original = testbed.controller._handle_csi
        testbed.controller._handle_csi = lambda r: (reports.append(r), original(r))
        source, _ = testbed.add_uplink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_seconds(1.0)
        assert reports
        report = reports[0]
        assert report.client_id == "client0"
        assert report.subcarrier_snr_db.shape == (56,)
        assert -20 < report.esnr_db < 45


class TestServingView:
    def test_serving_updates_reach_every_ap(self):
        testbed = make()
        testbed.run_seconds(0.1)
        for ap in testbed.wgtt_aps.values():
            assert ap._serving_view.get("client0") == "ap0"
