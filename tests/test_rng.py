"""Tests for deterministic RNG stream derivation."""

from repro.sim import RngRegistry


def test_same_seed_same_label_same_stream():
    a = RngRegistry(42).stream("fading/ap1/c1")
    b = RngRegistry(42).stream("fading/ap1/c1")
    assert a.standard_normal(8).tolist() == b.standard_normal(8).tolist()


def test_different_labels_differ():
    reg = RngRegistry(42)
    a = reg.stream("fading/ap1/c1").standard_normal(8)
    b = reg.stream("fading/ap2/c1").standard_normal(8)
    assert a.tolist() != b.tolist()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").standard_normal(8)
    b = RngRegistry(2).stream("x").standard_normal(8)
    assert a.tolist() != b.tolist()


def test_stream_is_cached_not_recreated():
    reg = RngRegistry(7)
    first = reg.stream("mac")
    first.standard_normal(4)
    again = reg.stream("mac")
    assert again is first


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(9)
    x1 = reg1.stream("a").standard_normal(4).tolist()
    reg1.stream("b")

    reg2 = RngRegistry(9)
    reg2.stream("b")
    x2 = reg2.stream("a").standard_normal(4).tolist()
    assert x1 == x2


def test_spawn_produces_disjoint_child():
    parent = RngRegistry(5)
    child = parent.spawn("run-0")
    a = parent.stream("x").standard_normal(4).tolist()
    b = child.stream("x").standard_normal(4).tolist()
    assert a != b


def test_spawn_is_reproducible():
    a = RngRegistry(5).spawn("run-0").stream("x").standard_normal(4).tolist()
    b = RngRegistry(5).spawn("run-0").stream("x").standard_normal(4).tolist()
    assert a == b
