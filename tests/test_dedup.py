"""Tests for uplink de-duplication and the BA-forwarding seen-cache."""

from repro.core.ba_forwarding import BaSeenCache, ForwardedBa
from repro.core.dedup import PacketDeduplicator
from repro.net.packet import Packet


def pkt(src="client0", ip_id=0, protocol="udp"):
    return Packet(src, "server", 100, protocol=protocol, ip_id=ip_id)


class TestPacketDeduplicator:
    def test_first_copy_accepted_rest_rejected(self):
        dedup = PacketDeduplicator()
        packet = pkt(ip_id=5)
        assert dedup.accept(packet)
        copy = pkt(ip_id=5)
        assert not dedup.accept(copy)
        assert dedup.duplicates == 1

    def test_distinct_packets_pass(self):
        dedup = PacketDeduplicator()
        assert dedup.accept(pkt(ip_id=1))
        assert dedup.accept(pkt(ip_id=2))
        assert dedup.accept(pkt(src="client1", ip_id=1))

    def test_arp_bypasses(self):
        dedup = PacketDeduplicator()
        assert dedup.accept(pkt(protocol="arp"))
        assert dedup.accept(pkt(protocol="arp"))

    def test_capacity_bounded_fifo_eviction(self):
        dedup = PacketDeduplicator(capacity=4)
        for i in range(5):
            dedup.accept(pkt(ip_id=i))
        # ip_id 0 was evicted; its "duplicate" now passes again.
        assert dedup.accept(pkt(ip_id=0))

    def test_duplicate_ratio(self):
        dedup = PacketDeduplicator()
        dedup.accept(pkt(ip_id=1))
        dedup.accept(pkt(ip_id=1))
        dedup.accept(pkt(ip_id=1))
        assert abs(dedup.duplicate_ratio() - 2 / 3) < 1e-9

    def test_invalid_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            PacketDeduplicator(capacity=0)


class TestPacketDeduplicatorProperties:
    """Randomized model-checking of the bounded-FIFO window.

    A tiny reference model (an ordered key set with FIFO eviction)
    predicts every accept/reject; the real deduplicator must agree on
    arbitrary interleavings of fresh keys, in-window duplicates, and
    post-eviction re-appearances.
    """

    def _model_accept(self, model, key, capacity):
        if key in model:
            return False
        model[key] = None
        if len(model) > capacity:
            model.pop(next(iter(model)))
        return True

    def test_matches_fifo_model_on_random_streams(self):
        import random

        for seed in range(8):
            rng = random.Random(seed)
            capacity = rng.choice([1, 2, 7, 32])
            dedup = PacketDeduplicator(capacity=capacity)
            model = {}
            for _ in range(600):
                src = f"client{rng.randrange(3)}"
                ip_id = rng.randrange(capacity * 3)
                packet = pkt(src=src, ip_id=ip_id)
                expected = self._model_accept(
                    model, packet.dedup_key(), capacity
                )
                assert dedup.accept(packet) is expected
                # The window is bounded at every step, not just at the end.
                assert dedup.window_size() <= capacity
            assert dedup.accepted + dedup.duplicates == 600

    def test_eviction_never_readmits_within_window(self):
        """While a key remains in the FIFO window it is rejected on
        every re-presentation — duplicates never refresh recency."""
        import random

        rng = random.Random(99)
        capacity = 16
        dedup = PacketDeduplicator(capacity=capacity)
        for i in range(capacity):
            assert dedup.accept(pkt(ip_id=i))
        # Hammer in-window keys in random order: all rejected, and the
        # window contents never change (no LRU-style refresh).
        for _ in range(200):
            ip_id = rng.randrange(capacity)
            assert not dedup.accept(pkt(ip_id=ip_id))
        # One fresh key evicts exactly the oldest (ip_id 0), nothing else.
        assert dedup.accept(pkt(ip_id=capacity))
        assert dedup.accept(pkt(ip_id=0))  # evicted: passes again
        # Each insertion evicts exactly the current oldest, so the
        # forgotten keys cascade from the old end (1, then 2, ...)
        # while young keys and fresh re-admissions stay rejected.
        assert dedup.accept(pkt(ip_id=1))  # 0's re-admission evicted it
        assert not dedup.accept(pkt(ip_id=capacity - 1))  # young: in-window
        assert not dedup.accept(pkt(ip_id=0))  # just re-admitted: rejected

    def test_snapshot_restore_roundtrips_random_states(self):
        import random

        for seed in range(6):
            rng = random.Random(1000 + seed)
            capacity = rng.choice([4, 16, 64])
            dedup = PacketDeduplicator(capacity=capacity)
            for _ in range(rng.randrange(1, 150)):
                dedup.accept(
                    pkt(
                        src=f"client{rng.randrange(4)}",
                        ip_id=rng.randrange(64),
                    )
                )
            state = dedup.snapshot()
            clone = PacketDeduplicator()
            clone.restore(state)
            # Identical externally visible state...
            assert clone.snapshot() == state
            assert clone.window_size() == dedup.window_size()
            assert clone.duplicate_ratio() == dedup.duplicate_ratio()
            # ...and identical future behaviour, including eviction order.
            for _ in range(100):
                probe = pkt(
                    src=f"client{rng.randrange(4)}",
                    ip_id=rng.randrange(64),
                )
                clone_copy = pkt(src=probe.src, ip_id=probe.ip_id)
                assert dedup.accept(probe) is clone.accept(clone_copy)
            assert dedup.snapshot() == clone.snapshot()

    def test_duplicate_ratio_at_eviction_boundary(self):
        """Ratio accounting stays exact when a duplicate's key was
        already FIFO-evicted: the copy counts as *accepted* (the window
        genuinely forgot it), not as a duplicate."""
        capacity = 4
        dedup = PacketDeduplicator(capacity=capacity)
        for i in range(capacity):
            dedup.accept(pkt(ip_id=i))
        assert not dedup.accept(pkt(ip_id=0))  # in-window duplicate
        assert dedup.accept(pkt(ip_id=capacity))  # evicts ip_id 0
        assert dedup.accept(pkt(ip_id=0))  # forgotten: re-accepted
        assert dedup.accepted == capacity + 2
        assert dedup.duplicates == 1
        assert abs(
            dedup.duplicate_ratio() - 1 / (capacity + 3)
        ) < 1e-12


class TestBaSeenCache:
    def ba(self, start=0, acked=(1, 2), heard_by="ap2", at=0):
        return ForwardedBa(
            client="client0",
            start_seq=start,
            acked=frozenset(acked),
            heard_by=heard_by,
            heard_at_us=at,
        )

    def test_first_seen_accepted(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(), now_us=0)

    def test_same_info_rejected_even_from_other_ap(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(heard_by="ap2"), now_us=0)
        assert not cache.check_and_record(self.ba(heard_by="ap3"), now_us=10)

    def test_locally_received_ba_blocks_forwarded_copy(self):
        cache = BaSeenCache()
        cache.record_local("client0", 0, {1, 2}, now_us=0)
        assert not cache.check_and_record(self.ba(), now_us=100)

    def test_different_bitmap_is_new_information(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(acked=(1, 2)), now_us=0)
        assert cache.check_and_record(self.ba(acked=(1, 2, 3)), now_us=10)

    def test_entries_expire(self):
        cache = BaSeenCache(horizon_us=1_000)
        assert cache.check_and_record(self.ba(), now_us=0)
        assert cache.check_and_record(self.ba(), now_us=5_000)

    def test_len_tracks_entries(self):
        cache = BaSeenCache()
        cache.check_and_record(self.ba(start=0), now_us=0)
        cache.check_and_record(self.ba(start=64), now_us=0)
        assert len(cache) == 2
