"""Tests for uplink de-duplication and the BA-forwarding seen-cache."""

from repro.core.ba_forwarding import BaSeenCache, ForwardedBa
from repro.core.dedup import PacketDeduplicator
from repro.net.packet import Packet


def pkt(src="client0", ip_id=0, protocol="udp"):
    return Packet(src, "server", 100, protocol=protocol, ip_id=ip_id)


class TestPacketDeduplicator:
    def test_first_copy_accepted_rest_rejected(self):
        dedup = PacketDeduplicator()
        packet = pkt(ip_id=5)
        assert dedup.accept(packet)
        copy = pkt(ip_id=5)
        assert not dedup.accept(copy)
        assert dedup.duplicates == 1

    def test_distinct_packets_pass(self):
        dedup = PacketDeduplicator()
        assert dedup.accept(pkt(ip_id=1))
        assert dedup.accept(pkt(ip_id=2))
        assert dedup.accept(pkt(src="client1", ip_id=1))

    def test_arp_bypasses(self):
        dedup = PacketDeduplicator()
        assert dedup.accept(pkt(protocol="arp"))
        assert dedup.accept(pkt(protocol="arp"))

    def test_capacity_bounded_fifo_eviction(self):
        dedup = PacketDeduplicator(capacity=4)
        for i in range(5):
            dedup.accept(pkt(ip_id=i))
        # ip_id 0 was evicted; its "duplicate" now passes again.
        assert dedup.accept(pkt(ip_id=0))

    def test_duplicate_ratio(self):
        dedup = PacketDeduplicator()
        dedup.accept(pkt(ip_id=1))
        dedup.accept(pkt(ip_id=1))
        dedup.accept(pkt(ip_id=1))
        assert abs(dedup.duplicate_ratio() - 2 / 3) < 1e-9

    def test_invalid_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            PacketDeduplicator(capacity=0)


class TestBaSeenCache:
    def ba(self, start=0, acked=(1, 2), heard_by="ap2", at=0):
        return ForwardedBa(
            client="client0",
            start_seq=start,
            acked=frozenset(acked),
            heard_by=heard_by,
            heard_at_us=at,
        )

    def test_first_seen_accepted(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(), now_us=0)

    def test_same_info_rejected_even_from_other_ap(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(heard_by="ap2"), now_us=0)
        assert not cache.check_and_record(self.ba(heard_by="ap3"), now_us=10)

    def test_locally_received_ba_blocks_forwarded_copy(self):
        cache = BaSeenCache()
        cache.record_local("client0", 0, {1, 2}, now_us=0)
        assert not cache.check_and_record(self.ba(), now_us=100)

    def test_different_bitmap_is_new_information(self):
        cache = BaSeenCache()
        assert cache.check_and_record(self.ba(acked=(1, 2)), now_us=0)
        assert cache.check_and_record(self.ba(acked=(1, 2, 3)), now_us=10)

    def test_entries_expire(self):
        cache = BaSeenCache(horizon_us=1_000)
        assert cache.check_and_record(self.ba(), now_us=0)
        assert cache.check_and_record(self.ba(), now_us=5_000)

    def test_len_tracks_entries(self):
        cache = BaSeenCache()
        cache.check_and_record(self.ba(start=0), now_us=0)
        cache.check_and_record(self.ba(start=64), now_us=0)
        assert len(cache) == 2
