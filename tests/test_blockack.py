"""Tests for the block-ACK scoreboard and reorder buffer."""

import pytest

from repro.mac.blockack import BlockAckScoreboard, ReorderBuffer
from repro.mac.frames import BA_WINDOW, SEQ_MODULO, seq_distance, seq_in_window
from repro.net.packet import Packet


def pkt(seq=0):
    return Packet("server", "client0", 1500, seq=seq)


# ----------------------------------------------------------------------
# sequence arithmetic
# ----------------------------------------------------------------------

def test_seq_distance_forward():
    assert seq_distance(10, 15) == 5
    assert seq_distance(15, 10) == SEQ_MODULO - 5


def test_seq_distance_wraps():
    assert seq_distance(4090, 5) == 11


def test_seq_in_window():
    assert seq_in_window(10, 10)
    assert seq_in_window(73, 10)
    assert not seq_in_window(74, 10)
    assert seq_in_window(3, 4090)  # wrapped window


# ----------------------------------------------------------------------
# scoreboard
# ----------------------------------------------------------------------

class TestScoreboard:
    def test_issue_assigns_sequential_seqs(self):
        board = BlockAckScoreboard()
        seqs = [board.issue(pkt(i)).seq for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_window_room_shrinks_as_issued(self):
        board = BlockAckScoreboard()
        assert board.window_room() == BA_WINDOW
        for i in range(10):
            board.issue(pkt(i))
        assert board.window_room() == BA_WINDOW - 10

    def test_window_full_raises(self):
        board = BlockAckScoreboard()
        for i in range(BA_WINDOW):
            board.issue(pkt(i))
        with pytest.raises(RuntimeError):
            board.issue(pkt(99))

    def test_full_ack_advances_window(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(8)]
        board.record_transmit(mpdus)
        delivered, dropped = board.process_block_ack({m.seq for m in mpdus})
        assert len(delivered) == 8 and not dropped
        assert board.window_start == 8
        assert board.window_room() == BA_WINDOW

    def test_partial_ack_schedules_retransmissions(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(4)]
        board.record_transmit(mpdus)
        delivered, dropped = board.process_block_ack({0, 2})
        assert len(delivered) == 2 and not dropped
        assert board.has_retransmits
        retx = board.take_retransmits(10)
        assert sorted(m.seq for m in retx) == [1, 3]
        # window still anchored at the oldest unacked seq
        assert board.window_start == 1

    def test_timeout_queues_all_for_retry(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(3)]
        board.record_transmit(mpdus)
        board.process_timeout([m.seq for m in mpdus])
        assert board.has_retransmits
        assert len(board.take_retransmits(10)) == 3

    def test_retry_limit_drops_mpdu(self):
        board = BlockAckScoreboard(retry_limit=2)
        mpdu = board.issue(pkt(0))
        for _ in range(3):
            board.record_transmit([mpdu] if mpdu not in [] else [mpdu])
            board.process_timeout([mpdu.seq])
            taken = board.take_retransmits(10)
            if not taken:
                break
            mpdu = taken[0]
        assert board.dropped == 1
        assert board.window_start == board.next_seq

    def test_forwarded_ba_cancels_pending_retransmission(self):
        """The WGTT BA-forwarding path: a late-arriving forwarded BA
        positively acks MPDUs already queued for retransmission."""
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(2)]
        board.record_transmit(mpdus)
        board.process_timeout([0, 1])
        delivered = board.apply_external_ack({0, 1})
        assert len(delivered) == 2
        assert not board.has_retransmits
        assert board.window_start == 2

    def test_external_ack_never_penalizes(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(3)]
        board.record_transmit(mpdus)
        board.apply_external_ack({1})
        # 0 and 2 must remain outstanding, not counted as failures.
        assert board.in_flight() == 2
        assert board.retransmissions == 0

    def test_reset_to_continues_sequence_space(self):
        board = BlockAckScoreboard()
        for i in range(5):
            board.issue(pkt(i))
        board.reset_to(1200)
        assert board.next_seq == 1200
        assert board.window_start == 1200
        assert board.issue(pkt(9)).seq == 1200

    def test_abandon_all_clears_and_advances(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(4)]
        board.record_transmit(mpdus)
        board.process_timeout([0, 1])
        count = board.abandon_all()
        assert count == 4
        assert board.in_flight() == 0
        assert board.window_start == board.next_seq

    def test_acked_before(self):
        board = BlockAckScoreboard()
        mpdus = [board.issue(pkt(i)) for i in range(3)]
        board.record_transmit(mpdus)
        board.process_block_ack({0})
        assert board.acked_before([0, 1, 2]) == {0}

    def test_seq_wraps_at_modulo(self):
        board = BlockAckScoreboard()
        board.reset_to(SEQ_MODULO - 2)
        seqs = [board.issue(pkt(i)).seq for i in range(4)]
        assert seqs == [4094, 4095, 0, 1]


# ----------------------------------------------------------------------
# reorder buffer
# ----------------------------------------------------------------------

class TestReorderBuffer:
    def test_in_order_release(self):
        buffer = ReorderBuffer()
        out = []
        for i in range(3):
            out.extend(p.seq for p in buffer.receive(i, pkt(i)))
        assert out == [0, 1, 2]

    def test_gap_blocks_until_filled(self):
        buffer = ReorderBuffer()
        assert buffer.receive(1, pkt(1)) == []
        released = buffer.receive(0, pkt(0))
        assert [p.seq for p in released] == [0, 1]

    def test_duplicate_dropped_but_acked(self):
        buffer = ReorderBuffer()
        buffer.receive(0, pkt(0))
        assert buffer.receive(0, pkt(0)) == []
        assert buffer.duplicates == 1
        # the BA still covers it so the sender stops retrying
        assert buffer.ack_set([0]) == {0}

    def test_behind_seq_counts_duplicate(self):
        buffer = ReorderBuffer()
        for i in range(5):
            buffer.receive(i, pkt(i))
        assert buffer.receive(2, pkt(2)) == []
        assert buffer.duplicates == 1

    def test_advance_to_skips_given_up_gap(self):
        buffer = ReorderBuffer()
        buffer.receive(0, pkt(0))
        buffer.receive(2, pkt(2))  # 1 missing
        released = buffer.advance_to(2)  # sender gave up on 1
        assert [p.seq for p in released] == [2]
        assert buffer.next_expected == 3

    def test_advance_to_salvages_buffered(self):
        buffer = ReorderBuffer()
        buffer.receive(3, pkt(3))
        buffer.receive(5, pkt(5))
        released = buffer.advance_to(6)
        assert [p.seq for p in released] == [3, 5]

    def test_advance_backward_is_noop(self):
        buffer = ReorderBuffer()
        for i in range(10):
            buffer.receive(i, pkt(i))
        assert buffer.advance_to(5) == []
        assert buffer.next_expected == 10

    def test_ack_set_reports_only_received(self):
        buffer = ReorderBuffer()
        buffer.receive(0, pkt(0))
        buffer.receive(2, pkt(2))
        assert buffer.ack_set([0, 1, 2, 3]) == {0, 2}

    def test_history_pruning_bounded(self):
        buffer = ReorderBuffer()
        for i in range(6000):
            buffer.receive(i % SEQ_MODULO, pkt(i))
            buffer.forget_old_history()
        assert len(buffer._received_history) <= 8 * 4 * BA_WINDOW

    def test_wraparound_delivery(self):
        buffer = ReorderBuffer()
        buffer._next_expected = SEQ_MODULO - 2
        out = []
        for seq in (SEQ_MODULO - 2, SEQ_MODULO - 1, 0, 1):
            out.extend(p.seq for p in buffer.receive(seq, pkt(seq)))
        assert out == [SEQ_MODULO - 2, SEQ_MODULO - 1, 0, 1]
