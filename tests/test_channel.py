"""Tests for path loss, antennas, fading, and the link model."""

import math

import numpy as np
import pytest

from repro.channel import (
    NOISE_FLOOR_DBM,
    NUM_SUBCARRIERS,
    ChannelMap,
    LogDistancePathLoss,
    OmniAntenna,
    ParabolicAntenna,
    RadioPort,
    TappedRayleighChannel,
    coherence_time_us,
    doppler_hz,
    free_space_path_loss_db,
)
from repro.channel.csi import CsiReport
from repro.mobility import Position, Road, VehicleTrack
from repro.sim import RngRegistry, Simulator
from repro.sim.engine import MS


# ----------------------------------------------------------------------
# path loss
# ----------------------------------------------------------------------

def test_fspl_increases_with_distance():
    f = 2.462e9
    assert free_space_path_loss_db(20, f) > free_space_path_loss_db(10, f)


def test_fspl_6db_per_doubling():
    f = 2.462e9
    delta = free_space_path_loss_db(20, f) - free_space_path_loss_db(10, f)
    assert delta == pytest.approx(6.02, abs=0.01)


def test_log_distance_exponent():
    model = LogDistancePathLoss(exponent=3.0, excess_loss_db=0.0)
    delta = model.loss_db(100.0) - model.loss_db(10.0)
    assert delta == pytest.approx(30.0, abs=0.01)


def test_distance_floor_at_reference():
    model = LogDistancePathLoss()
    assert model.loss_db(0.001) == model.loss_db(model.reference_distance_m)


def test_wavelength_is_12cm_at_channel_11():
    model = LogDistancePathLoss()
    assert model.wavelength_m == pytest.approx(0.1218, abs=0.001)


# ----------------------------------------------------------------------
# antennas
# ----------------------------------------------------------------------

def make_roadside_antenna():
    mount = Position(15.0, -12.0, 10.0)
    return ParabolicAntenna(mount=mount, boresight=Position(15.0, 0.0, 1.5))


def test_omni_gain_uniform():
    ant = OmniAntenna(peak_gain_dbi=2.0)
    assert ant.gain_dbi(Position(1, 2, 3)) == 2.0
    assert ant.gain_dbi(Position(-9, 0, 0)) == 2.0


def test_parabolic_peak_on_boresight():
    ant = make_roadside_antenna()
    assert ant.gain_dbi(Position(15.0, 0.0, 1.5)) == pytest.approx(14.0)


def test_parabolic_3db_at_half_beamwidth():
    ant = make_roadside_antenna()
    # Rotate 10.5 deg off boresight within the vertical plane.
    distance = ant.mount.distance_to(ant.boresight)
    offset = distance * math.tan(math.radians(10.5))
    target = Position(15.0 + offset, 0.0, 1.5)
    # Slight geometric error from the flat-offset construction.
    assert ant.gain_dbi(target) == pytest.approx(11.0, abs=0.4)


def test_parabolic_side_lobe_floor():
    ant = make_roadside_antenna()
    way_off = Position(90.0, 0.0, 1.5)
    assert ant.gain_dbi(way_off) == pytest.approx(
        14.0 - ant.side_lobe_suppression_db
    )


def test_parabolic_gain_decreases_off_axis():
    ant = make_roadside_antenna()
    gains = [ant.gain_dbi(Position(15.0 + dx, 0.0, 1.5)) for dx in (0, 1, 2, 4)]
    assert gains == sorted(gains, reverse=True)


# ----------------------------------------------------------------------
# fading
# ----------------------------------------------------------------------

def test_doppler_and_coherence():
    wavelength = 0.122
    fd = doppler_hz(6.7, wavelength)  # 15 mph
    assert fd == pytest.approx(54.9, rel=0.01)
    tc = coherence_time_us(fd)
    assert 2_000 < tc < 6_000  # paper: 2-3 ms at vehicular speed


def test_doppler_floor_for_static():
    assert doppler_hz(0.0, 0.122) == 2.0


def test_fading_unit_mean_power():
    rng = RngRegistry(3)
    powers = []
    for i in range(200):
        ch = TappedRayleighChannel(rng.stream(f"f{i}"))
        powers.append(np.mean(ch.subcarrier_power()))
    assert np.mean(powers) == pytest.approx(1.0, abs=0.15)


def test_fading_is_frequency_selective():
    ch = TappedRayleighChannel(RngRegistry(3).stream("x"))
    power_db = 10 * np.log10(ch.subcarrier_power())
    assert power_db.max() - power_db.min() > 3.0
    assert len(power_db) == NUM_SUBCARRIERS


def test_fading_decorrelates_over_coherence_time():
    rng = RngRegistry(4)
    corr_short, corr_long = [], []
    for i in range(100):
        ch = TappedRayleighChannel(rng.stream(f"l{i}"))
        ch.evolve_to(0, coherence_us=2_500)
        before = ch.subcarrier_gains().copy()
        ch.evolve_to(100, coherence_us=2_500)  # 0.1 ms later
        corr_short.append(abs(np.vdot(before, ch.subcarrier_gains())))
        ch.evolve_to(50_000, coherence_us=2_500)  # 50 ms later
        corr_long.append(abs(np.vdot(before, ch.subcarrier_gains())))
    assert np.mean(corr_short) > 2 * np.mean(corr_long)


def test_fading_evolution_ignores_time_reversal():
    ch = TappedRayleighChannel(RngRegistry(5).stream("x"))
    ch.evolve_to(1000, coherence_us=2_500)
    snapshot = ch.subcarrier_gains().copy()
    ch.evolve_to(500, coherence_us=2_500)  # earlier time: no-op
    assert np.array_equal(snapshot, ch.subcarrier_gains())


def test_rician_k_reduces_fade_depth():
    rng = RngRegistry(6)
    def spread(k_db, label):
        depths = []
        for i in range(60):
            ch = TappedRayleighChannel(
                rng.stream(f"{label}{i}"), rician_k_db=k_db
            )
            p = ch.subcarrier_power()
            depths.append(10 * np.log10(p.max() / max(p.min(), 1e-12)))
        return np.mean(depths)

    assert spread(10.0, "rice") < spread(None, "ray")


def test_invalid_tap_count_rejected():
    with pytest.raises(ValueError):
        TappedRayleighChannel(RngRegistry(1).stream("x"), num_taps=0)


# ----------------------------------------------------------------------
# link + channel map
# ----------------------------------------------------------------------

def build_link(seed=1, speed_mph=15.0):
    sim = Simulator()
    rng = RngRegistry(seed)
    road = Road()
    cmap = ChannelMap(sim, rng)
    mount = Position(15.0, -12.0, 10.0)
    antenna = ParabolicAntenna(mount=mount, boresight=Position(15.0, 0.0, 1.5))
    cmap.register_port(RadioPort("ap1", antenna, 20.0, lambda t: mount))
    track = VehicleTrack(road, start_x=0.0, speed_mph=speed_mph)
    cmap.register_port(
        RadioPort(
            "c1", OmniAntenna(), 15.0, track.position_at, lambda: track.speed_mps
        )
    )
    return sim, cmap, track


def test_link_snr_peaks_at_boresight():
    _, cmap, track = build_link()
    link = cmap.link("ap1", "c1")
    t_peak = track.time_to_reach_x(15.0)
    snr_far = link.mean_snr_db(0)
    snr_peak = link.mean_snr_db(t_peak)
    assert snr_peak > snr_far + 15.0
    assert 20.0 < snr_peak < 35.0  # calibrated operating point


def test_link_downlink_uplink_power_asymmetry():
    _, cmap, track = build_link()
    link = cmap.link("ap1", "c1")
    t = track.time_to_reach_x(15.0)
    dl = link.mean_snr_db(t, downlink=True)
    ul = link.mean_snr_db(t, downlink=False)
    assert dl - ul == pytest.approx(5.0)  # 20 dBm AP vs 15 dBm client


def test_link_csi_has_56_subcarriers():
    _, cmap, track = build_link()
    link = cmap.link("ap1", "c1")
    snr = link.subcarrier_snr_db(100 * MS)
    assert snr.shape == (NUM_SUBCARRIERS,)


def test_link_subcarrier_snr_cached_per_timestamp():
    _, cmap, _ = build_link()
    link = cmap.link("ap1", "c1")
    a = link.subcarrier_snr_db(5 * MS)
    b = link.subcarrier_snr_db(5 * MS)
    assert np.array_equal(a, b)


def test_link_reciprocity_same_fading_both_directions():
    # Uplink CSI predicts downlink: fading term must be shared.
    _, cmap, track = build_link()
    link = cmap.link("ap1", "c1")
    t = track.time_to_reach_x(15.0)
    dl = link.subcarrier_snr_db(t, downlink=True)
    ul = link.subcarrier_snr_db(t, downlink=False)
    assert np.allclose(dl - ul, dl[0] - ul[0])  # constant power offset


def test_rssi_includes_fading():
    _, cmap, _ = build_link()
    link = cmap.link("ap1", "c1")
    values = {link.rssi_dbm(t * 10 * MS) for t in range(10)}
    assert len(values) > 1  # varies over time
    assert all(v < 0 for v in values)
    assert all(v > NOISE_FLOOR_DBM - 40 for v in values)


def test_channel_map_rejects_duplicate_ids():
    sim, rng = Simulator(), RngRegistry(1)
    cmap = ChannelMap(sim, rng)
    port = RadioPort("x", OmniAntenna(), 10.0, lambda t: Position(0, 0, 0))
    cmap.register_port(port)
    with pytest.raises(ValueError):
        cmap.register_port(port)


def test_channel_map_link_is_cached():
    _, cmap, _ = build_link()
    assert cmap.link("ap1", "c1") is cmap.link("ap1", "c1")


def test_links_for_client():
    _, cmap, _ = build_link()
    cmap.link("ap1", "c1")
    assert len(cmap.links_for_client("c1")) == 1
    assert cmap.links_for_client("other") == []


def test_best_ap_flips_at_millisecond_scale():
    """The vehicular picocell regime (paper Fig 2): with two overlapping
    APs, the instantaneously better AP changes on ms timescales."""
    sim = Simulator()
    rng = RngRegistry(11)
    road = Road()
    cmap = ChannelMap(sim, rng)
    for i, x in enumerate((15.0, 22.5)):
        mount = Position(x, -12.0, 10.0)
        ant = ParabolicAntenna(mount=mount, boresight=Position(x, 0.0, 1.5))
        cmap.register_port(
            RadioPort(f"ap{i}", ant, 20.0, lambda t, m=mount: m)
        )
    track = VehicleTrack(road, start_x=0.0, speed_mph=25.0)
    cmap.register_port(
        RadioPort(
            "c1", OmniAntenna(), 15.0, track.position_at, lambda: track.speed_mps
        )
    )
    # Sample in the overlap region every millisecond.
    t0 = track.time_to_reach_x(18.5)
    from repro.phy import effective_snr_db

    best = []
    for k in range(120):
        t = t0 + k * MS
        e0 = effective_snr_db(cmap.link("ap0", "c1").subcarrier_snr_db(t))
        e1 = effective_snr_db(cmap.link("ap1", "c1").subcarrier_snr_db(t))
        best.append(0 if e0 >= e1 else 1)
    flips = sum(1 for a, b in zip(best, best[1:]) if a != b)
    assert flips >= 3


def test_csi_report_wire_size_and_esnr():
    report = CsiReport(
        time_us=0,
        ap_id="ap1",
        client_id="c1",
        subcarrier_snr_db=np.full(56, 18.0),
        rssi_dbm=-60.0,
    )
    assert report.wire_size_bytes() == 136
    assert report.esnr_db == pytest.approx(18.0, abs=0.1)
    # cached value reused
    assert report.esnr_db == report.esnr_db
