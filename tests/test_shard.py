"""Sharded control plane, scenario builder, and spatial index tests.

Covers the PR-10 surface:

* ``ApGridIndex`` returns exactly what the legacy linear ``min()``
  returned (random layouts, ties, predicates);
* ``ScenarioBuilder``/``RegionSpec`` construct the identical testbed
  the monolithic constructor did, and ``build_testbed`` survives as a
  deprecation shim;
* per-client checkpoint state survives an extract → bytes → merge
  round trip;
* inter-shard handoffs migrate a client with zero invariant
  violations and zero duplicate deliveries;
* sharded runs are seed-deterministic;
* the preset registry resolves declarative specs.
"""

from __future__ import annotations

import random

import pytest

from repro.ha.checkpoint import (
    client_state_from_bytes,
    client_state_to_bytes,
    extract_client_state,
    merge_client_state,
)
from repro.mobility.road import Position, Road
from repro.mobility.vehicle import VehicleTrack
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.presets import (
    preset,
    preset_names,
    shard_corridor_config,
)
from repro.scenarios.spatial import ApGridIndex
from repro.scenarios.testbed import Testbed, TestbedConfig, build_testbed
from repro.shard.config import ShardConfig


def _sharded_config(
    num_shards: int = 2,
    num_aps: int = 8,
    seed: int = 3,
    speed_mph: float = 25.0,
    **overrides,
) -> TestbedConfig:
    config = shard_corridor_config(
        num_shards=num_shards, num_aps=num_aps, seed=seed, **overrides
    )
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(
            road, start_x=config.client_start_x_m, speed_mph=speed_mph
        )
    ]
    return config


# ----------------------------------------------------------------------
# spatial index
# ----------------------------------------------------------------------


class TestApGridIndex:
    def _linear_oracle(self, aps, position, predicate=None):
        """The legacy scan: min() over insertion order (ties keep the
        first), distances computed for every candidate."""
        best, best_dist = None, None
        for ap_id, ap_pos in aps:
            if predicate is not None and not predicate(ap_id):
                continue
            dist = ap_pos.distance_to(position)
            if best_dist is None or dist < best_dist:
                best, best_dist = ap_id, dist
        return best

    def test_matches_linear_oracle_random_layouts(self):
        rng = random.Random(7)
        for trial in range(20):
            count = rng.randint(1, 60)
            aps = []
            index = ApGridIndex(bucket_m=rng.choice([5.0, 25.0, 80.0]))
            for i in range(count):
                pos = Position(
                    rng.uniform(-40.0, 600.0), -12.0, rng.uniform(3.0, 12.0)
                )
                aps.append((f"ap{i}", pos))
                index.add(f"ap{i}", pos)
            for _ in range(40):
                probe = Position(rng.uniform(-60.0, 660.0), 0.0, 1.5)
                assert index.nearest(probe) == self._linear_oracle(aps, probe)

    def test_tie_breaks_by_insertion_order(self):
        index = ApGridIndex()
        left = Position(10.0, 0.0, 0.0)
        right = Position(30.0, 0.0, 0.0)
        index.add("apA", left)
        index.add("apB", right)
        # Probe equidistant from both: the first-inserted AP wins,
        # exactly as min() keeps the first of equal keys.
        assert index.nearest(Position(20.0, 0.0, 0.0)) == "apA"

    def test_predicate_filters_and_may_empty(self):
        rng = random.Random(11)
        aps = []
        index = ApGridIndex()
        for i in range(25):
            pos = Position(rng.uniform(0.0, 300.0), -12.0, 10.0)
            aps.append((f"ap{i}", pos))
            index.add(f"ap{i}", pos)
        allow = lambda ap_id: int(ap_id[2:]) % 3 == 0
        for _ in range(30):
            probe = Position(rng.uniform(0.0, 300.0), 0.0, 1.5)
            assert index.nearest(probe, predicate=allow) == (
                self._linear_oracle(aps, probe, predicate=allow)
            )
        assert index.nearest(Position(0, 0, 0), predicate=lambda _: False) is None

    def test_empty_index(self):
        assert ApGridIndex().nearest(Position(0, 0, 0)) is None

    def test_scanned_stays_local_as_deployment_grows(self):
        """The candidate-set claim: per-query scan cost is O(nearby),
        not O(N)."""
        costs = {}
        for num_aps in (8, 200):
            index = ApGridIndex()
            config = TestbedConfig(num_aps=num_aps)
            for i, x in enumerate(config.ap_xs()):
                index.add(f"ap{i}", Position(x, -12.0, 10.0))
            for k in range(64):
                index.nearest(
                    Position(config.road_length_m() * k / 63, 0.0, 1.5)
                )
            costs[num_aps] = index.scanned / index.queries
        assert costs[200] < 2 * costs[8]
        assert costs[200] < 16  # nowhere near the 200 a linear scan pays


# ----------------------------------------------------------------------
# scenario builder / region planning
# ----------------------------------------------------------------------


class TestRegionPlanning:
    def test_single_region_when_sharding_off(self):
        regions = ScenarioBuilder.plan_regions(TestbedConfig())
        assert len(regions) == 1
        assert list(regions[0].ap_ids) == [f"ap{i}" for i in range(8)]
        assert regions[0].controller_id == "controller"
        assert regions[0].standby_id is None

    def test_contiguous_even_partition(self):
        config = shard_corridor_config(num_shards=3, num_aps=8)
        regions = ScenarioBuilder.plan_regions(config)
        sizes = [len(r.ap_xs) for r in regions]
        assert sizes == [3, 3, 2]  # even as possible, larger first
        flat = [ap for r in regions for ap in r.ap_ids]
        assert flat == [f"ap{i}" for i in range(8)]
        assert [r.controller_id for r in regions] == [
            "controller-s0", "controller-s1", "controller-s2",
        ]
        # Regions tile the corridor left to right.
        for left, right in zip(regions, regions[1:]):
            assert left.ap_xs[-1] < right.ap_xs[0]

    def test_sharding_rejects_wgtt_ha(self):
        from repro.core.config import WgttConfig

        config = shard_corridor_config(num_shards=2)
        config.wgtt = WgttConfig(ha_enabled=True)
        with pytest.raises(ValueError, match="per-shard HA"):
            ScenarioBuilder.plan_regions(config)

    def test_per_shard_standby_ids(self):
        config = shard_corridor_config(
            num_shards=2, shard=ShardConfig(num_shards=2, ha_enabled=True)
        )
        regions = ScenarioBuilder.plan_regions(config)
        assert [r.standby_id for r in regions] == [
            "standby-s0", "standby-s1",
        ]


def _drive_fingerprint(make_testbed):
    """Short drive collapsed to the exact arrival stream: any
    construction drift (RNG draw order, timer registration, AP wiring)
    perturbs packet timing and shows up here byte for byte."""
    from repro.phy.per import reset_phy_memos

    reset_phy_memos()
    testbed = make_testbed(TestbedConfig(seed=5, client_speeds_mph=[20.0]))
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=40e6)
    source.start()
    testbed.run_seconds(1.5)
    return (
        tuple(sink.arrivals),
        len(testbed.controller.coordinator.history),
        testbed.serving_ap_of(0),
    )


class TestBuilderEquivalence:
    def test_builder_matches_direct_constructor(self):
        direct = _drive_fingerprint(Testbed)
        staged = _drive_fingerprint(
            lambda config: ScenarioBuilder(config).build()
        )
        assert staged == direct

    def test_build_testbed_shim_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="ScenarioBuilder"):
            shimmed = _drive_fingerprint(build_testbed)
        assert shimmed == _drive_fingerprint(Testbed)

    def test_stage_decomposition_is_invokable(self):
        """Each build stage is an explicit, separately callable step."""
        builder = ScenarioBuilder(TestbedConfig())
        tb = Testbed.__new__(Testbed)
        tb.config = builder.config
        builder.build_substrate(tb)
        builder.build_ap_bank(tb)
        builder.build_control_plane(tb)
        builder.build_ha(tb)
        builder.build_clients(tb)
        builder.build_faults(tb)
        builder.build_recorders(tb)
        assert len(tb.wgtt_aps) == 8
        assert tb.controller is not None
        assert len(tb.ap_index) == 8


class TestApXsMemoization:
    def test_cached_and_mutation_safe(self):
        config = TestbedConfig(num_aps=12)
        first = config.ap_xs()
        first.append(1e9)  # caller mutation must not poison the cache
        assert config.ap_xs() == first[:-1]

    def test_invalidated_when_geometry_changes(self):
        config = TestbedConfig(num_aps=4)
        assert len(config.ap_xs()) == 4
        config.num_aps = 6
        assert len(config.ap_xs()) == 6


# ----------------------------------------------------------------------
# per-client checkpoint state
# ----------------------------------------------------------------------


class TestClientStateRoundtrip:
    def _testbed(self):
        tb = Testbed(_sharded_config())
        tb.add_uplink_udp_flow(0, rate_bps=1e6)[0].start()
        tb.add_downlink_udp_flow(0, rate_bps=2e6)[0].start()
        tb.run_seconds(1.0)
        return tb

    def test_bytes_round_trip_is_lossless(self):
        tb = self._testbed()
        source = tb.shard_manager.shards[0].controller
        state = extract_client_state(source, "client0")
        assert state["client"] == "client0"
        assert state["state"]["serving_ap"] in source._ap_ids
        assert client_state_from_bytes(client_state_to_bytes(state)) == state

    def test_merge_installs_client_on_target(self):
        tb = self._testbed()
        manager = tb.shard_manager
        source = manager.shards[0].controller
        target = manager.shards[1].controller
        state = extract_client_state(source, "client0")
        source.deregister_client("client0")
        assert merge_client_state(target, state, serving_ap="ap4")
        assert "client0" in target._clients
        assert target.serving_ap("client0") == "ap4"
        # Selection history crossed the boundary with the client.
        assert target.selector.client_snapshot("client0")
        # Merging again is a no-op (duplicate handoff message).
        assert not merge_client_state(target, state, serving_ap="ap4")

    def test_extract_requires_tracked_client(self):
        tb = self._testbed()
        with pytest.raises(KeyError):
            extract_client_state(
                tb.shard_manager.shards[0].controller, "nobody"
            )


# ----------------------------------------------------------------------
# inter-shard handoff, end to end
# ----------------------------------------------------------------------


class TestInterShardHandoff:
    def _run(self, **overrides):
        tb = Testbed(_sharded_config(**overrides))
        checker = tb.install_invariant_checker()
        tb.add_downlink_udp_flow(0, rate_bps=4e6)[0].start()
        source, sink = tb.add_uplink_udp_flow(0, rate_bps=1e6)
        source.start()
        tb.run_seconds(5.0)
        return tb, checker.finish(), sink

    def test_handoff_completes_with_zero_violations(self):
        tb, report, sink = self._run()
        manager = tb.shard_manager
        assert manager.stats["handoffs_completed"] >= 1
        assert manager.stats["handoffs_abandoned"] == 0
        assert report["ok"], report["violations"]
        assert report["counts"]["no-duplicate-delivery"] == 0
        assert len(sink.arrivals) > 0

    def test_client_state_lives_exactly_on_owner(self):
        tb, report, _ = self._run()
        manager = tb.shard_manager
        owner = manager.owner_of("client0")
        assert owner == 1  # crossed the single boundary
        assert "client0" in manager.shards[1].controller._clients
        assert "client0" not in manager.shards[0].controller._clients
        serving = tb.serving_ap_of(0)
        assert serving in manager.shards[1].aps

    def test_per_shard_ha_topology(self):
        tb, report, _ = self._run(
            shard=ShardConfig(num_shards=2, ha_enabled=True)
        )
        assert report["ok"], report["violations"]
        assert tb.shard_manager.stats["handoffs_completed"] >= 1
        for shard in tb.shard_manager.shards:
            assert shard.standby is not None
            assert shard.active_controller() is shard.controller

    def test_sharding_requires_instant_association(self):
        config = _sharded_config()
        config.instant_association = False
        with pytest.raises(ValueError, match="instant_association"):
            Testbed(config)


class TestShardDeterminism:
    def test_same_seed_same_outcome_digest(self):
        from repro.experiments.ext_shard import outcome_digest, run_schedule

        first = run_schedule(3, num_shards=2, fleet=1, duration_s=4.0)
        again = run_schedule(3, num_shards=2, fleet=1, duration_s=4.0)
        assert outcome_digest(first) == outcome_digest(again)
        assert first["handoffs_completed"] >= 1


# ----------------------------------------------------------------------
# preset registry
# ----------------------------------------------------------------------


class TestPresetRegistry:
    def test_names_sorted_and_resolvable(self):
        names = preset_names()
        assert names == sorted(names)
        assert "shard-corridor" in names
        for name in names:
            assert isinstance(preset(name), TestbedConfig)

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ValueError, match="shard-corridor"):
            preset("nope")

    def test_shard_corridor_is_declarative(self):
        config = preset("shard-corridor", seed=9)
        assert config.sharding_enabled
        assert config.seed == 9
        assert config.shard.num_shards == 2
        # Nothing built yet: a spec, not a testbed.
        assert isinstance(config, TestbedConfig)

    def test_overrides_pass_through(self):
        config = shard_corridor_config(
            num_shards=3, num_aps=12, seed=4,
            shard=ShardConfig(num_shards=3, boundary_hysteresis_m=5.0),
        )
        assert config.num_aps == 12
        assert config.shard.boundary_hysteresis_m == 5.0
