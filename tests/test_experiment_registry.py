"""Tests for the experiment registry (decorator registration, the
uniform run() interface) and the legacy EXPERIMENTS deprecation shim."""

import warnings

import pytest

from repro.experiments import registry
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentResult,
    register_experiment,
)

EXPECTED_IDS = {
    "ablations",
    "ext_adversary",
    "ext_density",
    "ext_faults",
    "ext_ha",
    "ext_shard",
    "ext_soak",
    "fig02",
    "fig04",
    "fig10",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "tab01",
    "tab02",
    "tab03",
    "tab04",
    "tab05",
}


class TestDiscovery:
    def test_all_drivers_registered(self):
        assert set(registry.experiment_ids()) == EXPECTED_IDS

    def test_descriptions_sorted_and_nonempty(self):
        descriptions = registry.descriptions()
        assert list(descriptions) == sorted(descriptions)
        assert all(descriptions.values())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="nope"):
            registry.get("nope")

    def test_duplicate_id_rejected(self):
        def other_fn():
            return None

        with pytest.raises(ValueError, match="registered twice"):
            register_experiment("fig13", "imposter")(other_fn)

    def test_reregistering_same_fn_is_idempotent(self):
        experiment = registry.get("fig13")
        register_experiment("fig13", "same fn again")(experiment._fn)
        assert registry.get("fig13").description == "same fn again"
        # restore the original description for later assertions
        register_experiment("fig13", experiment.description)(experiment._fn)


class TestUniformRun:
    def test_run_returns_result_wrapper(self):
        experiment = registry.get("tab01")
        cfg = ExperimentConfig(seed=3, quick=True)
        result = experiment.run(cfg)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "tab01"
        assert result.config is cfg
        assert result.smoke is False
        assert result.data

    def test_default_config(self):
        result = registry.get("tab01").run()
        assert result.config == ExperimentConfig()

    def test_rows_helper(self):
        assert ExperimentResult("x", {"rows": [{"a": 1}]}).rows() == [{"a": 1}]
        assert ExperimentResult("x", {"other": 1}).rows() is None
        assert ExperimentResult("x", [1, 2]).rows() is None

    def test_smoke_variant_where_provided(self):
        assert registry.get("ext_faults").has_smoke
        assert registry.get("ext_ha").has_smoke
        assert registry.get("ext_soak").has_smoke
        assert not registry.get("fig13").has_smoke
        with pytest.raises(ValueError, match="no smoke variant"):
            registry.get("fig13").run(smoke=True)
        result = registry.get("ext_faults").run(smoke=True)
        assert result.smoke is True
        assert result.data

    def test_legacy_module_run_still_callable(self):
        # The decorator returns the function unchanged.
        from repro.experiments import tab01

        assert tab01.run is registry.get("tab01")._fn


class TestDeprecatedExperimentsShim:
    def test_mapping_protocol_with_warning(self):
        from repro.cli import EXPERIMENTS

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert len(EXPERIMENTS) == len(EXPECTED_IDS)
            assert set(EXPERIMENTS) == EXPECTED_IDS
            assert EXPERIMENTS["fig13"] == registry.get("fig13").description
            assert "fig13" in EXPERIMENTS
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
