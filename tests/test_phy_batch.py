"""Property tests for the batched PHY / channel kernels.

The contract of :mod:`repro.phy.batch` and
:mod:`repro.channel.link_batch` is *bit identity*: every batched
function must return, element for element, exactly the bytes the scalar
path produces — including NaN and ±inf inputs — so flipping
``batch_phy`` can never change an experiment.  These tests sweep link
counts from 1 to 256, every modulation in the BER table, and injected
non-finite values, holding:

* the vectorized LUT gathers to their scalar counterparts,
* the stacked ESNR / coded-BER / preamble / payload / RSSI kernels to
  the per-row scalar functions in :mod:`repro.phy.per`,
* both to the closed-form scipy ``*_exact`` oracles (0.05 dB bound),
* the prewarm seeding to fresh scalar recomputation,
* the fused multi-link fading evolution to sequential per-link
  evolution (same RNG stream, same bits), and
* the fused probe path to strict side-effect freedom.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.channel import ChannelMap, OmniAntenna, ParabolicAntenna, RadioPort
from repro.channel.link_batch import probe_snapshots, warm_snapshots
from repro.mobility import Position, Road, VehicleTrack
from repro.phy.ber import BER_BY_MODULATION
from repro.phy.batch import (
    coded_ber_batch,
    effective_snr_db_batch,
    mean_ber_batch,
    mpdu_payload_success_batch,
    preamble_success_batch,
    prewarm_best_rate,
    prewarm_receivers,
    rssi_offset_batch,
)
from repro.phy.esnr import (
    effective_snr_db,
    effective_snr_db_exact,
    mean_ber_exact,
)
from repro.phy.lut import (
    SNR_GRID_MAX_DB,
    SNR_GRID_MIN_DB,
    effective_snr_db_lut,
    lut_for,
)
from repro.phy.mcs import MCS_TABLE
from repro.phy.per import (
    best_rate_bps,
    coded_ber,
    mpdu_payload_success_probability,
    phy_memo_stats,
    preamble_success_probability,
    reset_phy_memos,
    wideband_rssi_offset_db,
)
from repro.sim import RngRegistry, Simulator

MODULATIONS = sorted(BER_BY_MODULATION)
LINK_COUNTS = [1, 2, 3, 5, 8, 17, 64, 256]

#: Values that stress every clamp and the NaN path of the gather
#: kernels, including the exact grid endpoints.
SPECIAL_SNRS = [
    math.nan,
    math.inf,
    -math.inf,
    -1e12,
    SNR_GRID_MIN_DB,
    SNR_GRID_MIN_DB - 1e-9,
    SNR_GRID_MIN_DB + 1e-9,
    0.0,
    -0.0,
    SNR_GRID_MAX_DB,
    SNR_GRID_MAX_DB - 1e-9,
    SNR_GRID_MAX_DB + 1e-9,
    1e12,
]


def _assert_bits_equal(batch: np.ndarray, scalars) -> None:
    """Byte-level comparison (catches NaN payloads and signed zeros)."""
    batch = np.asarray(batch, dtype=np.float64)
    reference = np.asarray([float(s) for s in scalars], dtype=np.float64)
    assert batch.shape == reference.shape
    assert batch.tobytes() == reference.tobytes(), (
        batch[batch != reference],
        reference[batch != reference],
    )


def _random_stack(rng: np.random.Generator, n_rows: int) -> np.ndarray:
    """Random channel stacks with occasional non-finite entries."""
    stack = rng.uniform(-20.0, 55.0, size=(n_rows, 56))
    # Sprinkle specials on ~1 row in 4.
    for i in range(0, n_rows, 4):
        j = int(rng.integers(0, 56))
        stack[i, j] = SPECIAL_SNRS[int(rng.integers(0, len(SPECIAL_SNRS)))]
    return stack


# ----------------------------------------------------------------------
# LUT gather kernels
# ----------------------------------------------------------------------


class TestLutGatherBitIdentity:
    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_forward_batch_matches_scalar(self, modulation):
        lut = lut_for(modulation)
        rng = np.random.default_rng(3)
        values = np.concatenate(
            [np.asarray(SPECIAL_SNRS), rng.uniform(-80.0, 80.0, 500)]
        )
        with np.errstate(all="raise"):
            batch = lut.ber_of_db_batch(values)
        _assert_bits_equal(batch, [lut.ber_of_db_scalar(v) for v in values])

    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_inverse_batch_matches_scalar(self, modulation):
        lut = lut_for(modulation)
        rng = np.random.default_rng(5)
        values = np.concatenate(
            [
                [0.0, 1e-300, 1e-41, 1e-40, float(lut.max_ber), 0.5, 1.0],
                10.0 ** rng.uniform(-45.0, 0.0, 500),
            ]
        )
        batch = lut.snr_db_for_ber_batch(values)
        _assert_bits_equal(batch, [lut.snr_db_for_ber(v) for v in values])


# ----------------------------------------------------------------------
# stacked kernels vs per-row scalars
# ----------------------------------------------------------------------


class TestStackedKernelsBitIdentity:
    @pytest.mark.parametrize("n_rows", LINK_COUNTS)
    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_effective_snr_capped(self, n_rows, modulation):
        stack = _random_stack(np.random.default_rng(n_rows), n_rows)
        batch = effective_snr_db_batch(stack, modulation, capped=True)
        _assert_bits_equal(
            batch, [effective_snr_db(row, modulation) for row in stack]
        )

    @pytest.mark.parametrize("n_rows", LINK_COUNTS)
    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_effective_snr_uncapped(self, n_rows, modulation):
        stack = _random_stack(np.random.default_rng(100 + n_rows), n_rows)
        batch = effective_snr_db_batch(stack, modulation, capped=False)
        _assert_bits_equal(
            batch, [effective_snr_db_lut(row, modulation) for row in stack]
        )

    def test_one_dim_input_promotes(self):
        row = np.random.default_rng(9).uniform(0.0, 30.0, 56)
        batch = effective_snr_db_batch(row)
        assert batch.shape == (1,)
        _assert_bits_equal(batch, [effective_snr_db(row)])

    @pytest.mark.parametrize("mcs", MCS_TABLE, ids=lambda m: m.name)
    def test_coded_ber(self, mcs):
        reset_phy_memos()
        stack = _random_stack(np.random.default_rng(21), 8)
        coded, _esnr = coded_ber_batch(stack, mcs)
        _assert_bits_equal(coded, [coded_ber(row, mcs) for row in stack])

    @pytest.mark.parametrize("n_rows", LINK_COUNTS)
    def test_preamble_success(self, n_rows):
        reset_phy_memos()
        stack = _random_stack(np.random.default_rng(23 + n_rows), n_rows)
        p, _esnr = preamble_success_batch(stack)
        _assert_bits_equal(
            p, [preamble_success_probability(row) for row in stack]
        )

    @pytest.mark.parametrize("mcs", MCS_TABLE, ids=lambda m: m.name)
    def test_mpdu_payload_success(self, mcs):
        reset_phy_memos()
        stack = _random_stack(np.random.default_rng(29), 16)
        for length in (64, 1500):
            batch = mpdu_payload_success_batch(stack, mcs, length)
            _assert_bits_equal(
                batch,
                [
                    mpdu_payload_success_probability(row, mcs, length)
                    for row in stack
                ],
            )

    @pytest.mark.parametrize("n_rows", LINK_COUNTS)
    def test_rssi_offset(self, n_rows):
        reset_phy_memos()
        stack = _random_stack(np.random.default_rng(31 + n_rows), n_rows)
        batch = rssi_offset_batch(stack)
        _assert_bits_equal(
            batch, [wideband_rssi_offset_db(row) for row in stack]
        )


# ----------------------------------------------------------------------
# batched kernels vs closed-form oracles
# ----------------------------------------------------------------------


class TestBatchAgainstExactOracles:
    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_effective_snr_tracks_exact(self, modulation):
        rng = np.random.default_rng(41)
        stack = rng.uniform(0.0, 45.0, size=(32, 56))
        batch = effective_snr_db_batch(stack, modulation, capped=False)
        for i, row in enumerate(stack):
            exact = effective_snr_db_exact(row, modulation)
            if exact < 45.0:  # beyond the cap the LUT saturates by design
                assert float(batch[i]) == pytest.approx(exact, abs=0.05)

    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_mean_ber_tracks_exact(self, modulation):
        rng = np.random.default_rng(43)
        stack = rng.uniform(0.0, 35.0, size=(16, 56))
        batch = mean_ber_batch(stack, modulation, 2.0)
        for i, row in enumerate(stack):
            exact = mean_ber_exact(row, modulation, 2.0)
            if exact > 1e-12:
                assert float(batch[i]) == pytest.approx(exact, rel=0.15)
            else:
                assert float(batch[i]) <= 1e-11


# ----------------------------------------------------------------------
# prewarm: seeded memo values == fresh scalar recomputation
# ----------------------------------------------------------------------


class TestPrewarmSeeding:
    def test_prewarm_receivers_seeds_scalar_values(self):
        reset_phy_memos()
        rng = np.random.default_rng(47)
        rows = [rng.uniform(-5.0, 35.0, 56) for _ in range(8)]
        mcs = MCS_TABLE[-1]
        prewarm_receivers(
            rows,
            data_mcs=mcs,
            data_indices=range(len(rows)),
            csi_indices=range(len(rows)),
        )
        before = phy_memo_stats()
        for row in rows:
            # Fresh copies force full scalar recomputation; the memos
            # keyed on the original objects must hold the same bits.
            reference = row.copy()
            assert preamble_success_probability(
                row
            ) == preamble_success_probability(reference)
            assert coded_ber(row, mcs) == coded_ber(reference, mcs)
            assert wideband_rssi_offset_db(row) == wideband_rssi_offset_db(
                reference
            )
        after = phy_memo_stats()
        # The original rows must have been served from the seeds.
        assert after["preamble"]["hits"] >= before["preamble"]["hits"] + 8
        assert after["coded_ber"]["hits"] >= before["coded_ber"]["hits"] + 8

    def test_prewarm_receivers_preamble_only_call(self):
        """The medium's call shape: no index sets, preamble seeds only."""
        reset_phy_memos()
        rng = np.random.default_rng(53)
        rows = [rng.uniform(-30.0, 30.0, 56) for _ in range(5)]
        prewarm_receivers(rows)
        before = phy_memo_stats()["preamble"]["hits"]
        values = [preamble_success_probability(row) for row in rows]
        assert phy_memo_stats()["preamble"]["hits"] == before + 5
        _assert_bits_equal(
            np.asarray(values),
            [preamble_success_probability(row.copy()) for row in rows],
        )

    def test_prewarm_best_rate_matches_scalar(self):
        reset_phy_memos()
        rng = np.random.default_rng(59)
        rows = [rng.uniform(-10.0, 40.0, 56) for _ in range(8)]
        prewarm_best_rate(rows)
        for row in rows:
            assert best_rate_bps(row) == best_rate_bps(row.copy())


# ----------------------------------------------------------------------
# fused fading / LinkBatch vs sequential scalar evolution
# ----------------------------------------------------------------------


def _make_channel_map(seed: int, num_aps: int):
    sim = Simulator()
    rng = RngRegistry(seed)
    road = Road()
    cmap = ChannelMap(sim, rng)
    for i in range(num_aps):
        x = 10.0 + 7.5 * i
        mount = Position(x, -12.0, 10.0)
        antenna = ParabolicAntenna(
            mount=mount, boresight=Position(x, 0.0, 1.5)
        )
        cmap.register_port(
            RadioPort(f"ap{i}", antenna, 20.0, lambda t, m=mount: m)
        )
    track = VehicleTrack(road, start_x=5.0, speed_mph=15.0)
    cmap.register_port(
        RadioPort(
            "client0",
            OmniAntenna(),
            15.0,
            track.position_at,
            lambda: track.speed_mps,
        )
    )
    return cmap


@pytest.mark.parametrize("num_aps", [2, 3, 8])
@pytest.mark.parametrize("tx_from_client", [False, True])
def test_fused_warm_matches_sequential_scalar(num_aps, tx_from_client):
    """warm_snapshots over N links == per-link subcarrier_snr_db, over a
    timestamp sequence that exercises cold, stale and cached states."""
    fused_map = _make_channel_map(71, num_aps)
    scalar_map = _make_channel_map(71, num_aps)
    times = [0, 1_000, 1_000, 3_500, 250_000, 250_400]
    for t in times:
        entries = []
        reference = []
        for i in range(num_aps):
            tx_id = "client0" if tx_from_client else f"ap{i}"
            entries.append((fused_map.link(f"ap{i}", "client0"), tx_id))
            reference.append(
                scalar_map.link(f"ap{i}", "client0").subcarrier_snr_db(
                    t, tx_id=tx_id
                )
            )
        fused = warm_snapshots(t, entries)
        for got, want in zip(fused, reference):
            assert got.tobytes() == want.tobytes()


def test_fused_warm_with_partially_warm_links():
    """Links that already hold the timestamp's snapshot must be served
    from cache (same object) while cold links are fused — mirroring a
    mid-run completion where some links were just probed."""
    fused_map = _make_channel_map(73, 4)
    scalar_map = _make_channel_map(73, 4)
    # Pre-touch two of the four links at t=2000 through the scalar path
    # on BOTH maps, so their RNG streams stay aligned.
    for cmap in (fused_map, scalar_map):
        for i in (0, 2):
            cmap.link(f"ap{i}", "client0").subcarrier_snr_db(
                2_000, tx_id=f"ap{i}"
            )
    entries = [
        (fused_map.link(f"ap{i}", "client0"), f"ap{i}") for i in range(4)
    ]
    fused = warm_snapshots(2_000, entries)
    for i in range(4):
        want = scalar_map.link(f"ap{i}", "client0").subcarrier_snr_db(
            2_000, tx_id=f"ap{i}"
        )
        assert fused[i].tobytes() == want.tobytes()


def test_fused_probe_is_side_effect_free():
    """probe_snapshots must not advance fading state or consume RNG:
    a committed snapshot after heavy probing equals one on a twin map
    that never probed."""
    probed_map = _make_channel_map(79, 3)
    control_map = _make_channel_map(79, 3)
    entries = [
        (probed_map.link(f"ap{i}", "client0"), f"ap{i}") for i in range(3)
    ]
    for t in (500, 900, 1_300, 2_000):
        probe_snapshots(t, entries)
    for i in range(3):
        after = probed_map.link(f"ap{i}", "client0").subcarrier_snr_db(
            5_000, tx_id=f"ap{i}"
        )
        control = control_map.link(f"ap{i}", "client0").subcarrier_snr_db(
            5_000, tx_id=f"ap{i}"
        )
        assert after.tobytes() == control.tobytes()


def test_fused_probe_matches_scalar_probe():
    cmap = _make_channel_map(83, 4)
    entries = [
        (cmap.link(f"ap{i}", "client0"), f"ap{i}") for i in range(4)
    ]
    fused = probe_snapshots(7_000, entries)
    for i in range(4):
        want = cmap.link(f"ap{i}", "client0").probe_subcarrier_snr_db(
            7_000, tx_id=f"ap{i}"
        )
        assert fused[i].tobytes() == want.tobytes()
