"""Tests for the ablation switches in WgttConfig and the selector
metric variants."""

import dataclasses

import pytest

from repro.core.config import WgttConfig
from repro.core.selection import ApSelector
from repro.experiments import ablations
from repro.scenarios.testbed import TestbedConfig, build_testbed


class TestSelectorMetrics:
    def seed_readings(self, selector):
        for t, value in [(0, 10.0), (1000, 30.0), (2000, 14.0)]:
            selector.record("c", "ap1", t, value)

    def test_median(self):
        selector = ApSelector(10_000, metric="median")
        self.seed_readings(selector)
        assert selector.median_esnr("c", "ap1", 2000) == 14.0

    def test_mean(self):
        selector = ApSelector(10_000, metric="mean")
        self.seed_readings(selector)
        assert selector.median_esnr("c", "ap1", 2000) == pytest.approx(18.0)

    def test_latest(self):
        selector = ApSelector(10_000, metric="latest")
        self.seed_readings(selector)
        assert selector.median_esnr("c", "ap1", 2000) == 14.0
        selector.record("c", "ap1", 2500, 99.0)
        assert selector.median_esnr("c", "ap1", 2500) == 99.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ApSelector(10_000, metric="max")


class TestConfigFlags:
    def test_fanout_disabled_sends_to_serving_only(self):
        config = TestbedConfig(
            seed=3,
            scheme="wgtt",
            client_speeds_mph=[0.0],
            client_start_x_m=13.0,  # several APs hear the client
            wgtt=dataclasses.replace(WgttConfig(), fanout_enabled=False),
        )
        testbed = build_testbed(config)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(1.5)
        stats = testbed.controller.stats
        # one backhaul data message per accepted packet: serving only
        assert stats["fanout_messages"] == stats["downlink_accepted"]

    def test_fanout_enabled_replicates(self):
        config = TestbedConfig(
            seed=3, scheme="wgtt", client_speeds_mph=[0.0],
            client_start_x_m=13.0,
        )
        testbed = build_testbed(config)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(1.5)
        stats = testbed.controller.stats
        assert stats["fanout_messages"] > 1.2 * stats["downlink_accepted"]

    def test_ba_forwarding_disabled(self):
        config = TestbedConfig(
            seed=3,
            scheme="wgtt",
            client_speeds_mph=[15.0],
            client_start_x_m=6.0,
            wgtt=dataclasses.replace(WgttConfig(), ba_forwarding_enabled=False),
        )
        testbed = build_testbed(config)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(4.0)
        forwarded = sum(
            ap.stats["ba_forwarded"] for ap in testbed.wgtt_aps.values()
        )
        assert forwarded == 0


class TestAblationDriver:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ablations.run_variant(3, "no-such-thing", duration_s=0.1)

    def test_variant_runs_and_reports(self):
        result = ablations.run_variant(3, "paper", duration_s=1.0)
        assert set(result) >= {
            "variant", "throughput_mbps", "switches", "tcp_timeouts",
        }

    def test_multichannel_variant_retunes_aps(self):
        result = ablations.run_variant(3, "multi-channel", duration_s=1.0)
        assert result["variant"] == "multi-channel"
