"""Message-level adversary tests: event validation, the backhaul's
duplication / replay / corruption / one-way / gray-failure mechanics,
plan-driven execution through the injector, and determinism."""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    GrayFailure,
    MsgCorruption,
    MsgDuplication,
    OneWayPartition,
    StaleReplay,
)
from repro.net.backhaul import RELIABLE_KINDS, EthernetBackhaul
from repro.sim import Simulator
from repro.sim.rng import RngRegistry


def rng(seed=7):
    return np.random.default_rng(seed)


class TestAdversaryEventValidation:
    def test_duplication_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MsgDuplication(at_us=0, duration_us=100, probability=0.0)
        with pytest.raises(ValueError):
            MsgDuplication(at_us=0, duration_us=100, probability=1.5)

    def test_duplication_rejects_nonpositive_copies(self):
        with pytest.raises(ValueError):
            MsgDuplication(at_us=0, duration_us=100, copies=0)

    def test_duplication_rejects_empty_kind_filter(self):
        """An empty filter would match nothing — that's a plan bug, not
        a no-op; ``None`` is the explicit match-everything spelling."""
        with pytest.raises(ValueError):
            MsgDuplication(at_us=0, duration_us=100, kinds=frozenset())

    def test_replay_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            StaleReplay(at_us=0, duration_us=100, count=0)

    def test_corruption_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MsgCorruption(at_us=0, duration_us=100, probability=0.0)

    def test_oneway_rejects_self_loop(self):
        with pytest.raises(ValueError):
            OneWayPartition(at_us=0, duration_us=100, src="a", dst="a")

    def test_gray_failure_needs_some_degradation(self):
        with pytest.raises(ValueError):
            GrayFailure(
                at_us=0, duration_us=100, ap_id="ap0",
                extra_latency_us=0, loss_rate=0.0,
            )
        with pytest.raises(ValueError):
            GrayFailure(at_us=0, duration_us=100, ap_id="ap0", loss_rate=1.1)

    def test_overlapping_oneway_windows_rejected(self):
        """Two windows on the same directed link must not overlap: the
        injector heals by directed link, so the earlier heal would
        silently reopen the later window."""
        a = OneWayPartition(at_us=0, duration_us=1_000, src="a", dst="b")
        b = OneWayPartition(at_us=500, duration_us=1_000, src="a", dst="b")
        with pytest.raises(ValueError):
            FaultPlan(events=[a, b])

    def test_opposite_direction_oneway_windows_allowed(self):
        """src->dst and dst->src overlapping is just a full partition
        expressed twice — perfectly legal."""
        a = OneWayPartition(at_us=0, duration_us=1_000, src="a", dst="b")
        b = OneWayPartition(at_us=500, duration_us=1_000, src="b", dst="a")
        plan = FaultPlan(events=[a, b])
        assert len(plan.one_way_partitions()) == 2

    def test_back_to_back_oneway_windows_allowed(self):
        a = OneWayPartition(at_us=0, duration_us=1_000, src="a", dst="b")
        b = OneWayPartition(at_us=1_000, duration_us=1_000, src="a", dst="b")
        assert len(FaultPlan(events=[a, b])) == 2

    def test_describe_covers_every_adversary_class(self):
        plan = FaultPlan(events=[
            MsgDuplication(at_us=10, duration_us=100,
                           kinds=frozenset({"ack", "stop"})),
            StaleReplay(at_us=20, duration_us=100, count=8),
            MsgCorruption(at_us=30, duration_us=100, probability=0.5),
            OneWayPartition(at_us=40, duration_us=100,
                            src="ap1", dst="controller"),
            GrayFailure(at_us=50, duration_us=100, ap_id="ap2"),
        ])
        lines = plan.describe()
        assert any("dup [ack,stop]" in ln for ln in lines)
        assert any("replay [any] <= 8" in ln for ln in lines)
        assert any("corrupt [any] p=0.5" in ln for ln in lines)
        assert any("oneway ap1-x->controller" in ln for ln in lines)
        assert any("gray ap2" in ln for ln in lines)

    def test_adversary_events_query(self):
        plan = FaultPlan(events=[
            MsgDuplication(at_us=10, duration_us=100),
            GrayFailure(at_us=50, duration_us=100, ap_id="ap2"),
        ])
        assert len(plan.adversary_events()) == 2
        assert len(plan.gray_failures()) == 1


class TestBackhaulDuplication:
    def test_duplicates_delivered_and_counted(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        backhaul.set_duplication(None, probability=1.0, copies=2, rng=rng())
        backhaul.send("src", "dst", "ack", "m1")
        sim.run()
        assert got == ["m1", "m1", "m1"]  # original + 2 copies
        assert backhaul.stats.duplicated == 2

    def test_kind_filter_spares_other_kinds(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append((k, p)))
        backhaul.set_duplication(
            frozenset({"stop"}), probability=1.0, copies=1, rng=rng()
        )
        backhaul.send("src", "dst", "stop", "s")
        backhaul.send("src", "dst", "data", "d")
        sim.run()
        assert got.count(("stop", "s")) == 2
        assert got.count(("data", "d")) == 1

    def test_clear_duplication_stops_copies(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        handle = backhaul.set_duplication(
            None, probability=1.0, copies=1, rng=rng()
        )
        backhaul.clear_duplication(handle)
        backhaul.send("src", "dst", "ack", "m")
        sim.run()
        assert got == ["m"]
        assert backhaul.stats.duplicated == 0

    def test_adversary_armed_flag_sticky(self):
        """The armed flag gates metric export and must stay set even
        after every adversary window closes — a run that was ever
        adversarial is never fingerprint-comparable with a clean one."""
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        assert not backhaul.adversary_armed
        handle = backhaul.set_duplication(
            None, probability=0.5, copies=1, rng=rng()
        )
        assert backhaul.adversary_armed
        backhaul.clear_duplication(handle)
        assert backhaul._adversary is None  # state dropped (fast path)
        assert backhaul.adversary_armed  # flag survives


class TestBackhaulReplay:
    def test_capture_and_replay_redelivers(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        handle = backhaul.start_replay_capture(None, count=8)
        for i in range(3):
            backhaul.send("src", "dst", "ack", i)
        sim.run()
        assert got == [0, 1, 2]
        replayed = backhaul.replay_captured(handle)
        sim.run()
        assert replayed == 3
        assert got == [0, 1, 2, 0, 1, 2]  # replays keep capture order
        assert backhaul.stats.replayed == 3

    def test_capture_buffer_is_bounded(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        backhaul.register("dst", lambda s, k, p: None)
        handle = backhaul.start_replay_capture(None, count=2)
        for i in range(10):
            backhaul.send("src", "dst", "ack", i)
        sim.run()
        assert backhaul.replay_captured(handle) == 2

    def test_replay_respects_down_nodes(self):
        """Replays are adversary deliveries but not magic: a crashed or
        partitioned destination still swallows them."""
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        handle = backhaul.start_replay_capture(None, count=8)
        backhaul.send("src", "dst", "ack", "m")
        sim.run()
        backhaul.set_node_down("dst", True)
        assert backhaul.replay_captured(handle) == 0
        sim.run()
        assert got == ["m"]

    def test_replay_unknown_handle_is_noop(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        assert backhaul.replay_captured(12345) == 0


class TestBackhaulCorruption:
    def test_corruption_drops_with_accounting(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        backhaul.set_corruption(None, probability=1.0, rng=rng())
        backhaul.send("src", "dst", "start", "m")
        sim.run()
        assert got == []
        assert backhaul.stats.corrupt_dropped == 1

    def test_corruption_kind_filter(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        backhaul.set_corruption(
            frozenset({"stop"}), probability=1.0, rng=rng()
        )
        backhaul.send("src", "dst", "data", "survives")
        sim.run()
        assert got == ["survives"]
        assert backhaul.stats.corrupt_dropped == 0


class TestBackhaulOneWay:
    def test_directed_drop_reverse_flows(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("a", lambda s, k, p: got.append(("a", p)))
        backhaul.register("b", lambda s, k, p: got.append(("b", p)))
        handle = backhaul.partition_oneway("a", "b")
        backhaul.send("a", "b", "ack", "forward")
        backhaul.send("b", "a", "ack", "reverse")
        sim.run()
        assert got == [("a", "reverse")]
        assert backhaul.stats.oneway_dropped == 1
        assert backhaul.unreachable("a", "b")
        assert not backhaul.unreachable("b", "a")
        backhaul.heal_oneway(handle)
        backhaul.send("a", "b", "ack", "healed")
        sim.run()
        assert ("b", "healed") in got

    def test_oneway_rejects_self_loop(self):
        backhaul = EthernetBackhaul(Simulator())
        with pytest.raises(ValueError):
            backhaul.partition_oneway("a", "a")


class TestBackhaulGrayFailure:
    def test_gray_loss_spares_reliable_kinds(self):
        """The whole point of the gray adversary: heartbeats (the
        reliable class) keep flowing while service traffic rots, so the
        liveness table stays green."""
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        got = []
        backhaul.register("dst", lambda s, k, p: got.append(p))
        backhaul.set_node_degraded(
            "dst", extra_latency_us=0, loss_rate=1.0, rng=rng()
        )
        for kind in sorted(RELIABLE_KINDS):
            backhaul.send("src", "dst", kind, kind)
        backhaul.send("src", "dst", "data", "doomed")
        sim.run()
        assert sorted(got) == sorted(RELIABLE_KINDS)
        assert backhaul.stats.gray_dropped == 1

    def test_gray_extra_latency_delays_delivery(self):
        sim = Simulator()
        backhaul = EthernetBackhaul(sim)
        arrivals = []
        backhaul.register("dst", lambda s, k, p: arrivals.append(sim.now))
        backhaul.send("src", "dst", "data", "before")
        sim.run()
        baseline = arrivals[0]
        backhaul.set_node_degraded(
            "dst", extra_latency_us=5_000, loss_rate=0.0, rng=rng()
        )
        t0 = sim.now
        backhaul.send("src", "dst", "data", "after")
        sim.run()
        assert arrivals[1] - t0 == baseline + 5_000
        backhaul.clear_node_degraded("dst")
        assert not backhaul.is_node_degraded("dst")


class TestInjectorExecution:
    def _run_with_plan(self, plan, seconds=2.0):
        from repro.scenarios.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(
                seed=3, scheme="wgtt", client_speeds_mph=[15.0],
                client_start_x_m=6.0, fault_plan=plan,
            )
        )
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(seconds)
        return testbed

    def test_adversary_windows_open_and_close(self):
        plan = FaultPlan(events=[
            MsgDuplication(at_us=100_000, duration_us=400_000,
                           probability=1.0, copies=1),
            StaleReplay(at_us=200_000, duration_us=300_000, count=16),
            MsgCorruption(at_us=300_000, duration_us=200_000,
                          probability=0.2),
            OneWayPartition(at_us=400_000, duration_us=150_000,
                            src="controller", dst="ap1"),
            GrayFailure(at_us=500_000, duration_us=300_000, ap_id="ap2",
                        extra_latency_us=1_000, loss_rate=0.5),
        ])
        testbed = self._run_with_plan(plan)
        actions = [a for _, a, _ in testbed.fault_injector.events]
        for action in ("dup-on", "dup-off", "replay-capture", "replay-fire",
                       "corrupt-on", "corrupt-off", "oneway-on", "oneway-off",
                       "gray-on", "gray-off"):
            assert action in actions, f"missing injector action {action}"
        # Every window closed: the backhaul dropped its adversary state
        # back to the fault-free fast path.
        assert testbed.backhaul._adversary is None
        assert testbed.backhaul.adversary_armed
        assert testbed.fault_injector.gray_windows == 1

    def test_duplication_window_actually_duplicates(self):
        plan = FaultPlan(events=[
            MsgDuplication(at_us=100_000, duration_us=1_500_000,
                           probability=1.0, copies=2),
        ])
        testbed = self._run_with_plan(plan)
        assert testbed.backhaul.stats.duplicated > 10

    def test_replay_fire_logs_replay_count(self):
        plan = FaultPlan(events=[
            StaleReplay(at_us=100_000, duration_us=500_000, count=8),
        ])
        testbed = self._run_with_plan(plan)
        fires = [
            s for _, a, s in testbed.fault_injector.events
            if a == "replay-fire"
        ]
        assert len(fires) == 1
        assert testbed.backhaul.stats.replayed == int(fires[0].split(":")[-1])
        assert testbed.backhaul.stats.replayed > 0


class TestAdversaryPlanDeterminism:
    APS = [f"ap{i}" for i in range(4)]

    def _draw(self, seed):
        return FaultPlan.random(
            RngRegistry(seed).spawn("adversary-plan"),
            self.APS,
            4_000_000,
            duplication_rate_per_s=1.0,
            replay_rate_per_s=1.0,
            corruption_rate_per_s=1.0,
            oneway_rate_per_s=1.0,
            gray_rate_per_s=1.0,
        )

    def test_same_seed_same_plan(self):
        assert self._draw(11).events == self._draw(11).events

    def test_different_seed_different_plan(self):
        assert self._draw(11).events != self._draw(12).events

    def test_random_never_emits_overlapping_oneways(self):
        """The draw loop skips colliding windows deterministically, so
        a random plan always passes its own validator."""
        for seed in range(5):
            plan = FaultPlan.random(
                RngRegistry(seed).spawn("adversary-plan"),
                self.APS,
                2_000_000,
                oneway_rate_per_s=20.0,  # force collisions in the draw
            )
            # Re-validating a reconstructed copy must not raise.
            FaultPlan(events=list(plan.events))

    def test_soak_without_adversary_has_no_adversary_events(self):
        plan = FaultPlan.soak(
            RngRegistry(5).spawn("soak-faults"),
            self.APS,
            10_000_000,
            intensity=1.0,
            adversary_intensity=0.0,
        )
        assert plan.adversary_events() == []

    def test_soak_with_adversary_layers_on_top(self):
        base = FaultPlan.soak(
            RngRegistry(5).spawn("soak-faults"), self.APS, 60_000_000,
            intensity=1.0, adversary_intensity=0.0,
        )
        spiced = FaultPlan.soak(
            RngRegistry(5).spawn("soak-faults"), self.APS, 60_000_000,
            intensity=1.0, adversary_intensity=3.0,
        )
        assert spiced.adversary_events()
        # The chaos families draw from their own named streams, so
        # layering the adversary never perturbs them.
        assert base.crashes() == spiced.crashes()
