"""Unit-level tests of the controller's decision gating, with injected
selector readings (no radio in the loop)."""


from repro.channel.csi import CsiReport
from repro.core.assoc_sync import StaInfo
from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.sim import RngRegistry, Simulator

import numpy as np


def make_controller(**config_kw):
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig(**config_kw)
    controller = WgttController(sim, backhaul, RngRegistry(1), config)
    sent = []

    for ap_id in ("ap0", "ap1", "ap2"):
        backhaul.register(
            ap_id,
            lambda src, kind, payload, ap=ap_id: sent.append((ap, kind, payload)),
        )
        controller.add_ap(ap_id)
    controller.register_association(
        StaInfo(client="client0", associated_at_us=0, first_ap="ap0")
    )
    return sim, controller, sent


def feed(controller, sim, ap_id, esnr_db, count=6, spacing_us=1500):
    base = sim.now
    for i in range(count):
        report = CsiReport(
            time_us=base + i * spacing_us,
            ap_id=ap_id,
            client_id="client0",
            subcarrier_snr_db=np.full(56, esnr_db),
            rssi_dbm=-60.0,
        )
        controller._handle_csi(report)


class TestSwitchGating:
    def test_switches_to_clearly_better_ap(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)  # past the initial hysteresis
        feed(controller, sim, "ap0", 10.0)
        feed(controller, sim, "ap1", 20.0)
        sim.run(until_us=60_000)  # selection loop fires
        stops = [(ap, p) for ap, kind, p in sent if kind == "stop"]
        assert stops and stops[0][0] == "ap0"
        assert stops[0][1].target_ap == "ap1"

    def test_margin_blocks_marginal_challenger(self):
        sim, controller, sent = make_controller(switch_margin_db=3.0)
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 18.0)
        feed(controller, sim, "ap1", 19.0)  # only +1 dB
        sim.run(until_us=80_000)
        assert not [1 for _, kind, _ in sent if kind == "stop"]

    def test_hysteresis_blocks_early_switch(self):
        sim, controller, sent = make_controller(time_hysteresis_us=10**9)
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 5.0)
        feed(controller, sim, "ap1", 30.0)
        sim.run(until_us=200_000)
        assert not [1 for _, kind, _ in sent if kind == "stop"]

    def test_no_second_switch_while_pending(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 5.0)
        feed(controller, sim, "ap1", 30.0)
        sim.run(until_us=55_000)
        # no ack ever comes back (our fake APs are silent), so the
        # coordinator stays busy; feeding an even better ap2 must not
        # start a second switch.
        feed(controller, sim, "ap2", 40.0)
        sim.run(until_us=75_000)
        stops = [1 for _, kind, _ in sent if kind == "stop"]
        # only retransmissions of the same switch may appear
        targets = {p.target_ap for _, kind, p in sent if kind == "stop"}
        assert targets == {"ap1"}

    def test_unknown_client_csi_ignored(self):
        sim, controller, sent = make_controller()
        report = CsiReport(
            time_us=0,
            ap_id="ap0",
            client_id="ghost",
            subcarrier_snr_db=np.full(56, 20.0),
            rssi_dbm=-50.0,
        )
        controller._handle_csi(report)  # must not raise


class TestDownlinkGating:
    def test_unassociated_client_dropped(self):
        sim, controller, sent = make_controller()
        controller.accept_downlink(Packet("server", "ghost", 1000))
        assert controller.stats["downlink_unassociated"] == 1

    def test_serving_always_in_fanout(self):
        sim, controller, sent = make_controller()
        controller.accept_downlink(Packet("server", "client0", 1000))
        sim.run(until_us=10_000)
        data = [(ap, p) for ap, kind, p in sent if kind == "data"]
        assert [ap for ap, _ in data] == ["ap0"]

    def test_candidates_join_fanout(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        feed(controller, sim, "ap1", 15.0, count=2)
        controller.accept_downlink(Packet("server", "client0", 1000))
        sim.run(until_us=60_000)
        data_aps = {ap for ap, kind, _ in sent if kind == "data"}
        assert data_aps == {"ap0", "ap1"}
