"""Unit-level tests of the controller's decision gating, with injected
selector readings (no radio in the loop)."""


from repro.channel.csi import CsiReport
from repro.core.assoc_sync import StaInfo
from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.sim import RngRegistry, Simulator

import numpy as np


def make_controller(**config_kw):
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig(**config_kw)
    controller = WgttController(sim, backhaul, RngRegistry(1), config)
    sent = []

    for ap_id in ("ap0", "ap1", "ap2"):
        backhaul.register(
            ap_id,
            lambda src, kind, payload, ap=ap_id: sent.append((ap, kind, payload)),
        )
        controller.add_ap(ap_id)
    controller.register_association(
        StaInfo(client="client0", associated_at_us=0, first_ap="ap0")
    )
    return sim, controller, sent


def feed(controller, sim, ap_id, esnr_db, count=6, spacing_us=1500):
    base = sim.now
    for i in range(count):
        report = CsiReport(
            time_us=base + i * spacing_us,
            ap_id=ap_id,
            client_id="client0",
            subcarrier_snr_db=np.full(56, esnr_db),
            rssi_dbm=-60.0,
        )
        controller._handle_csi(report)


class TestSwitchGating:
    def test_switches_to_clearly_better_ap(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)  # past the initial hysteresis
        feed(controller, sim, "ap0", 10.0)
        feed(controller, sim, "ap1", 20.0)
        sim.run(until_us=60_000)  # selection loop fires
        stops = [(ap, p) for ap, kind, p in sent if kind == "stop"]
        assert stops and stops[0][0] == "ap0"
        assert stops[0][1].target_ap == "ap1"

    def test_margin_blocks_marginal_challenger(self):
        sim, controller, sent = make_controller(switch_margin_db=3.0)
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 18.0)
        feed(controller, sim, "ap1", 19.0)  # only +1 dB
        sim.run(until_us=80_000)
        assert not [1 for _, kind, _ in sent if kind == "stop"]

    def test_hysteresis_blocks_early_switch(self):
        sim, controller, sent = make_controller(time_hysteresis_us=10**9)
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 5.0)
        feed(controller, sim, "ap1", 30.0)
        sim.run(until_us=200_000)
        assert not [1 for _, kind, _ in sent if kind == "stop"]

    def test_no_second_switch_while_pending(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 5.0)
        feed(controller, sim, "ap1", 30.0)
        sim.run(until_us=55_000)
        # no ack ever comes back (our fake APs are silent), so the
        # coordinator stays busy; feeding an even better ap2 must not
        # start a second switch.
        feed(controller, sim, "ap2", 40.0)
        sim.run(until_us=75_000)
        stops = [1 for _, kind, _ in sent if kind == "stop"]
        # only retransmissions of the same switch may appear
        targets = {p.target_ap for _, kind, p in sent if kind == "stop"}
        assert targets == {"ap1"}

    def test_unknown_client_csi_ignored(self):
        sim, controller, sent = make_controller()
        report = CsiReport(
            time_us=0,
            ap_id="ap0",
            client_id="ghost",
            subcarrier_snr_db=np.full(56, 20.0),
            rssi_dbm=-50.0,
        )
        controller._handle_csi(report)  # must not raise


class TestDownlinkGating:
    def test_unassociated_client_dropped(self):
        sim, controller, sent = make_controller()
        controller.accept_downlink(Packet("server", "ghost", 1000))
        assert controller.stats["downlink_unassociated"] == 1

    def test_serving_always_in_fanout(self):
        sim, controller, sent = make_controller()
        controller.accept_downlink(Packet("server", "client0", 1000))
        sim.run(until_us=10_000)
        data = [(ap, p) for ap, kind, p in sent if kind == "data"]
        assert [ap for ap, _ in data] == ["ap0"]

    def test_candidates_join_fanout(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        feed(controller, sim, "ap1", 15.0, count=2)
        controller.accept_downlink(Packet("server", "client0", 1000))
        sim.run(until_us=60_000)
        data_aps = {ap for ap, kind, _ in sent if kind == "data"}
        assert data_aps == {"ap0", "ap1"}


class TestFailoverRetry:
    """_schedule_failover_retry: the graceful-degradation loop that
    keeps hunting for a live AP after an evacuation found none."""

    def test_no_candidate_schedules_retry(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")  # serving AP dies, nobody heard client0
        assert controller.stats["failover_no_candidate"] == 1
        state = controller._clients["client0"]
        assert state.failover_retry_pending
        assert state.degraded_since is not None
        assert "client0" in controller._retry_timers

    def test_retry_keeps_rescheduling_until_exhaustion_never_happens(self):
        """Retries never give up silently: each barren attempt counts a
        failover_no_candidate and re-arms the timer."""
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")
        period = controller._config.selection_period_us
        sim.run(until_us=sim.now + 4 * period + 1_000)
        assert controller.stats["failover_no_candidate"] >= 3
        assert controller._clients["client0"].failover_retry_pending

    def test_retry_recovers_when_a_live_ap_hears_the_client(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")
        assert controller.stats["failovers_initiated"] == 0
        feed(controller, sim, "ap1", 20.0)
        period = controller._config.selection_period_us
        sim.run(until_us=sim.now + 2 * period + 1_000)
        assert controller.stats["failovers_initiated"] == 1
        failover_targets = [ap for ap, kind, _ in sent if kind == "failover"]
        assert "ap1" in failover_targets

    def test_target_dying_mid_retry_is_survived(self):
        """The AP the retry would have picked dies before the timer
        fires: the retry must skip it and keep hunting, not crash or
        start a handshake with a corpse."""
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")
        feed(controller, sim, "ap1", 20.0)  # ap1 becomes the candidate
        controller._ap_down("ap1")  # ... and dies before the retry fires
        period = controller._config.selection_period_us
        sim.run(until_us=sim.now + 3 * period + 1_000)
        handshake_targets = {
            p.target_ap for _, kind, p in sent if kind == "stop"
        } | {ap for ap, kind, _ in sent if kind == "failover"}
        assert "ap1" not in handshake_targets
        assert controller._clients["client0"].failover_retry_pending

    def test_retry_noop_after_client_departs(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")
        barren = controller.stats["failover_no_candidate"]
        controller.deregister_client("client0")
        period = controller._config.selection_period_us
        sim.run(until_us=sim.now + 3 * period + 1_000)  # must not raise
        assert controller.stats["failover_no_candidate"] == barren
        assert not controller._retry_timers

    def test_retry_noop_after_controller_crash(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        controller._ap_down("ap0")
        controller.crash()
        period = controller._config.selection_period_us
        sim.run(until_us=sim.now + 3 * period + 1_000)  # must not raise
        assert not controller._retry_timers


class TestClientDeparture:
    """deregister_client: every per-client resource is freed (the
    unbounded-growth fix for one-ride commuters)."""

    def test_departure_frees_every_store(self):
        sim, controller, sent = make_controller()
        sim.run(until_us=50_000)
        feed(controller, sim, "ap0", 15.0)
        controller.accept_downlink(Packet("server", "client0", 1000))
        assert controller._index_alloc.tracked_clients() == 1
        controller.deregister_client("client0")
        assert "client0" not in controller._clients
        assert controller._index_alloc.tracked_clients() == 0
        assert "client0" not in controller._selection_timers
        assert "client0" not in controller._last_heard
        assert not controller.directory.is_associated("client0")
        assert controller.stats["clients_departed"] == 1

    def test_departure_broadcast_reaches_every_ap(self):
        sim, controller, sent = make_controller()
        controller.deregister_client("client0")
        sim.run(until_us=sim.now + 10_000)
        departed = {
            ap for ap, kind, p in sent
            if kind == "client-departed" and p == "client0"
        }
        assert departed == {"ap0", "ap1", "ap2"}

    def test_departure_of_unknown_client_is_safe(self):
        sim, controller, sent = make_controller()
        controller.deregister_client("ghost")  # must not raise
        assert controller.stats["clients_departed"] == 0

    def test_csi_after_departure_does_not_resurrect(self):
        sim, controller, sent = make_controller()
        controller.deregister_client("client0")
        feed(controller, sim, "ap1", 25.0)
        sim.run(until_us=sim.now + 60_000)
        assert "client0" not in controller._clients
        assert "client0" not in controller._selection_timers
