"""Tests for the observability layer (repro.obs): tracer semantics,
trace determinism, tracing-off bit-identity, the metrics registry,
the schema validator, Chrome export nesting, and the engine profiler."""

import json

import pytest

from repro.apps.bulk import run_bulk_download
from repro.faults.plan import ControllerCrash, FaultPlan
from repro.obs.context import ObsConfig, ObsContext
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry, metric_key
from repro.obs.profile import EngineProfiler
from repro.obs.schema import validate_lines, validate_record
from repro.obs.trace import Tracer, chrome_trace
from repro.scenarios.testbed import TestbedConfig, WgttConfig, build_testbed
from repro.sim.engine import MS, SECOND, Simulator


# ----------------------------------------------------------------------
# tracer basics
# ----------------------------------------------------------------------


class TestTracer:
    def test_off_by_default(self):
        sim = Simulator()
        assert sim.obs.trace.active is False
        # Emit sites are guarded by .active; direct emission still works
        # but records nothing when recording is off.
        sim.obs.trace.emit("test", "hello")
        assert sim.obs.trace.records == []

    def test_emit_records_with_sim_clock(self):
        sim = Simulator(obs=ObsContext(ObsConfig(trace=True)))
        tracer = sim.obs.trace
        assert tracer.active is True
        sim.schedule_at(5 * MS, lambda: tracer.emit("test", "tick", x=1))
        sim.run(until_us=10 * MS)
        (event,) = tracer.records
        assert event.ts == 5 * MS
        assert event.kind == "event"
        assert event.tags == {"x": 1}

    def test_span_begin_end_duration(self):
        sim = Simulator(obs=ObsContext(ObsConfig(trace=True)))
        tracer = sim.obs.trace
        span = tracer.begin("test", "work", track="lane", a=1)
        sim.run(until_us=3 * MS)
        tracer.end(span, outcome="done")
        (record,) = tracer.records
        assert record.kind == "span"
        assert record.duration_us == 3 * MS
        assert record.tags == {"a": 1, "outcome": "done"}

    def test_end_unknown_span_is_noop(self):
        tracer = Tracer(recording=True)
        tracer.end(999)
        assert tracer.records == []

    def test_finish_closes_open_spans(self):
        tracer = Tracer(recording=True)
        tracer.begin("test", "dangling")
        tracer.finish()
        (record,) = tracer.records
        assert record.tags["open"] is True
        assert record.end_ts is not None

    def test_subscribe_activates_and_filters(self):
        tracer = Tracer()
        assert tracer.active is False
        seen = []
        tracer.subscribe(lambda e: seen.append(e.name), names=("wanted",))
        assert tracer.active is True
        tracer.emit("test", "wanted")
        tracer.emit("test", "other")
        assert seen == ["wanted"]
        # Sink-only tracing records nothing.
        assert tracer.records == []

    def test_detail_events_reach_sinks_but_not_default_buffer(self):
        tracer = Tracer(recording=True, detail=False)
        seen = []
        tracer.subscribe(lambda e: seen.append(e.name))
        tracer.emit("test", "packet", detail=True)
        tracer.emit("test", "protocol")
        assert seen == ["packet", "protocol"]
        assert [r.name for r in tracer.records] == ["protocol"]

    def test_detail_capture_keeps_everything(self):
        tracer = Tracer(recording=True, detail=True)
        tracer.emit("test", "packet", detail=True)
        assert [r.name for r in tracer.records] == ["packet"]

    def test_jsonl_is_canonical(self):
        tracer = Tracer(recording=True)
        tracer.emit("test", "e", track="t", b=2, a=1)
        (line,) = list(tracer.jsonl_lines())
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        # Synthetic name: shape-check only (catalog membership is the
        # subject of test_name_catalog, not this test).
        assert validate_record(json.loads(line), check_names=False) == []


# ----------------------------------------------------------------------
# trace determinism + tracing-off bit-identity (the core contracts)
# ----------------------------------------------------------------------


def _quick_drive(obs=None):
    config = TestbedConfig(
        seed=7, scheme="wgtt", client_speeds_mph=[25.0], obs=obs
    )
    return run_bulk_download(
        config, protocol="tcp", duration_s=2.0, keep_testbed=True
    )


def _result_fields(result):
    return (
        result.throughput_mbps,
        result.goodput_series_mbps,
        result.tcp_timeouts,
        result.switch_count,
    )


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            result = _quick_drive(obs=ObsConfig(trace=True))
            tracer = result.testbed.sim.obs.trace
            tracer.finish()
            path = tmp_path / f"{name}.jsonl"
            tracer.export_jsonl(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert len(paths[0].read_bytes()) > 0

    def test_tracing_off_is_bit_identical(self):
        """An obs-disabled run and a fully-traced run of the same seed
        must produce identical protocol results: tracing draws no
        randomness and mutates no state."""
        plain = _quick_drive(obs=None)
        traced = _quick_drive(obs=ObsConfig(trace=True, detail=True, profile=True))
        assert _result_fields(plain) == _result_fields(traced)
        assert plain.testbed.sim.events_processed == traced.testbed.sim.events_processed


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("plain") == "plain"

    def test_labels_sorted(self):
        assert metric_key("m", b=2, a="x") == "m{a=x,b=2}"

    def test_label_may_be_called_name(self):
        # The metric name is positional-only precisely for this.
        assert metric_key("stat", name="dedup") == "stat{name=dedup}"


class TestMetricsRegistry:
    def test_counter_memoized_and_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", ap="ap0")
        assert registry.counter("hits", ap="ap0") is counter
        counter.inc()
        counter.inc(2)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.snapshot() == {"hits{ap=ap0}": 3}

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.snapshot_value() == 3

    def test_histogram_buckets_cumulative(self):
        histogram = Histogram("h", buckets=(10.0, 100.0))
        for value in (5, 50, 500):
            histogram.observe(value)
        snap = histogram.snapshot_value()
        assert snap["buckets"] == {"10": 1, "100": 2, "+Inf": 3}
        assert snap["count"] == 3
        assert snap["sum"] == 555.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100.0, 10.0))

    def test_collectors_merge_under_instruments(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"a": 1, "shadow": 0})
        registry.counter("shadow").inc(9)
        snapshot = registry.snapshot()
        assert snapshot["a"] == 1
        assert snapshot["shadow"] == 9  # instruments win

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(1)
        registry.counter("a", k="v").inc(2)
        registry.register_collector(lambda: {"m": 3})
        text = registry.to_json()
        assert json.loads(text) == registry.snapshot()
        assert list(json.loads(text)) == sorted(registry.snapshot())

    def test_testbed_collectors_snapshot(self):
        result = _quick_drive(obs=ObsConfig(trace=True))
        snapshot = result.testbed.sim.obs.metrics.snapshot()
        assert snapshot["switches_completed"] == result.switch_count
        assert snapshot["engine_events_processed"] > 0
        assert any(key.startswith("ap_mpdus_sent{") for key in snapshot)
        # Round-trips through the canonical JSON rendering.
        assert json.loads(result.testbed.sim.obs.metrics.to_json()) == snapshot


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------


class TestSchema:
    def test_valid_drive_trace(self, tmp_path):
        result = _quick_drive(obs=ObsConfig(trace=True))
        tracer = result.testbed.sim.obs.trace
        tracer.finish()
        path = tmp_path / "t.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count > 0
        with open(path) as handle:
            validated, errors = validate_lines(handle)
        assert validated == count
        assert errors == []

    def test_rejects_bad_records(self):
        good = {
            "seq": 0, "ts": 0, "kind": "event", "sub": "s",
            "name": "n", "track": None, "tags": {},
        }
        assert validate_record(good, check_names=False) == []
        assert validate_record({**good, "kind": "bogus"})
        assert validate_record({**good, "ts": -1})
        assert validate_record({**good, "tags": []})
        missing = dict(good)
        del missing["name"]
        assert validate_record(missing)
        span_no_end = {**good, "kind": "span"}
        assert validate_record(span_no_end)

    def test_name_catalog(self):
        record = {
            "seq": 0, "ts": 0, "kind": "event", "sub": "controller",
            "name": "switch", "track": None, "tags": {},
        }
        assert validate_record(record) == []
        # Unknown name, and a known name from the wrong subsystem.
        assert validate_record({**record, "name": "not-a-thing"})
        assert validate_record({**record, "sub": "mac"})
        # Foreign traces can opt out.
        assert validate_record({**record, "name": "x"}, check_names=False) == []

    def test_duplicate_seq_detected(self):
        line = json.dumps(
            {
                "seq": 0, "ts": 0, "kind": "event", "sub": "s",
                "name": "n", "track": None, "tags": {},
            }
        )
        assert validate_lines([line], check_names=False) == (1, [])
        assert validate_lines([line, line], check_names=False)[1]


# ----------------------------------------------------------------------
# chrome export: structure and nesting
# ----------------------------------------------------------------------


def _chrome_spans(payload, name):
    return [
        e for e in payload["traceEvents"] if e["ph"] == "X" and e["name"] == name
    ]


def _contains(parent, child):
    return (
        parent["ts"] <= child["ts"]
        and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
    )


class TestChromeExport:
    def test_metadata_and_instants(self):
        tracer = Tracer(recording=True)
        tracer.emit("subA", "e1", track="lane")
        span = tracer.begin("subB", "s1")
        tracer.end(span)
        payload = chrome_trace(tracer.records)
        events = payload["traceEvents"]
        names = {(e["ph"], e["name"]) for e in events}
        assert ("M", "process_name") in names
        assert ("M", "thread_name") in names
        assert ("i", "e1") in names
        assert ("X", "s1") in names

    def test_switch_span_nests_ap_legs(self):
        """A completed stop -> start -> ack switch renders as a switch
        span whose window contains the AP-side stop-processing and
        start-processing spans."""
        result = _quick_drive(obs=ObsConfig(trace=True))
        tracer = result.testbed.sim.obs.trace
        tracer.finish()
        payload = chrome_trace(tracer.records)
        switches = [
            s for s in _chrome_spans(payload, "switch")
            if s["args"].get("outcome") == "completed"
        ]
        assert switches
        stops = _chrome_spans(payload, "stop-processing")
        starts = _chrome_spans(payload, "start-processing")
        for switch in switches[:3]:
            assert any(_contains(switch, s) for s in stops)
            assert any(_contains(switch, s) for s in starts)

    def test_ha_promotion_nests_children(self):
        """Killing the primary with a warm standby produces a promotion
        span nesting checkpoint-restore and takeover-announce."""
        kill_us = 1 * SECOND
        config = TestbedConfig(
            seed=3,
            scheme="wgtt",
            wgtt=WgttConfig(ha_enabled=True, checkpoint_interval_us=100 * MS),
            fault_plan=FaultPlan([ControllerCrash(at_us=kill_us, down_us=None)]),
            obs=ObsConfig(trace=True),
        )
        testbed = build_testbed(config)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_until(kill_us + 500 * MS)
        assert testbed.standby.promoted
        tracer = testbed.sim.obs.trace
        tracer.finish()
        payload = chrome_trace(tracer.records)
        (promotion,) = _chrome_spans(payload, "promotion")
        (restore,) = _chrome_spans(payload, "checkpoint-restore")
        (announce,) = _chrome_spans(payload, "takeover-announce")
        assert _contains(promotion, restore)
        assert _contains(promotion, announce)
        assert restore["args"]["from_checkpoint"] is True


# ----------------------------------------------------------------------
# engine profiler
# ----------------------------------------------------------------------


class TestProfiler:
    def test_counts_match_events_processed(self):
        sim = Simulator(obs=ObsContext(ObsConfig(profile=True)))
        for i in range(5):
            sim.schedule_at(i * MS, lambda: None)
        sim.run(until_us=10 * MS)
        profiler = sim.obs.profiler
        assert profiler is not None
        assert profiler.total_events() == sim.events_processed == 5
        assert profiler.total_seconds() >= 0.0

    def test_rows_sorted_by_cost(self):
        profiler = EngineProfiler()
        profiler.add("cheap", 0.001)
        profiler.add("dear", 0.5)
        rows = profiler.rows()
        assert rows[0]["callback"] == "dear"
        assert rows[0]["count"] == 1
        assert "dear" in profiler.report(top=1)

    def test_off_by_default(self):
        sim = Simulator()
        assert sim.obs.profiler is None
        assert sim._profiler is None
