"""Property-based tests (hypothesis) on core data structures and
invariants: sequence arithmetic, scoreboard/reorder consistency, the
cyclic queue, deduplication, ESNR, and the event engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cyclic_queue import CyclicQueue
from repro.core.dedup import PacketDeduplicator
from repro.core.selection import ApSelector
from repro.mac.blockack import BlockAckScoreboard, ReorderBuffer
from repro.mac.frames import SEQ_MODULO, seq_distance
from repro.net.packet import Packet
from repro.phy.ber import (
    BER_BY_MODULATION,
    db_to_linear,
)
from repro.phy.esnr import effective_snr_db
from repro.sim import Simulator

seqs = st.integers(min_value=0, max_value=SEQ_MODULO - 1)


def pkt(seq):
    return Packet("s", "c", 100, seq=seq)


# ----------------------------------------------------------------------
# sequence arithmetic
# ----------------------------------------------------------------------

@given(seqs, seqs)
def test_seq_distance_antisymmetry(a, b):
    forward = seq_distance(a, b)
    backward = seq_distance(b, a)
    assert 0 <= forward < SEQ_MODULO
    if a != b:
        assert forward + backward == SEQ_MODULO
    else:
        assert forward == backward == 0


@given(seqs, st.integers(min_value=0, max_value=SEQ_MODULO - 1))
def test_seq_distance_shift_invariance(a, shift):
    b = (a + shift) % SEQ_MODULO
    assert seq_distance(a, b) == shift


# ----------------------------------------------------------------------
# scoreboard invariants
# ----------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=40),
    st.sets(st.integers(min_value=0, max_value=39)),
)
@settings(max_examples=60)
def test_scoreboard_conserves_mpdus(issued_count, acked_subset):
    """Every issued MPDU ends up exactly once in: delivered, pending
    retransmission, or still outstanding."""
    board = BlockAckScoreboard()
    mpdus = [board.issue(pkt(i)) for i in range(issued_count)]
    board.record_transmit(mpdus)
    acked = {m.seq for m in mpdus if m.seq in acked_subset}
    delivered, dropped = board.process_block_ack(acked)
    assert len(delivered) == len(acked)
    assert not dropped  # first failure never exceeds the retry limit
    assert board.in_flight() == issued_count - len(acked)
    # window start is the oldest unresolved seq (or next_seq if none)
    if board.in_flight():
        assert board.window_start == min(
            set(range(issued_count)) - acked
        )
    else:
        assert board.window_start == board.next_seq


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=64))
@settings(max_examples=60)
def test_scoreboard_external_ack_idempotent(ack_list):
    board = BlockAckScoreboard()
    mpdus = [board.issue(pkt(i)) for i in range(64)]
    board.record_transmit(mpdus)
    first = board.apply_external_ack(set(ack_list))
    second = board.apply_external_ack(set(ack_list))
    assert len(first) == len(set(ack_list))
    assert second == []


# ----------------------------------------------------------------------
# reorder buffer invariants
# ----------------------------------------------------------------------

@given(st.permutations(list(range(30))))
@settings(max_examples=60)
def test_reorder_delivers_in_order_under_any_arrival_order(order):
    buffer = ReorderBuffer()
    released = []
    for seq in order:
        released.extend(p.seq for p in buffer.receive(seq, pkt(seq)))
    assert released == list(range(30))


@given(
    st.lists(
        st.integers(min_value=0, max_value=29), min_size=1, max_size=120
    )
)
@settings(max_examples=60)
def test_reorder_never_delivers_duplicates(arrivals):
    buffer = ReorderBuffer()
    released = []
    for seq in arrivals:
        released.extend(p.seq for p in buffer.receive(seq, pkt(seq)))
    assert len(released) == len(set(released))


# ----------------------------------------------------------------------
# cyclic queue invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.integers(min_value=0, max_value=200), min_size=1, max_size=200,
        unique=True,
    )
)
@settings(max_examples=60)
def test_cyclic_pop_order_is_index_order(indices):
    queue = CyclicQueue(4096)
    for index in indices:
        queue.insert(index, pkt(index))
    popped = []
    while True:
        entry = queue.pop_head()
        if entry is None:
            break
        popped.append(entry[0])
    # Everything inserted at/after the initial head in this lap comes
    # out in strictly increasing index order with no duplicates.
    assert popped == sorted(popped)
    assert len(popped) == len(set(popped))
    assert set(popped) <= set(indices)


@given(st.integers(min_value=0, max_value=4095), st.integers(min_value=0, max_value=400))
@settings(max_examples=60)
def test_cyclic_advance_then_pop_only_ahead(start, count):
    queue = CyclicQueue(4096)
    for offset in range(min(count, 300)):
        queue.insert((start + offset) % 4096, pkt(offset))
    k = (start + min(count, 300) // 2) % 4096
    queue.advance_to(k)
    entry = queue.pop_head()
    if entry is not None:
        assert seq_distance(k, entry[0]) < 2048


# ----------------------------------------------------------------------
# dedup invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.sampled_from(["c0", "c1", "c2"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=200,
    )
)
@settings(max_examples=60)
def test_dedup_accepts_each_identity_exactly_once(stream):
    dedup = PacketDeduplicator()
    seen = set()
    for src, ip_id in stream:
        packet = Packet(src, "server", 100, ip_id=ip_id)
        accepted = dedup.accept(packet)
        assert accepted == ((src, ip_id) not in seen)
        seen.add((src, ip_id))


# ----------------------------------------------------------------------
# selector invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ap0", "ap1", "ap2"]),
            st.integers(min_value=0, max_value=9_999),
            st.floats(min_value=-10, max_value=40, allow_nan=False),
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60)
def test_selector_best_is_argmax_of_medians(readings):
    selector = ApSelector(10_000)
    now = 10_000
    for ap, t, esnr in readings:
        selector.record("c", ap, t, esnr)
    best = selector.best_ap("c", now)
    medians = {
        ap: selector.median_esnr("c", ap, now)
        for ap in selector.candidates("c", now)
    }
    if medians:
        assert medians[best] == max(medians.values())
    else:
        assert best is None


# ----------------------------------------------------------------------
# PHY invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.floats(min_value=-10.0, max_value=35.0, allow_nan=False),
        min_size=56,
        max_size=56,
    )
)
@settings(max_examples=60)
def test_esnr_bounded_by_extremes(snrs):
    """Effective SNR lies between the worst subcarrier and the best."""
    arr = np.array(snrs)
    esnr = effective_snr_db(arr)
    assert esnr <= arr.max() + 0.5
    # not absurdly below the minimum either (within the metric's floor)
    assert esnr >= arr.min() - 35.0


@given(st.floats(min_value=-5.0, max_value=30.0, allow_nan=False))
def test_ber_curves_are_probabilities(snr_db):
    snr = db_to_linear(snr_db)
    for ber in BER_BY_MODULATION.values():
        value = float(ber(snr))
        assert 0.0 <= value <= 0.5 + 1e-12


# ----------------------------------------------------------------------
# event engine invariants
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
@settings(max_examples=60)
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
