"""Tests for the heartbeat-driven AP liveness tracker."""

import pytest

from repro.core.liveness import ALIVE, ApLivenessTracker
from repro.sim import Simulator

MS = 1_000


def make_tracker(interval_ms=20, miss_limit=3):
    sim = Simulator()
    tracker = ApLivenessTracker(sim, interval_ms * MS, miss_limit)
    downs, ups = [], []
    tracker.on_down = lambda ap: downs.append((sim.now, ap))
    tracker.on_up = lambda ap: ups.append((sim.now, ap))
    return sim, tracker, downs, ups


def beat_until(sim, tracker, ap_id, until_us, interval_us):
    """Schedule periodic beats for one AP up to a cutoff time."""
    t = interval_us
    while t <= until_us:
        sim.schedule(t - sim.now, lambda ap=ap_id: tracker.beat(ap))
        t += interval_us


class TestStateMachine:
    def test_unknown_ap_never_declared_dead(self):
        sim, tracker, downs, _ = make_tracker()
        # no beats at all: the check timer never even starts
        sim.run(until_us=10_000 * MS)
        assert tracker.state("ap0") == ALIVE  # UNKNOWN reads as alive
        assert not tracker.is_dead("ap0")
        assert downs == []
        assert tracker.tracked_aps() == frozenset()

    def test_beating_ap_stays_alive(self):
        sim, tracker, downs, _ = make_tracker()
        beat_until(sim, tracker, "ap0", 500 * MS, 20 * MS)
        sim.run(until_us=500 * MS)
        assert tracker.state("ap0") == ALIVE
        assert downs == []

    def test_silent_ap_declared_dead_within_bound(self):
        sim, tracker, downs, _ = make_tracker(interval_ms=20, miss_limit=3)
        beat_until(sim, tracker, "ap0", 200 * MS, 20 * MS)  # last beat 200ms
        sim.run(until_us=1_000 * MS)
        assert tracker.is_dead("ap0")
        assert len(downs) == 1
        down_at, ap = downs[0]
        assert ap == "ap0"
        # detection lag bound: (miss_limit + 1) * interval after last beat
        assert 200 * MS < down_at <= 200 * MS + 4 * 20 * MS

    def test_revival_on_next_beat(self):
        sim, tracker, downs, ups = make_tracker()
        beat_until(sim, tracker, "ap0", 100 * MS, 20 * MS)
        sim.run(until_us=400 * MS)
        assert tracker.is_dead("ap0")
        sim.schedule(0, lambda: tracker.mark_alive("ap0"))
        sim.run(until_us=401 * MS)
        assert tracker.state("ap0") == ALIVE
        assert len(ups) == 1
        # exactly one down and one up: no duplicate edges
        assert len(downs) == 1
        assert [kind for _, kind, _ in tracker.events] == ["down", "up"]

    def test_one_dead_ap_does_not_kill_the_others(self):
        sim, tracker, downs, _ = make_tracker()
        beat_until(sim, tracker, "ap0", 100 * MS, 20 * MS)  # dies
        beat_until(sim, tracker, "ap1", 900 * MS, 20 * MS)  # keeps beating
        sim.run(until_us=900 * MS)
        assert tracker.is_dead("ap0")
        assert not tracker.is_dead("ap1")
        assert tracker.dead_aps() == frozenset({"ap0"})
        assert [ap for _, ap in downs] == ["ap0"]


class TestEdgeCases:
    def test_miss_limit_validated(self):
        with pytest.raises(ValueError):
            ApLivenessTracker(Simulator(), 20 * MS, miss_limit=0)

    def test_zero_interval_disables_tracking(self):
        sim = Simulator()
        tracker = ApLivenessTracker(sim, 0)
        tracker.beat("ap0")
        sim.run(until_us=10_000 * MS)
        assert tracker.tracked_aps() == frozenset()
        assert not tracker.is_dead("ap0")

    def test_forget_stops_tracking(self):
        sim, tracker, downs, _ = make_tracker()
        beat_until(sim, tracker, "ap0", 100 * MS, 20 * MS)
        sim.run(until_us=100 * MS)
        tracker.forget("ap0")
        sim.run(until_us=1_000 * MS)
        assert downs == []  # never declared dead after forget
        assert tracker.tracked_aps() == frozenset()

    def test_deterministic_event_trace(self):
        def run_once():
            sim, tracker, _, _ = make_tracker()
            beat_until(sim, tracker, "ap0", 100 * MS, 20 * MS)
            beat_until(sim, tracker, "ap1", 200 * MS, 20 * MS)
            sim.run(until_us=600 * MS)
            return list(tracker.events)

        assert run_once() == run_once()
