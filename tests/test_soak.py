"""Soak subsystem: workload determinism, churn lifecycle, admission
pacing, backpressure hysteresis, and the SLO guard's invariants."""

import json

import pytest

from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.core.cyclic_queue import CyclicQueue
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim import RngRegistry, Simulator
from repro.sim.engine import MS, SECOND
from repro.soak import (
    SloBudgets,
    SoakConfig,
    SoakViolationError,
    WorkloadConfig,
    WorkloadPlan,
    run_soak,
)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------


def _plan(seed=7, duration_s=120.0, **kw):
    return WorkloadPlan.generate(
        RngRegistry(seed).spawn("soak-workload"),
        int(duration_s * SECOND),
        300.0,
        WorkloadConfig(**kw),
    )


class TestWorkloadPlan:
    def test_same_seed_same_plan(self):
        a = _plan(seed=7)
        b = _plan(seed=7)
        assert a.sessions == b.sessions

    def test_different_seed_different_plan(self):
        assert _plan(seed=7).sessions != _plan(seed=8).sessions

    def test_arrivals_sorted_within_horizon(self):
        plan = _plan(duration_s=60.0, arrival_rate_per_s=2.0)
        times = [s.arrive_us for s in plan]
        assert times == sorted(times)
        assert all(0 <= t < 60 * SECOND for t in times)

    def test_flow_sizes_heavy_tailed_and_bounded(self):
        plan = _plan(
            duration_s=600.0,
            arrival_rate_per_s=2.0,
            size_min_bytes=10_000,
            size_max_bytes=10_000_000,
        )
        sizes = [f.size_bytes for s in plan for f in s.flows]
        assert len(sizes) > 100
        assert all(10_000 <= x <= 10_000_000 for x in sizes)
        sizes.sort()
        median = sizes[len(sizes) // 2]
        # Heavy tail: the largest draw dwarfs the median.
        assert sizes[-1] > 10 * median

    def test_dwell_floor_and_mobility_shape(self):
        plan = _plan(duration_s=300.0, arrival_rate_per_s=1.0)
        for s in plan:
            assert s.dwell_us >= WorkloadConfig().min_dwell_us
            assert s.direction in (1, -1)
            assert s.start_x in (0.0, 300.0)
            assert s.flows  # at least one flow per session

    def test_flow_duration_matches_size_over_rate(self):
        plan = _plan(duration_s=120.0)
        flow = plan.sessions[0].flows[0]
        expected = int(flow.size_bytes * 8 / flow.rate_bps * SECOND)
        assert flow.duration_us == max(1, expected)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            WorkloadPlan.generate(RngRegistry(1), 0, 300.0)


# ----------------------------------------------------------------------
# cyclic-queue watermark (satellite: stats through the registry)
# ----------------------------------------------------------------------


class TestCyclicHighWatermark:
    def test_tracks_peak_pending_span(self):
        queue = CyclicQueue(size=16)
        for i in range(5):
            queue.insert(i, Packet("server", "c", 100))
        assert queue.high_watermark == 5
        for _ in range(5):
            queue.pop_head()
        # Draining never lowers the high-water mark.
        assert queue.high_watermark == 5
        for i in range(5, 13):
            queue.insert(i, Packet("server", "c", 100))
        assert queue.high_watermark == 8


# ----------------------------------------------------------------------
# mid-run churn on a live testbed
# ----------------------------------------------------------------------


def _wgtt_testbed(**wgtt_kw):
    config = TestbedConfig(
        seed=2, scheme="wgtt", wgtt=WgttConfig(**wgtt_kw)
    )
    return build_testbed(config)


class TestClientChurn:
    def test_add_then_retire_returns_to_baseline(self):
        from repro.mobility.vehicle import VehicleTrack

        tb = _wgtt_testbed()
        tb.run_seconds(0.2)
        ports_before = len(tb.channel._ports)
        devices_before = len(tb.medium._devices)
        track = VehicleTrack(
            tb.road, start_x=0.0, speed_mph=15.0,
            start_time_us=tb.sim.now,
        )
        client = tb.add_client(track, client_id="riderX")
        assert tb.client_by_id("riderX") is client
        assert len(tb.channel._ports) == ports_before + 1
        tb.run_seconds(0.2)
        tb.depart_client(client_id="riderX")
        tb.retire_client("riderX")
        assert tb.client_by_id("riderX") is None
        assert tb.clients_retired == 1
        # Port/device teardown is deferred past the interference
        # horizon; after the delay both tables are back to baseline.
        tb.run_seconds(0.2)
        assert len(tb.channel._ports) == ports_before
        assert len(tb.medium._devices) == devices_before
        assert not tb._retiring

    def test_departed_client_state_freed_everywhere(self):
        tb = _wgtt_testbed()
        src, _sink = tb.add_downlink_udp_flow(0, rate_bps=5e6)
        src.start()
        tb.run_seconds(1.0)
        cid = tb.clients[0].client_id
        controller = tb.controller
        assert cid in controller._clients
        tb.depart_client(client_id=cid)
        tb.retire_client(cid)
        src.stop()
        tb.run_seconds(0.5)
        assert cid not in controller._clients
        assert controller._index_alloc.tracked_clients() == 0
        assert controller.selector.series_count() == 0
        for ap in tb.wgtt_aps.values():
            assert cid not in ap._cyclic
            assert cid not in ap._serving

    def test_no_downlink_delivered_after_departure(self):
        """Satellite: frames must stop at the AP once the client left,
        even with the source still pushing and fan-outs in flight."""
        tb = _wgtt_testbed()
        src, sink = tb.add_downlink_udp_flow(0, rate_bps=10e6)
        src.start()
        tb.run_seconds(1.0)
        cid = tb.clients[0].client_id
        tb.depart_client(client_id=cid)
        tb.retire_client(cid)
        depart_us = tb.sim.now
        # The source keeps offering traffic for the departed client.
        tb.run_seconds(1.0)
        src.stop()
        # Nothing may arrive after the departure instant (the radio is
        # off and every AP purged the client on "client-departed").
        late = [a for a in sink.arrivals if a[0] > depart_us]
        assert late == []
        # The controller refuses the orphaned ingress explicitly.
        assert tb.controller.stats["downlink_unassociated"] > 0
        # No AP recreated a cyclic queue for the departed client.
        for ap in tb.wgtt_aps.values():
            assert cid not in ap._cyclic

    def test_departed_guard_bounded(self):
        tb = _wgtt_testbed()
        ap = next(iter(tb.wgtt_aps.values()))
        for i in range(ap._departed_cap + 50):
            ap._client_departed(f"ghost{i}")
        assert len(ap._departed) == ap._departed_cap
        assert len(ap._departed_order) == ap._departed_cap


# ----------------------------------------------------------------------
# backpressure hysteresis (satellite: alternation, no stuck-on)
# ----------------------------------------------------------------------


class TestBackpressureHysteresis:
    def test_alternates_under_overload_and_clears_after_drain(self):
        tb = _wgtt_testbed(index_bits=8, backpressure_enabled=True)
        src, _sink = tb.add_downlink_udp_flow(0, rate_bps=40e6)
        src.start()
        tb.run_seconds(3.0)
        stats = tb.controller.stats
        # Sustained overload oscillates: engage, pace, drain to the
        # low watermark, release, re-engage — not a single latch.
        assert stats["backpressure_on"] >= 2
        assert stats["backpressure_off"] >= 1
        assert stats["downlink_paced"] > 0
        src.stop()
        tb.run_seconds(1.0)
        # No stuck-on after the offered load drains.
        assert all(not s.paced for s in tb.controller._clients.values())
        for ap in tb.wgtt_aps.values():
            assert not ap._backpressured

    def test_watermark_metrics_exported(self):
        tb = _wgtt_testbed(index_bits=8, backpressure_enabled=True)
        src, _sink = tb.add_downlink_udp_flow(0, rate_bps=40e6)
        src.start()
        tb.run_seconds(2.0)
        snapshot = tb.obs.metrics.snapshot()
        assert snapshot["backpressure_on"] >= 1
        assert "backpressure_off" in snapshot
        watermarks = [
            value
            for key, value in snapshot.items()
            if key.startswith("ap_cyclic_high_watermark{")
        ]
        assert len(watermarks) == len(tb.wgtt_aps)
        assert max(watermarks) > 0
        drops = [
            value
            for key, value in snapshot.items()
            if key.startswith("ap_overflow_drops{")
        ]
        assert len(drops) == len(tb.wgtt_aps)


# ----------------------------------------------------------------------
# admission pacer
# ----------------------------------------------------------------------


def _controller_rig(**config_kw):
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    controller = WgttController(
        sim, backhaul, RngRegistry(1), WgttConfig(**config_kw)
    )
    sent = []
    for ap_id in ("ap0", "ap1"):
        backhaul.register(
            ap_id,
            lambda src, kind, payload, ap=ap_id: sent.append(
                (ap, kind, payload)
            ),
        )
        controller.add_ap(ap_id)
    return sim, controller, sent


def _register(controller, sim, client="client0"):
    from repro.core.assoc_sync import StaInfo

    controller.register_association(
        StaInfo(client=client, associated_at_us=sim.now, first_ap="ap0")
    )


class TestAdmissionPacer:
    def test_disabled_by_default(self):
        _sim, controller, _sent = _controller_rig()
        assert controller._pacer is None

    def test_burst_passes_then_shapes(self):
        sim, controller, sent = _controller_rig(
            admission_enabled=True, admission_burst=4,
            admission_rate_pps=100, admission_queue_slots=8,
        )
        _register(controller, sim)
        for _ in range(6):
            controller.accept_downlink(Packet("server", "client0", 500))
        stats = controller.stats
        assert stats["admission_passthrough"] == 4
        assert stats["admission_enqueued"] == 2
        assert stats["downlink_accepted"] == 4
        # Tokens refill at 100 pps: after 40 ms the release timer has
        # drained the two parked packets in arrival order.
        sim.run(until_us=sim.now + 40 * MS)
        assert stats["admission_released"] == 2
        assert stats["downlink_accepted"] == 6

    def test_queue_overflow_drops_counted(self):
        sim, controller, _sent = _controller_rig(
            admission_enabled=True, admission_burst=1,
            admission_rate_pps=10, admission_queue_slots=2,
        )
        _register(controller, sim)
        for _ in range(6):
            controller.accept_downlink(Packet("server", "client0", 500))
        assert controller.stats["admission_passthrough"] == 1
        assert controller.stats["admission_enqueued"] == 2
        assert controller.stats["admission_dropped"] == 3

    def test_round_robin_fairness_across_clients(self):
        sim, controller, _sent = _controller_rig(
            admission_enabled=True, admission_burst=1,
            admission_rate_pps=1000, admission_queue_slots=64,
        )
        _register(controller, sim, "client0")
        _register(controller, sim, "client1")
        released = []
        original = controller._release_downlink

        def spy(client_id, packet):
            released.append(client_id)
            original(client_id, packet)

        controller._pacer._release_fn = spy
        for _ in range(5):
            controller.accept_downlink(Packet("server", "client0", 500))
            controller.accept_downlink(Packet("server", "client1", 500))
        sim.run(until_us=sim.now + SECOND)
        assert released.count("client0") == 4
        assert released.count("client1") == 4
        # Interleaved round-robin, not one client first.
        assert released[:2] in (
            ["client0", "client1"], ["client1", "client0"]
        )

    def test_backpressured_client_holds_in_pacing_queue(self):
        sim, controller, sent = _controller_rig(
            admission_enabled=True, admission_burst=2,
            admission_rate_pps=1000, admission_queue_slots=16,
        )
        _register(controller, sim)
        controller._handle_backpressure("ap0", ("client0", True))
        for _ in range(3):
            controller.accept_downlink(Packet("server", "client0", 500))
        # Blocked clients park instead of dropping (the PR 3 behaviour).
        assert controller.stats["admission_enqueued"] == 3
        assert controller.stats["downlink_paced"] == 0
        sim.run(until_us=sim.now + 100 * MS)
        assert controller.stats["admission_released"] == 0
        controller._handle_backpressure("ap0", ("client0", False))
        sim.run(until_us=sim.now + 100 * MS)
        assert controller.stats["admission_released"] == 3

    def test_departure_flushes_bucket(self):
        sim, controller, _sent = _controller_rig(
            admission_enabled=True, admission_burst=1,
            admission_rate_pps=10, admission_queue_slots=8,
        )
        _register(controller, sim)
        for _ in range(4):
            controller.accept_downlink(Packet("server", "client0", 500))
        assert controller._pacer.backlog() == 3
        controller.deregister_client("client0")
        assert controller._pacer.backlog() == 0
        assert controller._pacer.tracked_clients() == 0
        assert controller.stats["admission_dropped"] == 3

    def test_crash_halts_pacer(self):
        sim, controller, _sent = _controller_rig(
            admission_enabled=True, admission_burst=1,
            admission_rate_pps=10, admission_queue_slots=8,
        )
        _register(controller, sim)
        for _ in range(3):
            controller.accept_downlink(Packet("server", "client0", 500))
        controller.crash()
        assert controller._pacer.backlog() == 0
        assert not controller._pacer._release_timer.armed


# ----------------------------------------------------------------------
# harness + guard, end to end (short runs)
# ----------------------------------------------------------------------


def _short_config(**kw):
    defaults = dict(
        seed=5,
        duration_s=6.0,
        workload=WorkloadConfig(
            arrival_rate_per_s=1.0,
            mean_dwell_s=3.0,
            rate_min_bps=0.25e6,
            rate_max_bps=1e6,
            size_min_bytes=16 * 1024,
            size_max_bytes=512 * 1024,
        ),
    )
    defaults.update(kw)
    return SoakConfig(**defaults)


class TestSoakHarness:
    def test_double_run_fingerprint_identical(self):
        a = run_soak(_short_config())
        b = run_soak(_short_config())
        assert a.fingerprint == b.fingerprint
        assert a.churn_stats == b.churn_stats
        assert a.ok and b.ok

    def test_seed_changes_fingerprint(self):
        a = run_soak(_short_config())
        c = run_soak(_short_config(seed=6))
        assert a.fingerprint != c.fingerprint

    def test_admission_soak_runs_clean(self):
        result = run_soak(_short_config(admission_enabled=True))
        assert result.ok
        assert result.churn_stats["arrivals"] > 0

    def test_guard_detects_violation(self):
        result = run_soak(
            _short_config(
                budgets=SloBudgets(max_pending_events=1),
            )
        )
        assert not result.ok
        assert any(
            v["probe"] == "engine_pending_events"
            and v["kind"] == "bounded-memory"
            for v in result.violations
        )

    def test_fail_fast_raises(self):
        with pytest.raises(SoakViolationError):
            run_soak(
                _short_config(
                    budgets=SloBudgets(max_pending_events=1),
                    fail_fast=True,
                )
            )

    def test_telemetry_stream_well_formed(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        result = run_soak(_short_config(telemetry_path=str(path)))
        assert result.ok
        kinds = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "t_us" in record and "kind" in record
            kinds.append(record["kind"])
        assert kinds.count("sample") == result.samples
        assert kinds.count("checkpoint") >= 1
        assert kinds[-1] == "summary"
