"""The static-analysis engine: per-rule fixtures + repo self-checks.

Three layers:

* **fixture tests** — for every rule, a minimal snippet where it fires
  (positive), a minimal snippet where it must stay silent (negative),
  and — where the suppression protocol applies — an explained
  ``# noqa-repro`` marker absorbing the finding;
* **repo self-check** — ``python -m repro.analysis src/`` must exit 0:
  the tree this suite ships in is clean under its own lints;
* **manifest regression** — the committed ``analysis/flags.toml`` must
  match the *live* config dataclass defaults (imported, not parsed),
  so the AST view and the runtime view can never drift apart.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import build_passes, main, rule_catalog
from repro.analysis.engine import run_passes
from repro.analysis.passes import (
    CheckpointCoveragePass,
    DeterminismPass,
    FlagManifestPass,
    MetricNamePass,
    TraceKindPass,
)
from repro.analysis.passes.flags import load_flags_manifest
from repro.analysis.project import load_project

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_fixture(tmp_path, sources, passes, rel="pkg/mod.py"):
    """Write ``sources`` under ``tmp_path`` and run ``passes``.

    ``sources`` is either one source string (written to ``rel``) or a
    dict of relative-path -> source.  Returns the finding list.
    """
    if isinstance(sources, str):
        sources = {rel: sources}
    for relative, text in sources.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    project = load_project([tmp_path], root=tmp_path)
    return run_passes(project, passes)


def rules_of(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# DET001..DET005 — determinism lint
# ----------------------------------------------------------------------


class TestDeterminismRules:
    def test_det001_banned_import_and_call(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "import random\n"
            "import time\n"
            "def f():\n"
            "    return time.time()\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["DET001", "DET001", "DET001"]

    def test_det001_negative(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "from repro.sim.rng import RngRegistry\n"
            "def f(sim):\n"
            "    return sim.now\n",
            [DeterminismPass()],
        )
        assert findings == []

    def test_det001_suppressed_with_reason(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "from time import perf_counter"
            "  # noqa-repro: DET001 — profiler only, never touches sim state\n",
            [DeterminismPass()],
        )
        assert findings == []

    def test_det002_direct_numpy_generator(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "import numpy as np\n"
            "gen = np.random.default_rng(7)\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["DET002"]

    def test_det002_blessed_inside_rng_module(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/sim/rng.py": (
                    "import numpy as np\n"
                    "gen = np.random.default_rng(7)\n"
                )
            },
            [DeterminismPass()],
        )
        assert findings == []

    def test_det003_dynamic_label(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "def f(rng, label):\n"
            "    return rng.stream(label)\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["DET003"]

    def test_det003_literal_and_fstring_prefix_ok(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "def f(rng, ap):\n"
            '    a = rng.stream("mac/backoff")\n'
            '    b = rng.stream(f"fading/{ap}")\n'
            "    return a, b\n",
            [DeterminismPass()],
        )
        assert findings == []

    def test_det004_duplicate_label(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "def f(rng):\n"
            '    return rng.stream("shared/label")\n'
            "def g(rng):\n"
            '    return rng.stream("shared/label")\n',
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["DET004"]

    def test_det005_unsorted_values_in_export(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "def snapshot(d):\n"
            "    return [t.deadline for t in d.values()]\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["DET005"]

    def test_det005_sorted_or_non_export_ok(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            # sorted() wrapping, an order-insensitive reducer over a
            # set, and an unsorted .values() in a non-export function
            # are all fine.
            "def snapshot(d, s):\n"
            "    total = sum(x for x in s)\n"
            "    return total, [d[k] for k in sorted(d)]\n"
            "def plain_hot_path(d):\n"
            "    return [v for v in d.values()]\n",
            [DeterminismPass()],
        )
        assert findings == []


# ----------------------------------------------------------------------
# CFG001..CFG003 — flags manifest
# ----------------------------------------------------------------------

_CONFIG_SRC = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class DemoConfig:\n"
    "    speed: float = 1.0\n"
    "    shiny_enabled: bool = False\n"
)


class TestFlagManifestRules:
    def run_flags(self, tmp_path, manifest_text, source=_CONFIG_SRC):
        manifest = tmp_path / "flags.toml"
        manifest.write_text(manifest_text)
        return run_fixture(
            tmp_path,
            {"src/demo/conf.py": source},
            [FlagManifestPass(manifest_path=manifest)],
        )

    def test_cfg001_unreviewed_flag(self, tmp_path):
        findings = self.run_flags(tmp_path, "[flags]\n")
        assert rules_of(findings) == ["CFG001"]

    def test_cfg002_stale_entry(self, tmp_path):
        findings = self.run_flags(
            tmp_path,
            "[flags]\n"
            '"demo.conf.DemoConfig.shiny_enabled" = false\n'
            '"demo.conf.DemoConfig.gone_enabled" = true\n',
        )
        assert rules_of(findings) == ["CFG002"]

    def test_cfg002_missing_manifest(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {"src/demo/conf.py": _CONFIG_SRC},
            [FlagManifestPass(manifest_path=tmp_path / "nope.toml")],
        )
        assert rules_of(findings) == ["CFG002"]

    def test_cfg003_flipped_default(self, tmp_path):
        findings = self.run_flags(
            tmp_path,
            "[flags]\n"
            '"demo.conf.DemoConfig.shiny_enabled" = true\n',
        )
        assert rules_of(findings) == ["CFG003"]

    def test_reviewed_manifest_is_clean(self, tmp_path):
        findings = self.run_flags(
            tmp_path,
            "[flags]\n"
            '"demo.conf.DemoConfig.shiny_enabled" = false\n',
        )
        assert findings == []

    def test_non_bool_and_non_config_fields_ignored(self, tmp_path):
        findings = self.run_flags(
            tmp_path,
            "[flags]\n",
            source=(
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class NotAConf:\n"
                "    on: bool = True\n"
                "@dataclass\n"
                "class DemoConfig:\n"
                "    rate: float = 2.0\n"
            ),
        )
        assert findings == []


# ----------------------------------------------------------------------
# TRC001..TRC003 — trace-kind cross-check
# ----------------------------------------------------------------------

_CATALOG = {"switch": ("controller",), "tx": ("backhaul",)}


class TestTraceKindRules:
    def test_trc001_uncataloged_emit(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": (
                    "def f(tracer):\n"
                    '    tracer.emit("controller", "switch")\n'
                    '    tracer.emit("controller", "mystery")\n'
                    '    tracer.emit("backhaul", "tx")\n'
                )
            },
            [TraceKindPass(catalog=_CATALOG)],
        )
        assert rules_of(findings) == ["TRC001"]

    def test_trc001_wrong_subsystem(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": (
                    "def f(tracer):\n"
                    '    tracer.emit("mac", "switch")\n'
                    '    tracer.emit("backhaul", "tx")\n'
                )
            },
            [TraceKindPass(catalog=_CATALOG)],
        )
        assert rules_of(findings) == ["TRC001"]

    def test_trc002_dead_catalog_entry(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": (
                    "def f(tracer):\n"
                    '    tracer.emit("controller", "switch")\n'
                )
            },
            [TraceKindPass(catalog=_CATALOG)],
        )
        # "tx" is cataloged but never emitted; the full-scan marker
        # file is present so the dead entry is reported.
        assert rules_of(findings) == ["TRC002"]

    def test_trc002_silent_on_partial_scan(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "somewhere/else.py": (
                    "def f(tracer):\n"
                    '    tracer.emit("controller", "switch")\n'
                )
            },
            [TraceKindPass(catalog=_CATALOG)],
        )
        assert findings == []

    def test_trc003_dynamic_name(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": (
                    "def f(tracer, name):\n"
                    '    tracer.emit("controller", name)\n'
                    '    tracer.emit("controller", "switch")\n'
                    '    tracer.emit("backhaul", "tx")\n'
                )
            },
            [TraceKindPass(catalog=_CATALOG)],
        )
        assert rules_of(findings) == ["TRC003"]

    def test_conditional_literal_pair_ok(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": (
                    "def f(tracer, fast):\n"
                    '    tracer.emit("controller", '
                    '"switch" if fast else "tx")\n'
                )
            },
            [TraceKindPass(catalog={"switch": ("controller",),
                                    "tx": ("controller",)})],
        )
        assert findings == []


# ----------------------------------------------------------------------
# CKP001..CKP003 — checkpoint coverage
# ----------------------------------------------------------------------

_CONTROLLER_TMPL = (
    "class WgttController:\n"
    "    def __init__(self):\n"
    "        self._clients = {{}}\n"
    "        self.mood = 0{marker}\n"
    "    def tick(self):\n"
    "        self._clients['x'] = 1\n"
    "        self.mood += 1\n"
)

_CHECKPOINT_SRC = (
    "def checkpoint_controller(controller):\n"
    "    return {'clients': dict(controller._clients)}\n"
    "def restore_controller(controller, state):\n"
    "    controller._clients = dict(state['clients'])\n"
)


class TestCheckpointRules:
    def run_ckp(self, tmp_path, controller_src, checkpoint_src=_CHECKPOINT_SRC):
        return run_fixture(
            tmp_path,
            {
                "repro/core/controller.py": controller_src,
                "repro/ha/checkpoint.py": checkpoint_src,
            },
            [CheckpointCoveragePass()],
        )

    def test_ckp001_uncovered_volatile_attr(self, tmp_path):
        findings = self.run_ckp(
            tmp_path, _CONTROLLER_TMPL.format(marker="")
        )
        assert rules_of(findings) == ["CKP001"]
        assert "mood" in findings[0].message

    def test_volatile_ok_with_reason_is_clean(self, tmp_path):
        findings = self.run_ckp(
            tmp_path,
            _CONTROLLER_TMPL.format(
                marker="  # volatile-ok: derived, rebuilt on first tick"
            ),
        )
        assert findings == []

    def test_ckp003_volatile_ok_without_reason(self, tmp_path):
        # A reasonless marker still allowlists the attr (no double
        # report) but is itself an error — the gate stays red.
        findings = self.run_ckp(
            tmp_path, _CONTROLLER_TMPL.format(marker="  # volatile-ok")
        )
        assert rules_of(findings) == ["CKP003"]

    def test_ckp002_stale_serializer_read(self, tmp_path):
        findings = self.run_ckp(
            tmp_path,
            "class WgttController:\n"
            "    def __init__(self):\n"
            "        self._clients = {}\n"
            "    def tick(self):\n"
            "        self._clients['x'] = 1\n",
            checkpoint_src=(
                "def checkpoint_controller(controller):\n"
                "    return {'clients': dict(controller._clients),\n"
                "            'ghost': controller._renamed_away}\n"
                "def restore_controller(controller, state):\n"
                "    controller._clients = dict(state['clients'])\n"
            ),
        )
        assert rules_of(findings) == ["CKP002"]
        assert "_renamed_away" in findings[0].message

    def test_to_state_class_coverage(self, tmp_path):
        findings = self.run_ckp(
            tmp_path,
            "class WgttController:\n"
            "    def __init__(self):\n"
            "        self._clients = {}\n"
            "    def tick(self):\n"
            "        self._clients['x'] = 1\n"
            "class ClientState:\n"
            "    def __init__(self, client_id):\n"
            "        self.client_id = client_id\n"
            "        self.forgotten = 0\n"
            "    def to_state(self):\n"
            "        return {'client_id': self.client_id}\n",
        )
        assert rules_of(findings) == ["CKP001"]
        assert "ClientState.forgotten" in findings[0].message


# ----------------------------------------------------------------------
# MET001..MET002 — metric-name lint
# ----------------------------------------------------------------------


class TestMetricNameRules:
    def test_met001_braces_in_instrument_name(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            'def f(m):\n    m.counter("drops{ap=a3}")\n',
            [MetricNamePass()],
        )
        assert "MET001" in rules_of(findings)

    def test_met001_non_canonical_key_literal(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            # Unsorted labels: metric_key() would emit ap before zone.
            'KEY = "drops{zone=z1,ap=a3}"\n',
            [MetricNamePass()],
        )
        assert rules_of(findings) == ["MET001"]

    def test_met001_canonical_key_ok(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            'KEY = "drops{ap=a3,zone=z1}"\n'
            'def f(m):\n    m.counter("drops", ap="a3")\n',
            [MetricNamePass()],
        )
        assert findings == []

    def test_met002_conflicting_instrument_types(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            'def f(m):\n    m.counter("queue_depth")\n'
            'def g(m):\n    m.gauge("queue_depth")\n',
            [MetricNamePass()],
        )
        assert rules_of(findings) == ["MET002"]


# ----------------------------------------------------------------------
# SUP001/SUP002/SYN001 — the engine's own rules
# ----------------------------------------------------------------------


class TestEngineRules:
    def test_sup001_reasonless_suppression(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "import random  # noqa-repro: DET001\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["SUP001"]

    def test_sup002_unused_suppression(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            "x = 1  # noqa-repro: DET001 — no DET001 fires on this line\n",
            [DeterminismPass()],
        )
        assert rules_of(findings) == ["SUP002"]

    def test_suppression_in_string_literal_ignored(self, tmp_path):
        findings = run_fixture(
            tmp_path,
            'DOC = "suppress with # noqa-repro: DET001 — reason"\n',
            [DeterminismPass()],
        )
        assert findings == []

    def test_syn001_parse_error(self, tmp_path):
        findings = run_fixture(
            tmp_path, "def broken(:\n", [DeterminismPass()]
        )
        assert rules_of(findings) == ["SYN001"]

    def test_rule_filter_skips_suppression_audit(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import random  # noqa-repro: DET001 — fixture exception\n"
            "import time\n"
        )
        project = load_project([tmp_path], root=tmp_path)
        findings = run_passes(
            project, [DeterminismPass()], rule_filter=["DET001"]
        )
        # The reasoned suppression absorbs line 1; line 2 survives.
        assert rules_of(findings) == ["DET001"]
        assert findings[0].line == 2


# ----------------------------------------------------------------------
# CLI + repo self-check
# ----------------------------------------------------------------------


class TestCliAndSelfCheck:
    def test_repo_is_clean_under_its_own_lints(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--json", "src/"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []

    def test_cli_reports_fixture_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_cli_json_is_deterministic(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nimport time\n")
        assert main(["--json", str(bad)]) == 1
        first = capsys.readouterr().out
        assert main(["--json", str(bad)]) == 1
        second = capsys.readouterr().out
        assert first == second
        assert len(json.loads(first)["findings"]) == 2

    def test_cli_rejects_unknown_rule_and_path(self, tmp_path):
        assert main(["--rule", "NOPE999", str(tmp_path)]) == 2
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_rule_catalog_covers_every_pass(self):
        catalog = rule_catalog()
        for analysis_pass in build_passes():
            for rule in analysis_pass.rules:
                assert rule in catalog
        for rule in ("SYN001", "SUP001", "SUP002"):
            assert rule in catalog

    def test_docs_document_every_rule(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
        for rule in rule_catalog():
            assert rule in doc, f"docs/static-analysis.md must cover {rule}"


# ----------------------------------------------------------------------
# Flags-manifest regression: AST view == runtime view
# ----------------------------------------------------------------------


def _live_flags():
    """module.Class.field -> default, from the *imported* dataclasses."""
    from repro.core.config import WgttConfig
    from repro.experiments.registry import ExperimentConfig
    from repro.obs.context import ObsConfig
    from repro.scenarios.testbed import TestbedConfig
    from repro.shard.config import ShardConfig
    from repro.soak.harness import SoakConfig

    flags = {}
    for cls in (WgttConfig, ExperimentConfig, ObsConfig, TestbedConfig,
                ShardConfig, SoakConfig):
        for field in dataclasses.fields(cls):
            if field.type in ("bool", bool) and isinstance(
                field.default, bool
            ):
                key = f"{cls.__module__}.{cls.__qualname__}.{field.name}"
                flags[key] = field.default
    return flags


class TestFlagsManifestRegression:
    def test_manifest_matches_live_defaults(self):
        manifest = load_flags_manifest(REPO_ROOT / "analysis" / "flags.toml")
        assert manifest == _live_flags()

    def test_fallback_parser_matches_tomllib(self):
        pytest.importorskip("tomllib")
        import re

        from repro.analysis.passes import flags as flags_mod

        path = REPO_ROOT / "analysis" / "flags.toml"
        via_tomllib = load_flags_manifest(path)
        # Drive the regex fallback directly on the committed manifest.
        parsed = {}
        section = ""
        for line in path.read_text().splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            section_match = flags_mod._TOML_SECTION.match(line)
            if section_match:
                section = section_match.group("name").strip()
                continue
            if section != "flags":
                continue
            match = flags_mod._TOML_LINE.match(line)
            assert match, f"fallback parser rejects line: {line!r}"
            key = match.group("quoted") or match.group("bare")
            parsed[key] = match.group("value") == "true"
        assert parsed == via_tomllib
