"""Tests for the side-effect-free channel probe and link caching."""

import numpy as np

from repro.channel import ChannelMap, OmniAntenna, ParabolicAntenna, RadioPort
from repro.mobility import Position, Road, VehicleTrack
from repro.sim import RngRegistry, Simulator


def make_link(seed=2, speed=15.0):
    sim = Simulator()
    rng = RngRegistry(seed)
    road = Road()
    cmap = ChannelMap(sim, rng)
    mount = Position(15.0, -12.0, 10.0)
    antenna = ParabolicAntenna(mount=mount, boresight=Position(15.0, 0.0, 1.5))
    cmap.register_port(RadioPort("ap0", antenna, 20.0, lambda t: mount))
    track = VehicleTrack(road, start_x=10.0, speed_mph=speed)
    cmap.register_port(
        RadioPort("client0", OmniAntenna(), 15.0, track.position_at,
                  lambda: track.speed_mps)
    )
    return cmap.link("ap0", "client0")


class TestProbe:
    def test_probe_is_idempotent(self):
        link = make_link()
        a = link.probe_subcarrier_snr_db(5_000)
        b = link.probe_subcarrier_snr_db(5_000)
        assert np.array_equal(a, b)

    def test_probe_does_not_change_committed_path(self):
        link = make_link()
        committed_before = link.subcarrier_snr_db(1_000).copy()
        # reconstruct an identical link and interleave probes
        link2 = make_link()
        link2.probe_subcarrier_snr_db(500)
        link2.probe_subcarrier_snr_db(900)
        committed_after = link2.subcarrier_snr_db(1_000)
        assert np.array_equal(committed_before, committed_after)

    def test_probe_matches_cache_at_committed_time(self):
        link = make_link()
        committed = link.subcarrier_snr_db(2_000)
        probed = link.probe_subcarrier_snr_db(2_000)
        assert np.array_equal(committed, probed)

    def test_probe_statistics_are_sane(self):
        link = make_link()
        link.subcarrier_snr_db(0)
        values = [
            float(np.mean(link.probe_subcarrier_snr_db(t)))
            for t in range(10_000, 200_000, 10_000)
        ]
        mean_level = link.mean_snr_db(100_000)
        assert abs(np.mean(values) - mean_level) < 8.0

    def test_tx_id_validation(self):
        import pytest

        link = make_link()
        with pytest.raises(ValueError):
            link.mean_snr_db(0, tx_id="nobody")

    def test_symmetric_link_lookup(self):
        sim = Simulator()
        rng = RngRegistry(4)
        cmap = ChannelMap(sim, rng)
        p = Position(0, 0, 0)
        cmap.register_port(RadioPort("a", OmniAntenna(), 10.0, lambda t: p))
        cmap.register_port(RadioPort("b", OmniAntenna(), 10.0, lambda t: p))
        assert cmap.link("a", "b") is cmap.link("b", "a")

    def test_self_link_rejected(self):
        import pytest

        sim = Simulator()
        rng = RngRegistry(4)
        cmap = ChannelMap(sim, rng)
        p = Position(0, 0, 0)
        cmap.register_port(RadioPort("a", OmniAntenna(), 10.0, lambda t: p))
        with pytest.raises(ValueError):
            cmap.link("a", "a")
