"""Tests for co-channel interference, capture, and collisions on the
shared medium."""


from repro.channel import ChannelMap, OmniAntenna, ParabolicAntenna, RadioPort
from repro.mac import DataAmpdu, WifiDevice, WirelessMedium
from repro.mobility import Position, Road, VehicleTrack
from repro.net import Packet
from repro.sim import RngRegistry, SECOND, Simulator


def build(seed=1, ap_xs=(10.0, 17.5), client_x=10.0):
    sim = Simulator()
    rng = RngRegistry(seed)
    road = Road()
    cmap = ChannelMap(sim, rng)
    aps = []
    for i, x in enumerate(ap_xs):
        mount = Position(x, -12.0, 10.0)
        antenna = ParabolicAntenna(
            mount=mount, boresight=Position(x, 0.0, 1.5), beamwidth_deg=10.0
        )
        cmap.register_port(
            RadioPort(f"ap{i}", antenna, 20.0, lambda t, m=mount: m)
        )
    track = VehicleTrack(road, start_x=client_x, speed_mph=0.0)
    cmap.register_port(
        RadioPort("client0", OmniAntenna(), 15.0, track.position_at,
                  lambda: track.speed_mps)
    )
    medium = WirelessMedium(sim, cmap)
    devices = [
        WifiDevice(sim, medium, rng, f"ap{i}", role="ap")
        for i in range(len(ap_xs))
    ]
    client = WifiDevice(sim, medium, rng, "client0", role="client")
    return sim, medium, devices, client


def test_overlapping_equal_power_transmissions_collide():
    """Two APs equidistant from the client transmitting simultaneously:
    near-0 dB SINR kills both frames."""
    sim, medium, (ap0, ap1), client = build(
        ap_xs=(10.0, 17.5), client_x=13.75
    )
    got = []
    client.on_packet = lambda p, src: got.append(p.seq)
    # Bypass DCF: force both frames onto the air at the same instant.
    from repro.phy.mcs import mcs_by_index

    for i, ap in enumerate((ap0, ap1)):
        session = ap.session("client0")
        mpdu = session.scoreboard.issue(
            Packet("server", "client0", 1500, seq=i)
        )
        frame = DataAmpdu(
            tx_device=ap.node_id, ta=ap.node_id, ra="client0",
            mpdus=[mpdu], mcs=mcs_by_index(0), window_start=mpdu.seq,
        )
        medium.transmit(frame)
    sim.run(until_us=SECOND // 10)
    assert got == []  # mutual destruction at ~0 dB SINR


def test_capture_strong_frame_survives_weak_overlap():
    """A client parked at AP0's boresight still decodes AP0 through a
    simultaneous transmission from the much weaker AP1."""
    sim, medium, (ap0, ap1), client = build(
        ap_xs=(10.0, 17.5), client_x=10.0
    )
    got = []
    client.on_packet = lambda p, src: got.append((p.seq, src))
    from repro.phy.mcs import mcs_by_index

    for i, ap in enumerate((ap0, ap1)):
        session = ap.session("client0")
        mpdu = session.scoreboard.issue(
            Packet("server", "client0", 1500, seq=i)
        )
        frame = DataAmpdu(
            tx_device=ap.node_id, ta=ap.node_id, ra="client0",
            mpdus=[mpdu], mcs=mcs_by_index(0), window_start=mpdu.seq,
        )
        medium.transmit(frame)
    sim.run(until_us=SECOND // 10)
    senders = {src for _seq, src in got}
    assert "ap0" in senders  # the ~18 dB-stronger frame captures
    assert "ap1" not in senders


def test_two_contending_clients_share_airtime():
    """Two saturating downlink sessions on one channel each get a
    meaningful share — CSMA/CA does its job."""
    sim = Simulator()
    rng = RngRegistry(5)
    road = Road()
    cmap = ChannelMap(sim, rng)
    mount = Position(10.0, -12.0, 10.0)
    antenna = ParabolicAntenna(mount=mount, boresight=Position(10.0, 0.0, 1.5))
    cmap.register_port(RadioPort("ap0", antenna, 20.0, lambda t: mount))
    for i, x in enumerate((9.0, 11.0)):
        track = VehicleTrack(road, start_x=x, speed_mph=0.0)
        cmap.register_port(
            RadioPort(f"client{i}", OmniAntenna(), 15.0, track.position_at,
                      lambda: 0.0)
        )
    medium = WirelessMedium(sim, cmap)
    ap = WifiDevice(sim, medium, rng, "ap0", role="ap")
    clients = [
        WifiDevice(sim, medium, rng, f"client{i}", role="client")
        for i in range(2)
    ]
    received = {0: 0, 1: 0}
    clients[0].on_packet = lambda p, s: received.__setitem__(0, received[0] + 1)
    clients[1].on_packet = lambda p, s: received.__setitem__(1, received[1] + 1)

    def refill(peer, room):
        for _ in range(room):
            ap.enqueue(Packet("server", peer, 1500), peer)

    ap.on_refill_needed = refill
    refill("client0", 64)
    refill("client1", 64)
    sim.run(until_us=2 * SECOND)
    total = received[0] + received[1]
    assert total > 1000
    # neither session starves
    assert min(received.values()) > 0.2 * total


def test_collision_rate_rises_with_contention():
    """More contending stations -> more DCF collisions (CW escalations)."""

    def run(num_clients):
        sim = Simulator()
        rng = RngRegistry(8)
        road = Road()
        cmap = ChannelMap(sim, rng)
        mount = Position(10.0, -12.0, 10.0)
        antenna = ParabolicAntenna(
            mount=mount, boresight=Position(10.0, 0.0, 1.5)
        )
        cmap.register_port(RadioPort("ap0", antenna, 20.0, lambda t: mount))
        clients = []
        for i in range(num_clients):
            track = VehicleTrack(road, start_x=9.0 + 0.3 * i, speed_mph=0.0)
            cmap.register_port(
                RadioPort(f"client{i}", OmniAntenna(), 15.0,
                          track.position_at, lambda: 0.0)
            )
        medium = WirelessMedium(sim, cmap)
        ap = WifiDevice(sim, medium, rng, "ap0", role="ap")
        devices = [
            WifiDevice(sim, medium, rng, f"client{i}", role="client")
            for i in range(num_clients)
        ]
        for i, device in enumerate(devices):
            for seq in range(400):
                device.enqueue(
                    Packet(f"client{i}", "server", 1400, seq=seq), "ap0"
                )
        sim.run(until_us=SECOND)
        return sum(d.dcf.collisions_backed_off for d in devices)

    assert run(4) > run(1)
