"""Tests for the stop/start/ack switching protocol coordinator."""

import pytest

from repro.core.config import WgttConfig
from repro.core.switching import AckMsg, StartMsg, SwitchCoordinator
from repro.net.backhaul import EthernetBackhaul
from repro.sim import Simulator


def make_coordinator(drop_stops=0):
    """Coordinator wired to a fake AP pair on a real backhaul.

    ``drop_stops``: number of initial stop messages ap1 ignores, to
    exercise the 30 ms retransmission path.
    """
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig()
    coordinator = SwitchCoordinator(sim, backhaul, config)
    state = {"stops": 0, "starts": 0, "dropped": drop_stops}

    def ap1_handler(src, kind, payload):
        if kind != "stop":
            return
        state["stops"] += 1
        if state["dropped"] > 0:
            state["dropped"] -= 1
            return
        start = StartMsg(
            client=payload.client,
            index=123,
            switch_id=payload.switch_id,
            from_ap="ap1",
        )
        backhaul.send_control("ap1", payload.target_ap, "start", start)

    def ap2_handler(src, kind, payload):
        if kind != "start":
            return
        state["starts"] += 1
        ack = AckMsg(client=payload.client, ap="ap2", switch_id=payload.switch_id)
        backhaul.send_control("ap2", "controller", "ack", ack)

    def controller_handler(src, kind, payload):
        if kind == "ack":
            coordinator.on_ack(payload)

    backhaul.register("ap1", ap1_handler)
    backhaul.register("ap2", ap2_handler)
    backhaul.register("controller", controller_handler)
    return sim, coordinator, state, config


def test_three_step_switch_completes():
    sim, coordinator, state, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    assert coordinator.busy("client0")
    sim.run()
    assert not coordinator.busy("client0")
    assert state["stops"] == 1 and state["starts"] == 1
    assert len(coordinator.history) == 1
    record = coordinator.history[0]
    assert record.from_ap == "ap1" and record.to_ap == "ap2"
    assert record.duration_us is not None and record.duration_us > 0


def test_lost_stop_retransmitted_after_30ms():
    sim, coordinator, state, config = make_coordinator(drop_stops=1)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert state["stops"] == 2
    record = coordinator.history[0]
    assert record.retries == 1
    assert record.duration_us >= config.switch_timeout_us


def test_gives_up_after_retry_limit():
    sim, coordinator, state, config = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert coordinator.abandoned == 1
    assert not coordinator.busy("client0")
    assert state["stops"] == config.switch_retry_limit + 1
    assert coordinator.history[0].completed_us is None


def test_no_concurrent_switch_for_same_client():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    with pytest.raises(RuntimeError):
        coordinator.initiate("client0", "ap2", "ap1")


def test_switch_to_self_rejected():
    _, coordinator, _, _ = make_coordinator()
    with pytest.raises(ValueError):
        coordinator.initiate("client0", "ap1", "ap1")


def test_stale_ack_ignored():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    stale = AckMsg(client="client0", ap="ap2", switch_id=999)
    coordinator.on_ack(stale)
    assert coordinator.busy("client0")
    sim.run()
    assert not coordinator.busy("client0")


def test_different_clients_switch_concurrently():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    coordinator.initiate("client1", "ap1", "ap2")
    assert coordinator.busy("client0") and coordinator.busy("client1")
    sim.run()
    assert len(coordinator.completed_durations_us()) == 2


def test_on_complete_callback():
    sim, coordinator, _, _ = make_coordinator()
    done = []
    coordinator.on_complete = lambda record: done.append(record.to_ap)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert done == ["ap2"]
