"""Tests for the stop/start/ack switching protocol coordinator."""

import pytest

from repro.core.config import WgttConfig
from repro.core.switching import (
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_FAILED_OVER,
    AckMsg,
    StartMsg,
    SwitchCoordinator,
)
from repro.net.backhaul import EthernetBackhaul
from repro.sim import Simulator


def make_coordinator(drop_stops=0):
    """Coordinator wired to a fake AP pair on a real backhaul.

    ``drop_stops``: number of initial stop messages ap1 ignores, to
    exercise the 30 ms retransmission path.
    """
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig()
    coordinator = SwitchCoordinator(sim, backhaul, config)
    state = {"stops": 0, "starts": 0, "dropped": drop_stops}

    def ap1_handler(src, kind, payload):
        if kind != "stop":
            return
        state["stops"] += 1
        if state["dropped"] > 0:
            state["dropped"] -= 1
            return
        start = StartMsg(
            client=payload.client,
            index=123,
            switch_id=payload.switch_id,
            from_ap="ap1",
        )
        backhaul.send_control("ap1", payload.target_ap, "start", start)

    def ap2_handler(src, kind, payload):
        if kind != "start":
            return
        state["starts"] += 1
        ack = AckMsg(client=payload.client, ap="ap2", switch_id=payload.switch_id)
        backhaul.send_control("ap2", "controller", "ack", ack)

    def controller_handler(src, kind, payload):
        if kind == "ack":
            coordinator.on_ack(payload)

    backhaul.register("ap1", ap1_handler)
    backhaul.register("ap2", ap2_handler)
    backhaul.register("controller", controller_handler)
    return sim, coordinator, state, config


def test_three_step_switch_completes():
    sim, coordinator, state, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    assert coordinator.busy("client0")
    sim.run()
    assert not coordinator.busy("client0")
    assert state["stops"] == 1 and state["starts"] == 1
    assert len(coordinator.history) == 1
    record = coordinator.history[0]
    assert record.from_ap == "ap1" and record.to_ap == "ap2"
    assert record.duration_us is not None and record.duration_us > 0


def test_lost_stop_retransmitted_after_30ms():
    sim, coordinator, state, config = make_coordinator(drop_stops=1)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert state["stops"] == 2
    record = coordinator.history[0]
    assert record.retries == 1
    assert record.duration_us >= config.switch_timeout_us


def test_gives_up_after_retry_limit():
    sim, coordinator, state, config = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert coordinator.abandoned == 1
    assert not coordinator.busy("client0")
    assert state["stops"] == config.switch_retry_limit + 1
    assert coordinator.history[0].completed_us is None


def test_no_concurrent_switch_for_same_client():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    with pytest.raises(RuntimeError):
        coordinator.initiate("client0", "ap2", "ap1")


def test_switch_to_self_rejected():
    _, coordinator, _, _ = make_coordinator()
    with pytest.raises(ValueError):
        coordinator.initiate("client0", "ap1", "ap1")


def test_stale_ack_ignored():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    stale = AckMsg(client="client0", ap="ap2", switch_id=999)
    coordinator.on_ack(stale)
    assert coordinator.busy("client0")
    sim.run()
    assert not coordinator.busy("client0")


def test_different_clients_switch_concurrently():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    coordinator.initiate("client1", "ap1", "ap2")
    assert coordinator.busy("client0") and coordinator.busy("client1")
    sim.run()
    assert len(coordinator.completed_durations_us()) == 2


def test_on_complete_callback():
    sim, coordinator, _, _ = make_coordinator()
    done = []
    coordinator.on_complete = lambda record: done.append(record.to_ap)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert done == ["ap2"]


# ----------------------------------------------------------------------
# hardening: outcomes, abort, backoff, failover
# ----------------------------------------------------------------------


def test_completed_switch_records_outcome():
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert coordinator.history[0].outcome == OUTCOME_COMPLETED
    assert coordinator.history[0].failover is False


def test_retry_cap_enforced_with_outcome():
    """Retries are capped and exhaustion is a first-class outcome."""
    sim, coordinator, state, config = make_coordinator(drop_stops=100)
    aborted = []
    coordinator.on_abort = lambda record: aborted.append(record)
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert state["stops"] == config.switch_retry_limit + 1
    assert coordinator.abandoned == 1
    record = coordinator.history[0]
    assert record.outcome == OUTCOME_ABORTED
    assert record.abort_reason == "retry limit exhausted"
    assert aborted == [record]


def test_backoff_bounds():
    """Retry delays stay within [timeout, backoff cap] and never
    regress: the n-th delay is monotonically non-decreasing."""
    _, coordinator, _, config = make_coordinator()
    delays = [coordinator._retry_delay_us(n) for n in range(12)]
    assert delays[0] == config.switch_timeout_us  # first retry: full speed
    assert delays[1] == config.switch_timeout_us  # second too (common case)
    assert all(d >= config.switch_timeout_us for d in delays)
    assert all(d <= config.switch_backoff_max_us for d in delays)
    assert delays == sorted(delays)  # monotone
    assert delays[-1] == config.switch_backoff_max_us  # cap reached
    assert any(b > a for a, b in zip(delays, delays[1:]))  # actually grows


def test_abort_frees_slot_and_busy_clears():
    sim, coordinator, state, _ = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")
    assert coordinator.busy("client0")
    record = coordinator.abort("client0", reason="target died")
    assert record is not None
    assert not coordinator.busy("client0")
    assert record.outcome == OUTCOME_ABORTED
    assert record.abort_reason == "target died"
    assert coordinator.aborted == 1
    # the slot is genuinely free: a new switch can start immediately
    coordinator.initiate("client0", "ap1", "ap2")
    assert coordinator.busy("client0")
    # and the stopped retransmission timer stays stopped
    stops_before = state["stops"]
    sim.run(until_us=sim.now + 500_000)
    assert state["stops"] >= stops_before  # no crash; timer of aborted
    assert len([r for r in coordinator.history if r.outcome == OUTCOME_ABORTED])


def test_abort_nonexistent_switch_returns_none():
    _, coordinator, _, _ = make_coordinator()
    assert coordinator.abort("ghost") is None
    assert coordinator.aborted == 0


def test_abort_for_ap_kills_switches_touching_dead_ap():
    sim, coordinator, _, _ = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")  # ap2 is the target
    coordinator.initiate("client1", "ap2", "ap1")  # ap2 is the source
    coordinator.initiate("client2", "ap1", "ap3")  # untouched by ap2
    aborted = coordinator.abort_for_ap("ap2")
    assert {r.client for r in aborted} == {"client0", "client1"}
    assert not coordinator.busy("client0")
    assert not coordinator.busy("client1")
    assert coordinator.busy("client2")
    assert all("ap2" in r.abort_reason for r in aborted)


def test_failover_handshake_completes():
    """controller -> new AP -> ack, no stop/start leg (old AP is dead)."""
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig()
    coordinator = SwitchCoordinator(sim, backhaul, config)
    seen = {"failover": 0}

    def ap2_handler(src, kind, payload):
        if kind != "failover":
            return
        seen["failover"] += 1
        assert payload.dead_ap == "ap1"
        ack = AckMsg(
            client=payload.client, ap="ap2", switch_id=payload.switch_id
        )
        backhaul.send_control("ap2", "controller", "ack", ack)

    backhaul.register("ap1", lambda *a: None)  # dead: never answers
    backhaul.register("ap2", ap2_handler)
    backhaul.register(
        "controller",
        lambda src, kind, p: coordinator.on_ack(p) if kind == "ack" else None,
    )
    coordinator.initiate_failover("client0", "ap1", "ap2")
    assert coordinator.busy("client0")
    assert coordinator.pending_record("client0").failover is True
    sim.run()
    assert seen["failover"] == 1
    record = coordinator.history[0]
    assert record.outcome == OUTCOME_FAILED_OVER
    assert record.failover is True
    assert record.duration_us is not None


def test_failover_retries_failover_not_stop():
    """A lost failover message is retransmitted as failover."""
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig()
    coordinator = SwitchCoordinator(sim, backhaul, config)
    seen = {"failover": 0, "stop": 0, "drop": 1}

    def ap2_handler(src, kind, payload):
        if kind == "stop":
            seen["stop"] += 1
            return
        if kind != "failover":
            return
        seen["failover"] += 1
        if seen["drop"] > 0:
            seen["drop"] -= 1
            return
        ack = AckMsg(
            client=payload.client, ap="ap2", switch_id=payload.switch_id
        )
        backhaul.send_control("ap2", "controller", "ack", ack)

    backhaul.register("ap2", ap2_handler)
    backhaul.register(
        "controller",
        lambda src, kind, p: coordinator.on_ack(p) if kind == "ack" else None,
    )
    coordinator.initiate_failover("client0", "ap1", "ap2")
    sim.run()
    assert seen["failover"] == 2  # original + one retransmission
    assert seen["stop"] == 0  # never falls back to the stop leg
    record = coordinator.history[0]
    assert record.outcome == OUTCOME_FAILED_OVER
    assert record.retries == 1


# ----------------------------------------------------------------------
# adversary hardening: acks must be idempotent in every ordering
# ----------------------------------------------------------------------


def test_duplicate_ack_after_completion_is_noop():
    """Ordering 1: complete first, duplicate second.

    A duplicated ack arriving after its handshake completed must not
    mutate the finished record, reopen the slot, or grow history — it
    only bumps the stale_acks counter.
    """
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    assert len(coordinator.history) == 1
    record = coordinator.history[0]
    completed_us = record.completed_us
    switch_id = coordinator._next_switch_id - 1

    duplicate = AckMsg(client="client0", ap="ap2", switch_id=switch_id)
    coordinator.on_ack(duplicate)
    coordinator.on_ack(duplicate)  # and again: still a no-op

    assert coordinator.stale_acks == 2
    assert len(coordinator.history) == 1
    assert record.completed_us == completed_us  # never mutated twice
    assert record.outcome == OUTCOME_COMPLETED
    assert not coordinator.busy("client0")


def test_ack_after_abort_is_noop():
    """Ordering 2: abort first, late ack second.

    The ack for a switch aborted meanwhile (e.g. failover stole the
    slot) must not resurrect the aborted record or complete a
    handshake that no longer exists.
    """
    sim, coordinator, _, _ = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")
    switch_id = coordinator._next_switch_id - 1
    aborted = coordinator.abort("client0", reason="failover needs the slot")
    assert aborted.outcome == OUTCOME_ABORTED

    late = AckMsg(client="client0", ap="ap2", switch_id=switch_id)
    coordinator.on_ack(late)

    assert coordinator.stale_acks == 1
    assert not coordinator.busy("client0")
    assert len(coordinator.history) == 1
    assert coordinator.history[0].outcome == OUTCOME_ABORTED
    assert coordinator.history[0].completed_us is None

    # The slot is genuinely reusable after the late ack.
    coordinator.initiate("client0", "ap1", "ap2")
    assert coordinator.busy("client0")


def test_superseded_round_ack_does_not_complete_new_round():
    """An ack carrying an older switch_id than the pending round is
    stale: the live handshake keeps waiting for its own ack."""
    sim, coordinator, _, _ = make_coordinator(drop_stops=100)
    coordinator.initiate("client0", "ap1", "ap2")
    first_id = coordinator._next_switch_id - 1
    coordinator.abort("client0", reason="superseded")
    coordinator.initiate("client0", "ap1", "ap3")

    old_ack = AckMsg(client="client0", ap="ap2", switch_id=first_id)
    coordinator.on_ack(old_ack)

    assert coordinator.stale_acks == 1
    assert coordinator.busy("client0")  # the new round is untouched
    assert coordinator.pending_record("client0").to_ap == "ap3"


def test_stale_acks_survive_restore_but_not_checkpoint_bytes():
    """The counter is durable observability, not protocol state: a
    snapshot/restore round-trip preserves the in-memory value while
    the snapshot itself carries no stale_acks key (checkpoint bytes
    ride the backhaul and must not grow under ordinary retransmission
    races)."""
    sim, coordinator, _, _ = make_coordinator()
    coordinator.initiate("client0", "ap1", "ap2")
    sim.run()
    switch_id = coordinator._next_switch_id - 1
    coordinator.on_ack(AckMsg(client="client0", ap="ap2", switch_id=switch_id))
    assert coordinator.stale_acks == 1

    state = coordinator.snapshot()
    assert "stale_acks" not in state
    coordinator.restore(state)
    assert coordinator.stale_acks == 1
