"""Controller high availability: checkpoint round-trips, bit-identical
self-restore continuation, warm-standby failover, and the cyclic-queue
overload guardrails."""

import numpy as np
import pytest

from repro.channel.csi import CsiReport
from repro.core.assoc_sync import StaInfo
from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.core.cyclic_queue import CyclicQueue, IndexAllocator
from repro.faults.plan import ControllerCrash, FaultPlan
from repro.ha import (
    CHECKPOINT_VERSION,
    ControllerCheckpoint,
    checkpoint_controller,
    restore_controller,
)
from repro.metrics.recorder import FailoverAudit, HaAudit
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim import RngRegistry, Simulator
from repro.sim.engine import MS, SECOND


# ----------------------------------------------------------------------
# rig: a controller with rich, randomized state (no radio in the loop)
# ----------------------------------------------------------------------


def make_controller(**config_kw):
    sim = Simulator()
    backhaul = EthernetBackhaul(sim)
    config = WgttConfig(**config_kw)
    controller = WgttController(sim, backhaul, RngRegistry(1), config)
    sent = []
    for ap_id in ("ap0", "ap1", "ap2"):
        backhaul.register(
            ap_id,
            lambda src, kind, payload, ap=ap_id: sent.append(
                (ap, kind, payload)
            ),
        )
        controller.add_ap(ap_id)
    return sim, controller, sent


def feed(controller, sim, ap_id, esnr_db, client_id="client0", count=6):
    base = sim.now
    for i in range(count):
        controller._handle_csi(
            CsiReport(
                time_us=base + i * 1500,
                ap_id=ap_id,
                client_id=client_id,
                subcarrier_snr_db=np.full(56, esnr_db),
                rssi_dbm=-60.0,
            )
        )


def enrich(sim, controller, rng: np.random.Generator):
    """Drive the rig into a random-but-reproducible rich state:
    several clients, CSI windows, uplink dedup keys, an in-flight
    switch handshake (the fake APs never ack), and a failover retry."""
    n_clients = int(rng.integers(2, 5))
    for i in range(n_clients):
        controller.register_association(
            StaInfo(
                client=f"client{i}",
                associated_at_us=sim.now,
                first_ap="ap0",
            )
        )
    sim.run(until_us=sim.now + 50_000)
    for i in range(n_clients):
        for ap_id in ("ap0", "ap1", "ap2"):
            feed(
                controller,
                sim,
                ap_id,
                float(rng.uniform(5.0, 30.0)),
                client_id=f"client{i}",
                count=int(rng.integers(2, 7)),
            )
    # Uplink datagrams populate the dedup window.
    for i in range(int(rng.integers(3, 12))):
        controller._handle_uplink(
            Packet(
                "client0", "server", 200, protocol="udp", ip_id=int(i)
            )
        )
    # Downlink packets advance index cursors.
    for i in range(int(rng.integers(1, 6))):
        controller.accept_downlink(Packet("server", "client0", 1000))
    # Let a selection tick start a switch (never acked -> stays pending).
    sim.run(until_us=sim.now + 30_000)


# ----------------------------------------------------------------------
# checkpoint round-trip property
# ----------------------------------------------------------------------


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_round_trip_lossless(self, seed):
        """from_bytes(to_bytes(cp)) == cp over randomized rich states."""
        sim, controller, _ = make_controller()
        enrich(sim, controller, np.random.default_rng(seed))
        cp = checkpoint_controller(controller)
        clone = ControllerCheckpoint.from_bytes(cp.to_bytes())
        assert clone == cp
        assert clone.digest() == cp.digest()
        assert clone.to_bytes() == cp.to_bytes()

    def test_checkpoint_captures_every_store(self):
        sim, controller, _ = make_controller()
        enrich(sim, controller, np.random.default_rng(42))
        state = checkpoint_controller(controller).state
        for key in (
            "clients",
            "selection_deadlines",
            "retry_deadlines",
            "selector",
            "coordinator",
            "liveness",
            "dedup",
            "directory",
            "index_cursors",
            "ap_ids",
            "dead_aps",
            "last_heard",
            "pending_claims",
        ):
            assert key in state
        assert state["clients"]  # enrich registered clients
        assert state["dedup"]["keys"]  # uplinks populated the window
        assert state["index_cursors"]["client0"] > 0

    def test_restore_then_recheckpoint_is_identical(self):
        """Restore is lossless: checkpoint -> restore -> checkpoint
        yields byte-identical state at the same instant."""
        sim, controller, _ = make_controller()
        enrich(sim, controller, np.random.default_rng(7))
        cp1 = checkpoint_controller(controller)
        restore_controller(controller, cp1)
        cp2 = checkpoint_controller(controller)
        assert cp1.to_bytes() == cp2.to_bytes()

    def test_version_mismatch_refused(self):
        sim, controller, _ = make_controller()
        cp = checkpoint_controller(controller)
        bad = ControllerCheckpoint(
            version=CHECKPOINT_VERSION + 1,
            taken_at_us=cp.taken_at_us,
            controller_id=cp.controller_id,
            state=cp.state,
        )
        with pytest.raises(ValueError):
            restore_controller(controller, bad)


# ----------------------------------------------------------------------
# bit-identical self-restore continuation (testbed level)
# ----------------------------------------------------------------------


def _continuation_trace(restore_at_us):
    config = TestbedConfig(seed=11, scheme="wgtt", num_aps=4)
    testbed = build_testbed(config)
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
    source.start()
    testbed.run_until(restore_at_us)
    if restore_at_us:
        cp = checkpoint_controller(testbed.controller)
        clone = ControllerCheckpoint.from_bytes(cp.to_bytes())
        restore_controller(testbed.controller, clone)
    testbed.run_until(1_600_000)
    return (
        list(testbed.controller.serving_timeline),
        list(sink.arrivals),
        len(testbed.controller.coordinator.history),
    )


class TestBitIdenticalContinuation:
    def test_self_restore_continues_identically(self):
        """A controller restored from its own wire-serialized checkpoint
        produces the same subsequent event trace as one never touched."""
        baseline = _continuation_trace(restore_at_us=0)
        restored = _continuation_trace(restore_at_us=800_000)
        assert restored == baseline


# ----------------------------------------------------------------------
# warm-standby failover (testbed level)
# ----------------------------------------------------------------------


def _ha_testbed(plan=None, checkpoint_interval_ms=100, seed=3):
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        wgtt=WgttConfig(
            ha_enabled=True,
            checkpoint_interval_us=checkpoint_interval_ms * MS,
        ),
        fault_plan=plan,
    )
    return build_testbed(config)


class TestWarmStandbyFailover:
    def test_kill_promotes_and_recovers_within_budget(self):
        kill_us = 1 * SECOND
        plan = FaultPlan([ControllerCrash(at_us=kill_us, down_us=None)])
        testbed = _ha_testbed(plan)
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_until(kill_us + 250 * MS)
        audit = HaAudit(testbed)
        assert testbed.standby.promoted
        assert audit.clients_recovered()
        delivered_at_budget = len(sink.arrivals)
        testbed.run_seconds(1.0)
        summary = audit.summary()
        assert summary["promotion_latency_ms"] is not None
        assert summary["promotion_latency_ms"] <= 250.0
        assert summary["recovery_latency_ms"] <= 250.0
        # The data plane resumes through the promoted standby.
        assert len(sink.arrivals) > delivered_at_budget
        # Loss across the outage is explicit, never silent.
        assert summary["overflow_drops"] == 0
        assert sink.duplicates == 0
        assert summary["aps_rehomed"] == len(testbed.wgtt_aps)

    def test_no_promotion_without_crash(self):
        testbed = _ha_testbed()
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_seconds(1.5)
        assert not testbed.standby.promoted
        assert testbed.ha.checkpoints_shipped > 0
        assert testbed.active_controller() is testbed.controller

    def test_restarted_primary_stays_demoted(self):
        """A primary that reboots after the standby promoted must not
        steal the array back (split brain)."""
        kill_us = 1 * SECOND
        plan = FaultPlan(
            [ControllerCrash(at_us=kill_us, down_us=800 * MS)]
        )
        testbed = _ha_testbed(plan)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_seconds(2.5)
        assert testbed.standby.promoted
        assert testbed.controller.alive  # it did restart ...
        assert testbed.active_controller() is testbed.standby
        for ap in testbed.wgtt_aps.values():
            assert ap._controller_id == testbed.standby.controller_id

    def test_shipped_dedup_window_blocks_post_failover_duplicates(self):
        kill_us = 1 * SECOND
        plan = FaultPlan([ControllerCrash(at_us=kill_us, down_us=None)])
        testbed = _ha_testbed(plan, checkpoint_interval_ms=50)
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=2e6)
        source.start()
        uplink_sender, _ = testbed.add_uplink_tcp_flow(0)
        uplink_sender.start()
        testbed.run_seconds(2.5)
        assert testbed.standby.promoted
        audit = FailoverAudit(testbed)
        # The dedup window the checkpoint carried over is live on the
        # promoted standby; copies it recognises never reach the server.
        assert audit.post_restore_duplicates() >= 0
        assert audit.post_restore_duplicates() == (
            testbed.standby.dedup.duplicates
        )

    def test_checkpoint_cadence_follows_config(self):
        fast = _ha_testbed(checkpoint_interval_ms=25)
        slow = _ha_testbed(checkpoint_interval_ms=400)
        fast.run_seconds(1.2)
        slow.run_seconds(1.2)
        assert fast.ha.checkpoints_shipped > slow.ha.checkpoints_shipped


# ----------------------------------------------------------------------
# cyclic-queue overload guardrails
# ----------------------------------------------------------------------


class TestOverflowAccounting:
    def test_lapping_the_reader_is_counted(self):
        queue = CyclicQueue(size=8)
        for i in range(8):
            queue.insert(i, Packet("server", "c", 100))
        assert queue.overflow_drops == 0
        # Writer laps onto the (undelivered) head slot.
        queue.insert(0, Packet("server", "c", 100))
        assert queue.overflow_drops == 1
        assert queue.overwrites == 1

    def test_delivered_slots_overwrite_freely(self):
        queue = CyclicQueue(size=8)
        for i in range(4):
            queue.insert(i, Packet("server", "c", 100))
        for _ in range(4):
            queue.pop_head()
        # Next lap re-uses the drained slots: benign, not a drop.
        for i in range(4):
            queue.insert(i + 8, Packet("server", "c", 100))
        assert queue.overflow_drops == 0


class TestIndexAllocatorGuards:
    def test_skid_advances_every_cursor(self):
        alloc = IndexAllocator(size=4096)
        for _ in range(5):
            alloc.allocate("c0")
        alloc.allocate("c1")
        alloc.skid(256)
        assert alloc.peek("c0") == 5 + 256
        assert alloc.peek("c1") == 1 + 256

    def test_skid_wraps_modulo(self):
        alloc = IndexAllocator(size=16)
        for _ in range(10):
            alloc.allocate("c0")
        alloc.skid(10)
        assert alloc.peek("c0") == (10 + 10) % 16

    def test_fast_forward_only_moves_forward(self):
        alloc = IndexAllocator(size=4096)
        for _ in range(100):
            alloc.allocate("c0")
        assert alloc.fast_forward("c0", 150)  # ahead: moves
        assert alloc.peek("c0") == 150
        assert not alloc.fast_forward("c0", 150)  # equal: ignored
        assert not alloc.fast_forward("c0", 120)  # behind: ignored
        assert alloc.peek("c0") == 150
        # A wrapped ancient edge (>= half ring ahead) is ignored too.
        assert not alloc.fast_forward("c0", 150 + 2048)
        assert alloc.peek("c0") == 150

    def test_forget_client_frees_cursor(self):
        alloc = IndexAllocator()
        alloc.allocate("c0")
        alloc.allocate("c1")
        alloc.forget_client("c0")
        assert alloc.tracked_clients() == 1
        assert alloc.peek("c0") == 0  # fresh if it ever returns


class TestBackpressurePacing:
    def _register(self, controller, sim):
        controller.register_association(
            StaInfo(client="client0", associated_at_us=0, first_ap="ap0")
        )

    def test_signal_paces_and_releases_downlink(self):
        sim, controller, sent = make_controller()
        self._register(controller, sim)
        controller._handle_backpressure("ap0", ("client0", True))
        controller.accept_downlink(Packet("server", "client0", 1000))
        assert controller.stats["downlink_paced"] == 1
        assert controller.stats["downlink_accepted"] == 0
        controller._handle_backpressure("ap0", ("client0", False))
        controller.accept_downlink(Packet("server", "client0", 1000))
        assert controller.stats["downlink_accepted"] == 1

    def test_stale_signal_from_non_serving_ap_ignored(self):
        sim, controller, sent = make_controller()
        self._register(controller, sim)
        controller._handle_backpressure("ap1", ("client0", True))
        assert not controller._clients["client0"].paced
        controller.accept_downlink(Packet("server", "client0", 1000))
        assert controller.stats["downlink_accepted"] == 1

    def test_paced_drops_are_counted_never_silent(self):
        sim, controller, sent = make_controller()
        self._register(controller, sim)
        controller._handle_backpressure("ap0", ("client0", True))
        for _ in range(7):
            controller.accept_downlink(Packet("server", "client0", 1000))
        assert controller.stats["downlink_paced"] == 7
        data = [1 for _, kind, _ in sent if kind == "data"]
        assert not data
