"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("fig13", "tab01", "ablations"):
        assert key in out


def test_list_covers_every_registered_experiment(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert len([l for l in out.splitlines() if l.strip()]) == len(EXPERIMENTS)


def test_drive_tcp(capsys):
    code = main([
        "drive", "--scheme", "wgtt", "--speed", "15", "--seconds", "2",
        "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "switches" in out
    assert "timeouts" in out


def test_drive_udp(capsys):
    code = main([
        "drive", "--scheme", "baseline", "--protocol", "udp",
        "--seconds", "2", "--seed", "3", "--udp-rate-mbps", "10",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline / UDP" in out
    assert "timeouts" not in out


def test_experiment_table_output(capsys):
    code = main(["experiment", "tab01", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rate_mbps" in out and "mean_ms" in out


def test_experiment_json_output(capsys):
    code = main(["experiment", "fig10", "--json"])
    assert code == 0
    parsed = json.loads(capsys.readouterr().out)
    assert "overlaps_m" in parsed


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_drive_preset_shard_corridor(capsys):
    code = main([
        "drive", "--preset", "shard-corridor", "--protocol", "udp",
        "--seconds", "2", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "wgtt [shard-corridor] / UDP" in out


def test_drive_preset_two_ap(capsys):
    code = main([
        "drive", "--preset", "two-ap", "--seconds", "1", "--seed", "3",
    ])
    assert code == 0
    assert "[two-ap]" in capsys.readouterr().out


def test_drive_unknown_preset_rejected(capsys):
    code = main(["drive", "--preset", "nope", "--seconds", "1"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown preset" in err and "shard-corridor" in err
