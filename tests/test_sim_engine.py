"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import MS, SECOND, Simulator, Timer


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append("c"))
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(100, lambda n=name: fired.append(n))
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(250, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [250]
    assert sim.now == 250


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1 * MS, lambda: fired.append(1))
    sim.schedule(5 * MS, lambda: fired.append(5))
    sim.run(until_us=2 * MS)
    assert fired == [1]
    assert sim.now == 2 * MS
    sim.run()
    assert fired == [1, 5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(5, lambda: fired.append("second"))

    sim.schedule(10, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 15


def test_call_soon_runs_after_pending_same_time_events():
    sim = Simulator()
    fired = []

    def outer():
        sim.call_soon(lambda: fired.append("soon"))
        fired.append("outer")

    sim.schedule(10, outer)
    sim.run()
    assert fired == ["outer", "soon"]


def test_stop_aborts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2, lambda: fired.append(2))
    sim.run()
    assert fired == [(1, None)] or fired[0] == 1
    assert len(fired) == 1
    # remaining event still pending
    assert sim.pending_events() == 1


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(10, lambda: None)
    drop = sim.schedule(20, lambda: None)
    drop.cancel()
    assert sim.pending_events() == 1
    assert keep.active


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_second_and_ms_constants():
    assert SECOND == 1_000_000
    assert MS == 1_000


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        sim.run()
        assert fired == [500]

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        timer.start(900)
        sim.run()
        assert fired == [900]

    def test_stop_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_armed_reflects_state(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(10)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_timer_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: None)

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(100)

        timer._callback = on_fire
        timer.start(100)
        sim.run()
        assert fired == [100, 200, 300]
