"""Integration tests for the WGTT controller + AP protocol suite,
running on the full testbed."""


from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import MS


def make_wgtt(seed=3, speed=0.0, start_x=9.5, **config_kw):
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        client_speeds_mph=[speed],
        client_start_x_m=start_x,
        **config_kw,
    )
    return build_testbed(config)


class TestAssociation:
    def test_instant_association_installs_everywhere(self):
        testbed = make_wgtt()
        assert testbed.controller.serving_ap("client0") == "ap0"
        for ap in testbed.wgtt_aps.values():
            assert ap.directory.is_associated("client0")
        assert testbed.wgtt_aps["ap0"].is_serving("client0")

    def test_over_the_air_association(self):
        config = TestbedConfig(
            seed=3,
            scheme="wgtt",
            client_speeds_mph=[0.0],
            client_start_x_m=9.5,
            instant_association=False,
        )
        testbed = build_testbed(config)
        client = testbed.clients[0]
        client.device.send_mgmt("assoc-req", config.wgtt.bssid)
        testbed.run_seconds(1.0)
        assert testbed.controller.serving_ap("client0") is not None
        admitted = sum(
            1
            for ap in testbed.wgtt_aps.values()
            if ap.directory.is_associated("client0")
        )
        assert admitted == len(testbed.wgtt_aps)

    def test_unassociated_downlink_dropped(self):
        config = TestbedConfig(
            seed=3, scheme="wgtt", instant_association=False,
            client_speeds_mph=[0.0],
        )
        testbed = build_testbed(config)
        from repro.net.packet import Packet

        testbed.controller.accept_downlink(Packet("server", "client0", 100))
        assert testbed.controller.stats["downlink_unassociated"] == 1


class TestDownlinkFanout:
    def test_fanout_covers_candidates_and_serving(self):
        testbed = make_wgtt(start_x=13.75)  # between ap0 and ap1
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(2.0)
        ap0 = testbed.wgtt_aps["ap0"]
        ap1 = testbed.wgtt_aps["ap1"]
        # both neighbours held copies in their cyclic queues
        assert ap0.cyclic_queue("client0").occupancy() + ap0.stats["csi_reports"] > 0
        inserted_ap1 = (
            ap1.cyclic_queue("client0").occupancy()
            + ap1.cyclic_queue("client0").head
        )
        assert inserted_ap1 > 0

    def test_downlink_delivery_end_to_end(self):
        testbed = make_wgtt()
        sender, receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        assert sender.throughput_mbps(testbed.sim.now) > 3.0
        # acks may still be in flight at snapshot time
        assert receiver.rcv_nxt >= sender.snd_una


class TestSwitching:
    def test_moving_client_triggers_switches(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(6.0)
        history = testbed.controller.coordinator.history
        assert len(history) >= 3
        # switches move forward along the road on balance
        first, last = history[0], history[-1]
        assert int(last.to_ap[2:]) > int(first.to_ap[2:])

    def test_switch_durations_in_table1_band(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=40e6)
        source.start()
        testbed.run_seconds(6.0)
        durations = testbed.controller.switch_durations_ms()
        assert durations
        mean = sum(durations) / len(durations)
        assert 10.0 < mean < 25.0  # paper: 17-21 ms

    def test_hysteresis_respected(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=40e6)
        source.start()
        testbed.run_seconds(6.0)
        starts = [r.started_us for r in testbed.controller.coordinator.history]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        hysteresis = testbed.config.wgtt.time_hysteresis_us
        assert all(g >= hysteresis - 5 * MS for g in gaps)

    def test_sequence_space_continues_across_switch(self):
        """After stop/start the incoming AP adopts k as its next MAC
        seq, so the client's reorder state stays valid (the shared
        block-ACK state contribution)."""
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        sender, receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(6.0)
        assert len(testbed.controller.coordinator.history) >= 2
        # TCP made continuous forward progress through the switches
        assert sender.snd_una > 1000
        client = testbed.clients[0]
        reorder = client.device.reorder_buffer(testbed.config.wgtt.bssid)
        serving = testbed.controller.serving_ap("client0")
        session = testbed.wgtt_aps[serving].device.session("client0")
        from repro.mac.frames import seq_distance

        # client's expectation within one BA window of the serving AP
        gap = seq_distance(reorder.next_expected, session.scoreboard.next_seq)
        assert gap < 512


class TestUplinkDiversityAndDedup:
    def test_duplicates_removed_at_controller(self):
        testbed = make_wgtt(start_x=11.0)  # in-cell, neighbours overhear
        source, sink = testbed.add_uplink_udp_flow(0, rate_bps=5e6)
        source.start()
        testbed.run_seconds(3.0)
        dedup = testbed.controller.dedup
        assert dedup.accepted > 100
        # the server saw no duplicates even if APs forwarded extras
        assert sink.duplicates == 0

    def test_csi_reports_flow_to_controller(self):
        testbed = make_wgtt()
        source, _ = testbed.add_uplink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_seconds(2.0)
        assert testbed.controller.stats["csi_reports"] > 50


class TestBaForwarding:
    def test_overheard_bas_forwarded_and_applied(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(8.0)
        forwarded = sum(
            ap.stats["ba_forwarded"] for ap in testbed.wgtt_aps.values()
        )
        applied = sum(
            ap.stats["ba_forward_applied"] for ap in testbed.wgtt_aps.values()
        )
        assert forwarded > 0
        assert applied >= 0  # applied when the serving AP missed the BA

    def test_duplicate_forwarded_bas_dropped(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(8.0)
        dupes = sum(
            ap.stats["ba_forward_duplicate"] for ap in testbed.wgtt_aps.values()
        )
        assert dupes >= 0  # machinery exercised without error


class TestNicDrain:
    def test_stopped_ap_goes_silent_after_drain(self):
        testbed = make_wgtt(speed=15.0, start_x=6.0)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=40e6)
        source.start()
        testbed.run_seconds(4.0)
        # every non-serving AP session must be drained/off by now
        serving = testbed.controller.serving_ap("client0")
        for ap_id, ap in testbed.wgtt_aps.items():
            session = ap.device._sessions.get("client0")
            if session is None or ap_id == serving:
                continue
            if ap.stats["stops_handled"] > 0:
                assert session.mode in ("off", "drain")
                if session.mode == "off":
                    assert session.scoreboard.in_flight() == 0
