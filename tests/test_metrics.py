"""Tests for the metrics layer: stats helpers, accuracy, capacity."""

import math

import pytest

from repro.metrics.capacity import selector_capacity_loss_mbps
from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    std,
    summarize,
)


class TestStats:
    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 50) == pytest.approx(50)
        assert percentile(values, 90) == pytest.approx(90)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_mean_std_median(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)
        assert std([2, 4]) == pytest.approx(math.sqrt(2))
        assert std([5]) == 0.0
        assert median([5, 1, 9]) == 5

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summarize([])["n"] == 0


class TestSelectorCapacityLoss:
    def make_traces(self, flip_period_us=500_000, duration_us=4_000_000):
        """Two APs alternating which one is good."""
        esnr, rate = {"ap1": [], "ap2": []}, {"ap1": [], "ap2": []}
        for t in range(0, duration_us, 2_000):
            phase = (t // flip_period_us) % 2
            good, bad = ("ap1", "ap2") if phase == 0 else ("ap2", "ap1")
            esnr[good].append((t, 25.0))
            esnr[bad].append((t, 5.0))
            rate[good].append((t, 60e6))
            rate[bad].append((t, 5e6))
        return esnr, rate

    def test_small_window_tracks_flips(self):
        esnr, rate = self.make_traces()
        loss = selector_capacity_loss_mbps(esnr, rate, window_us=10_000)
        assert loss < 2.0  # near-zero: always on the good AP

    def test_huge_window_lags_flips(self):
        esnr, rate = self.make_traces()
        small = selector_capacity_loss_mbps(esnr, rate, window_us=10_000)
        huge = selector_capacity_loss_mbps(esnr, rate, window_us=900_000)
        assert huge > small + 3.0  # lags each flip by ~half a window

    def test_empty_trace(self):
        assert selector_capacity_loss_mbps({}, {}, window_us=10_000) == 0.0


class TestMetersOnTestbed:
    def test_accuracy_meter_static_served_by_best(self):
        from repro.metrics.accuracy import SwitchingAccuracyMeter
        from repro.scenarios.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(
                seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                client_start_x_m=10.0,  # parked on ap0's boresight
            )
        )
        meter = SwitchingAccuracyMeter(testbed, sample_period_us=50_000)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(4.0)
        # parked at a boresight: the serving AP is the oracle-best AP
        # nearly always (rare deep fades can flip an instant sample)
        assert meter.accuracy() > 0.8
        assert len(meter.samples) >= 70

    def test_capacity_meter_low_loss_at_boresight(self):
        from repro.metrics.capacity import CapacityLossMeter
        from repro.scenarios.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(
                seed=3, scheme="wgtt", client_speeds_mph=[0.0],
                client_start_x_m=10.0,
            )
        )
        meter = CapacityLossMeter(testbed, sample_period_us=50_000)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(3.0)
        meter.stop()
        assert meter.mean_best_mbps() > 20.0
        assert meter.mean_loss_mbps() < meter.mean_best_mbps() * 0.4
