"""Tests for the median-ESNR AP selector."""

import pytest

from repro.core.selection import ApSelector


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        ApSelector(0)


def test_median_of_window():
    selector = ApSelector(10_000)
    for t, esnr in [(0, 10.0), (1000, 30.0), (2000, 20.0)]:
        selector.record("c", "ap1", t, esnr)
    assert selector.median_esnr("c", "ap1", 2000) == 20.0


def test_old_readings_pruned():
    selector = ApSelector(10_000)
    selector.record("c", "ap1", 0, 25.0)
    assert selector.median_esnr("c", "ap1", 5_000) == 25.0
    assert selector.median_esnr("c", "ap1", 20_000) is None


def test_best_ap_picks_max_median():
    selector = ApSelector(10_000)
    for t in range(0, 10_000, 2_000):
        selector.record("c", "ap1", t, 12.0)
        selector.record("c", "ap2", t, 18.0)
    assert selector.best_ap("c", 9_000) == "ap2"


def test_median_rides_out_single_outlier():
    """The paper's argument for the median: one fading fluke must not
    flip the decision."""
    selector = ApSelector(10_000)
    for t in range(0, 10_000, 2_000):
        selector.record("c", "ap1", t, 20.0)
        selector.record("c", "ap2", t, 15.0)
    selector.record("c", "ap2", 9_500, 40.0)  # one lucky spike
    assert selector.best_ap("c", 9_900) == "ap1"


def test_incumbent_wins_ties_and_margin():
    selector = ApSelector(10_000)
    selector.record("c", "ap1", 0, 20.0)
    selector.record("c", "ap2", 0, 20.5)
    assert (
        selector.best_ap("c", 1000, incumbent="ap1", margin_db=1.0) == "ap1"
    )
    assert (
        selector.best_ap("c", 1000, incumbent="ap1", margin_db=0.0) == "ap2"
    )


def test_no_readings_returns_incumbent():
    selector = ApSelector(10_000)
    assert selector.best_ap("c", 1000, incumbent="ap3") == "ap3"
    assert selector.best_ap("c", 1000) is None


def test_candidates_are_fanout_set():
    selector = ApSelector(10_000)
    selector.record("c", "ap1", 0, 10.0)
    selector.record("c", "ap2", 5_000, 10.0)
    assert set(selector.candidates("c", 6_000)) == {"ap1", "ap2"}
    assert set(selector.candidates("c", 12_000)) == {"ap2"}


def test_clients_are_independent():
    selector = ApSelector(10_000)
    selector.record("c1", "ap1", 0, 30.0)
    selector.record("c2", "ap2", 0, 30.0)
    assert selector.best_ap("c1", 100) == "ap1"
    assert selector.best_ap("c2", 100) == "ap2"


def test_forget_client():
    selector = ApSelector(10_000)
    selector.record("c", "ap1", 0, 30.0)
    selector.forget_client("c")
    assert selector.best_ap("c", 100) is None


def test_forget_ap_removes_every_clients_window():
    """A dead AP must stop competing immediately — its CSI may be only
    microseconds old — and its windows must be freed (the unbounded
    per-AP growth fix)."""
    selector = ApSelector(10_000)
    selector.record("c1", "ap1", 0, 30.0)
    selector.record("c1", "ap2", 0, 20.0)
    selector.record("c2", "ap1", 0, 25.0)
    selector.forget_ap("ap1")
    # ap1 no longer wins for anyone, even with fresh high readings
    assert selector.best_ap("c1", 100) == "ap2"
    assert selector.best_ap("c2", 100) is None
    assert "ap1" not in selector.candidates("c1", 100)
    # c2 held only ap1: its per-client dict is freed entirely
    assert "c2" not in selector._readings


def test_forget_ap_unknown_is_noop():
    selector = ApSelector(10_000)
    selector.record("c", "ap1", 0, 30.0)
    selector.forget_ap("ghost")
    assert selector.best_ap("c", 100) == "ap1"


def test_incumbent_without_readings_can_lose():
    """If the incumbent fell silent (left the fan-out), any AP with
    readings wins regardless of margin."""
    selector = ApSelector(10_000)
    selector.record("c", "ap2", 9_000, 8.0)
    assert (
        selector.best_ap("c", 9_500, incumbent="ap1", margin_db=5.0) == "ap2"
    )
