"""Equivalence tests for the hot-path fast paths.

Every performance optimisation in this PR ships with the reference
implementation it replaced, and this module holds the two to each
other:

* the LUT-based effective SNR must track the closed-form scipy version
  within 0.05 dB everywhere in the 0–45 dB operating range;
* the incrementally maintained selection window must produce *exactly*
  the ``sorted(window)[n // 2]`` median of the naive implementation,
  element for element, over randomized insert/expire sequences;
* the parallel grid runner must return byte-identical results for
  ``jobs=1`` and ``jobs=2``;
* a full testbed drive with the batched PHY/channel fast path
  (``batch_phy=True``) must be bit-identical to the scalar path —
  same throughput, same goodput series, same switch count;
* the selector must hold its memory bound (no dead series) over long
  multi-client runs;
* the engine's compacted heap must behave exactly like the lazy one.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.selection import ApSelector
from repro.experiments.runner import run_grid
from repro.phy.ber import BER_BY_MODULATION
from repro.phy.esnr import (
    effective_snr_db,
    effective_snr_db_exact,
    mean_ber,
    mean_ber_exact,
)
from repro.sim.engine import Simulator

#: The equivalence bound the LUT is held to (dB), everywhere in range.
LUT_TOLERANCE_DB = 0.05


# ----------------------------------------------------------------------
# LUT vs closed form
# ----------------------------------------------------------------------


class TestLutEquivalence:
    def test_flat_channels_across_operating_range(self):
        """Flat channels sweep the whole 0–45 dB range in 0.1 dB steps."""
        worst = 0.0
        for snr in np.arange(0.0, 45.0, 0.1):
            channel = np.full(56, snr)
            err = abs(effective_snr_db(channel) - effective_snr_db_exact(channel))
            worst = max(worst, err)
        assert worst <= LUT_TOLERANCE_DB

    def test_faded_channels(self):
        """Rayleigh-like spreads around every mean in the range."""
        rng = np.random.default_rng(7)
        worst = 0.0
        for mean_db in range(0, 46, 3):
            for _ in range(20):
                spread = rng.exponential(1.0, 56)
                channel = mean_db + 10.0 * np.log10(
                    np.maximum(spread, 1e-6)
                )
                err = abs(
                    effective_snr_db(channel) - effective_snr_db_exact(channel)
                )
                worst = max(worst, err)
        assert worst <= LUT_TOLERANCE_DB

    @pytest.mark.parametrize("modulation", sorted(BER_BY_MODULATION))
    def test_all_modulations(self, modulation):
        rng = np.random.default_rng(11)
        for _ in range(50):
            channel = rng.uniform(-5.0, 50.0, 56)
            fast = effective_snr_db(channel, modulation)
            exact = effective_snr_db_exact(channel, modulation)
            assert fast == pytest.approx(exact, abs=LUT_TOLERANCE_DB)

    @pytest.mark.parametrize("modulation", sorted(BER_BY_MODULATION))
    def test_mean_ber_tracks_closed_form(self, modulation):
        rng = np.random.default_rng(13)
        for gain_db in (0.0, 2.0, 5.0):
            channel = rng.uniform(0.0, 35.0, 56)
            fast = mean_ber(channel, modulation, gain_db)
            exact = mean_ber_exact(channel, modulation, gain_db)
            # BERs span decades; compare in the log domain where the
            # 0.05 dB SNR bound lives.
            if exact > 1e-12:
                assert fast == pytest.approx(exact, rel=0.15)
            else:
                assert fast <= 1e-11

    def test_saturation_matches(self):
        """At very high SNR the mean BER hits the inversion floor; both
        implementations must saturate at the same point (and below the
        45 dB cap)."""
        hot = effective_snr_db(np.full(56, 59.0))
        hotter = effective_snr_db(np.full(56, 80.0))
        assert hot == hotter  # saturated
        assert hot == pytest.approx(
            effective_snr_db_exact(np.full(56, 59.0)), abs=LUT_TOLERANCE_DB
        )
        assert hot <= 45.0

    def test_monotone_under_uniform_boost(self):
        """ESNR must stay monotone in a uniform SNR boost (ranking
        safety: the selector compares ESNRs)."""
        rng = np.random.default_rng(17)
        base = rng.uniform(5.0, 20.0, 56)
        values = [effective_snr_db(base + boost) for boost in np.arange(0, 25, 0.5)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


# ----------------------------------------------------------------------
# incremental median vs sorted reference
# ----------------------------------------------------------------------


class _ReferenceSelector:
    """The seed's O(n log n) implementation, kept verbatim as an oracle."""

    def __init__(self, window_us: int = 10_000, metric: str = "median"):
        self.window_us = window_us
        self.metric = metric
        self._readings = {}

    def record(self, client_id, ap_id, time_us, esnr_db):
        per_client = self._readings.setdefault(client_id, {})
        series = per_client.setdefault(ap_id, [])
        series.append((time_us, esnr_db))
        horizon = time_us - self.window_us
        per_client[ap_id] = [(t, v) for t, v in series if t >= horizon]

    def median_esnr(self, client_id, ap_id, now_us):
        series = self._readings.get(client_id, {}).get(ap_id, [])
        horizon = now_us - self.window_us
        values = [v for t, v in series if t >= horizon]
        if not values:
            return None
        if self.metric == "median":
            return sorted(values)[len(values) // 2]
        if self.metric == "latest":
            return values[-1]
        import math

        return math.fsum(values) / len(values)

    def best_ap(self, client_id, now_us, incumbent=None, margin_db=0.0):
        per_client = self._readings.get(client_id, {})
        best_ap, best_value, incumbent_value = None, 0.0, None
        for ap_id in per_client:
            value = self.median_esnr(client_id, ap_id, now_us)
            if value is None:
                continue
            if best_ap is None or value > best_value:
                best_ap, best_value = ap_id, value
            if ap_id == incumbent:
                incumbent_value = value
        if best_ap is None:
            return incumbent
        if (
            incumbent is not None
            and incumbent_value is not None
            and best_ap != incumbent
            and best_value < incumbent_value + margin_db
        ):
            return incumbent
        return best_ap


@pytest.mark.parametrize("metric", ["median", "mean", "latest"])
def test_incremental_window_matches_sorted_reference(metric):
    """Randomized insert/expire sequences: the incremental statistic
    equals the naive recompute exactly (not approximately — ``==``)."""
    rng = random.Random(42)
    fast = ApSelector(window_us=5_000, metric=metric)
    ref = _ReferenceSelector(window_us=5_000, metric=metric)
    aps = ["ap0", "ap1", "ap2"]
    now = 0
    for _ in range(2_000):
        now += rng.randrange(1, 800)
        ap = rng.choice(aps)
        value = rng.uniform(0.0, 40.0)
        fast.record("c", ap, now, value)
        ref.record("c", ap, now, value)
        probe_ap = rng.choice(aps)
        assert fast.median_esnr("c", probe_ap, now) == ref.median_esnr(
            "c", probe_ap, now
        )


def test_incremental_best_ap_matches_reference():
    rng = random.Random(99)
    fast = ApSelector(window_us=10_000)
    ref = _ReferenceSelector(window_us=10_000)
    aps = [f"ap{i}" for i in range(5)]
    now, incumbent = 0, None
    for _ in range(1_500):
        now += rng.randrange(50, 2_000)
        for ap in aps:
            if rng.random() < 0.6:
                value = rng.uniform(5.0, 35.0)
                fast.record("c", ap, now, value)
                ref.record("c", ap, now, value)
        choice_fast = fast.best_ap("c", now, incumbent, margin_db=1.0)
        choice_ref = ref.best_ap("c", now, incumbent, margin_db=1.0)
        assert choice_fast == choice_ref
        incumbent = choice_fast


def test_selector_memory_stays_bounded():
    """Satellite (a): a long many-client run must not accumulate dead
    series — windows that prune to empty are dropped, and so are the
    per-client dicts."""
    selector = ApSelector(window_us=10_000)
    for step in range(50_000):
        now = step * 500
        client = f"c{step % 40}"
        ap = f"ap{step % 8}"
        selector.record(client, ap, now, 20.0)
        selector.candidates(client, now)
    # Pruning is lazy per queried client, so each client may retain its
    # most recent (not-yet-re-queried) series — but the total must stay
    # O(clients × live APs), NOT O(total records).  50 000 records and
    # 320 distinct (client, AP) pairs collapse to ≤ 1 live series per
    # client here (each client round-robins one AP per window).
    assert selector.series_count() <= 40

    # Fully expire everything via queries far in the future.
    far = 50_000 * 500 + 10_000_000
    for i in range(40):
        selector.candidates(f"c{i}", far)
    assert selector.series_count() == 0


def test_forget_client_drops_all_series():
    selector = ApSelector()
    for ap in ("a", "b", "c"):
        selector.record("client", ap, 1_000, 25.0)
    assert selector.series_count("client") == 3
    selector.forget_client("client")
    assert selector.series_count("client") == 0
    assert selector.best_ap("client", 1_500) is None
    selector.forget_client("client")  # idempotent


# ----------------------------------------------------------------------
# grid runner determinism
# ----------------------------------------------------------------------


def _parity_cell(seed: int, scale: float) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "seed": seed,
        "value": float(rng.standard_normal() * scale),
        "series": [float(x) for x in rng.standard_normal(4)],
    }


def test_run_grid_parallel_matches_serial(monkeypatch):
    # run_grid clamps workers to the core count; force the clamp open so
    # the real executor path is exercised even on a single-core box.
    from repro.experiments import runner

    monkeypatch.setattr(runner, "available_jobs", lambda: 4)
    grid = [(seed, scale) for seed in (3, 7, 11) for scale in (1.0, 2.5)]
    serial = run_grid(_parity_cell, grid, jobs=1)
    parallel = run_grid(_parity_cell, grid, jobs=2)
    assert serial == parallel  # byte-identical, in grid order


def test_run_grid_preserves_grid_order(monkeypatch):
    from repro.experiments import runner

    monkeypatch.setattr(runner, "available_jobs", lambda: 4)
    results = run_grid(_parity_cell, [(9, 1.0), (1, 1.0), (5, 1.0)], jobs=2)
    assert [r["seed"] for r in results] == [9, 1, 5]


def test_run_grid_empty_grid():
    assert run_grid(_parity_cell, [], jobs=4) == []


# ----------------------------------------------------------------------
# batched PHY/channel fast path vs scalar path
# ----------------------------------------------------------------------


def _drive_fingerprint(batch_phy: bool, scheme: str, protocol: str):
    """Run a short bulk-download drive and collapse it to the values a
    numerics change could not leave unchanged."""
    from repro.apps.bulk import run_bulk_download
    from repro.phy.per import reset_phy_memos
    from repro.scenarios.testbed import TestbedConfig

    reset_phy_memos()
    result = run_bulk_download(
        TestbedConfig(
            seed=5,
            scheme=scheme,
            client_speeds_mph=[20.0],
            batch_phy=batch_phy,
        ),
        protocol=protocol,
        duration_s=1.5,
        udp_rate_bps=50e6,
    )
    return (
        result.throughput_mbps,
        tuple(result.goodput_series_mbps),
        result.tcp_timeouts,
        result.switch_count,
    )


class TestBatchedPhyEquivalence:
    """``batch_phy=True`` must be bit-identical to ``batch_phy=False``.

    The batched medium reorders *computation* (fused fading evolution,
    stacked LUT gathers, preamble prewarm) but may not change a single
    RNG draw or float — these drives cover UL/DL data, block-acks, CSI
    fan-out, controller probes and interference, under both schemes and
    transports.
    """

    @pytest.mark.parametrize("protocol", ["tcp", "udp"])
    def test_wgtt_drive_bit_identical(self, protocol):
        assert _drive_fingerprint(True, "wgtt", protocol) == _drive_fingerprint(
            False, "wgtt", protocol
        )

    def test_baseline_drive_bit_identical(self):
        assert _drive_fingerprint(True, "baseline", "tcp") == _drive_fingerprint(
            False, "baseline", "tcp"
        )


# ----------------------------------------------------------------------
# engine heap compaction
# ----------------------------------------------------------------------


def test_compaction_preserves_firing_order():
    """Cancel enough to trigger compaction mid-stream, then verify the
    survivors fire in exactly (time, FIFO-among-equals) order."""
    sim = Simulator()
    fired = []
    handles = []
    for i in range(300):
        # Lots of duplicate timestamps to stress FIFO-among-equals.
        t = 1_000 + (i % 10) * 10
        handles.append(sim.schedule_at(t, lambda i=i: fired.append(i)))
    for i, handle in enumerate(handles):
        if i % 4 != 0:
            handle.cancel()
    assert sim.compactions >= 1
    assert sim.pending_events() == len([i for i in range(300) if i % 4 == 0])
    sim.run()
    expected = sorted(
        (i for i in range(300) if i % 4 == 0),
        key=lambda i: (1_000 + (i % 10) * 10, i),
    )
    assert fired == expected


def test_pending_events_is_exact_through_cancel_and_fire():
    sim = Simulator()
    handles = [sim.schedule(100 + i, lambda: None) for i in range(50)]
    assert sim.pending_events() == 50
    for h in handles[:20]:
        h.cancel()
        h.cancel()  # double-cancel must not double-count
    assert sim.pending_events() == 30
    while sim.step():
        pass
    assert sim.pending_events() == 0
    handles[-1].cancel()  # cancel-after-fire must not underflow
    assert sim.pending_events() == 0


def test_compaction_keeps_queue_near_live_size():
    sim = Simulator()
    live = []
    for i in range(5_000):
        handle = sim.schedule(10_000 + i, lambda: None)
        live.append(handle)
        if len(live) > 20:
            live.pop(0).cancel()
    # 4 980 cancellations against 20 live events: without compaction the
    # physical heap would hold 5 000 entries.
    assert sim.pending_events() == 20
    assert sim.queue_size() < 200
    assert sim.compactions > 0
