"""Tests for the Enhanced/stock 802.11r baseline components."""


from repro.baselines import RoamingConfig, stock_80211r_config
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND


def make_baseline(seed=3, speed=0.0, start_x=9.0, **roaming_kw):
    config = TestbedConfig(
        seed=seed,
        scheme="baseline",
        client_speeds_mph=[speed],
        client_start_x_m=start_x,
        roaming=RoamingConfig(**roaming_kw) if roaming_kw else RoamingConfig(),
    )
    return build_testbed(config)


class TestRoamingConfig:
    def test_stock_config_requires_5s_history(self):
        assert stock_80211r_config().min_history_us == 5 * SECOND

    def test_enhanced_decides_immediately(self):
        assert RoamingConfig().min_history_us == 0


class TestWlcRouting:
    def test_downlink_follows_association(self):
        testbed = make_baseline()
        assert testbed.wlc.route_for("client0") == "ap0"

    def test_unrouted_downlink_counted(self):
        testbed = make_baseline()
        from repro.net.packet import Packet

        testbed.wlc.accept_downlink(Packet("server", "ghost", 100))
        assert testbed.wlc.stats["downlink_unrouted"] == 1


class TestBaselineDataPath:
    def test_static_client_receives_tcp(self):
        testbed = make_baseline(start_x=9.5)
        sender, receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(3.0)
        assert sender.throughput_mbps(testbed.sim.now) > 3.0
        # acks may still be in flight at snapshot time
        assert receiver.rcv_nxt >= sender.snd_una

    def test_uplink_single_path(self):
        testbed = make_baseline(start_x=9.5)
        source, sink = testbed.add_uplink_udp_flow(0, rate_bps=2e6)
        source.start()
        testbed.run_seconds(3.0)
        assert sink.packets_received() > 100

    def test_backlog_strands_at_old_ap(self):
        """When the client moves on, packets buffered at the old AP
        stay there, burning retries — §2's critique."""
        testbed = make_baseline(start_x=9.5)
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=40e6)
        source.start()
        testbed.run_seconds(1.0)
        ap0 = testbed.baseline_aps["ap0"]
        assert ap0.backlog("client0") > 0
        # teleport the client away by switching its association
        agent = testbed.clients[0].agent
        agent.current_ap = "ap5"
        testbed.wlc._route["client0"] = "ap5"
        before = ap0.device.stats["ba_timeouts"]
        testbed.run_seconds(1.0)
        # old AP kept (unsuccessfully) trying to drain its backlog
        assert ap0.device.stats["ba_timeouts"] > before


class TestRoamingAgent:
    def test_client_roams_as_it_drives(self):
        testbed = make_baseline(speed=15.0, start_x=6.0)
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        testbed.run_seconds(8.0)
        agent = testbed.clients[0].agent
        visited = [ap for _, ap in agent.association_log]
        assert len(set(visited)) >= 3  # crossed several cells

    def test_hysteresis_limits_switch_rate(self):
        testbed = make_baseline(speed=15.0, start_x=6.0)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=10e6)
        source.start()
        duration_s = 8.0
        testbed.run_seconds(duration_s)
        agent = testbed.clients[0].agent
        # Distinct-AP moves are rate-limited by the 1 s hysteresis;
        # failed-handover fallbacks may add a couple of extra entries.
        entries = [ap for _, ap in agent.association_log]
        moves = sum(1 for a, b in zip(entries, entries[1:]) if a != b)
        assert moves <= duration_s / 1.0 + 3

    def test_stock_client_fails_at_speed(self):
        """The §2 result: stock 802.11r needs a 5 s history, longer
        than a 20 mph client spends in a picocell — the handover never
        happens in the first cells."""
        config = TestbedConfig(
            seed=3,
            scheme="baseline",
            num_aps=2,
            client_speeds_mph=[20.0],
            roaming=stock_80211r_config(),
        )
        testbed = build_testbed(config)
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=20e6)
        source.start()
        testbed.run_seconds(
            min(testbed.transit_duration_us() / SECOND, 10.0)
        )
        agent = testbed.clients[0].agent
        assert len(agent.association_log) <= 1  # never left AP0

    def test_rssi_smoothing(self):
        testbed = make_baseline(start_x=9.5)
        testbed.run_seconds(2.0)
        agent = testbed.clients[0].agent
        rssi = agent.rssi_of("ap0")
        assert rssi is not None and -90 < rssi < -40

    def test_ft_over_ds_failure_falls_back(self):
        """If the FT request can't reach the dying current AP, the
        client retries with a direct association to the target."""
        testbed = make_baseline(start_x=9.5)
        agent = testbed.clients[0].agent
        # Pretend the current AP is unreachable by pointing it at a
        # device far away: force an FT toward ap1 via dead "ap7" link.
        agent.current_ap = "ap7"  # 50+ m away: mgmt frames will die
        agent._handover("ap1", "reassoc-req")
        testbed.run_seconds(3.0)
        assert agent.failed_handovers >= 1
        # the fallback re-associated over the air (the agent may have
        # picked the genuinely best AP over our suggested target)
        assert agent.current_ap in ("ap0", "ap1")
