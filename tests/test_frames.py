"""Tests for 802.11 frame airtime arithmetic and constants."""


from repro.mac.frames import (
    BA_WINDOW,
    BEACON_FRAME_BYTES,
    DIFS_US,
    HT_PREAMBLE_US,
    LEGACY_PREAMBLE_US,
    MAX_AMPDU_AIRTIME_US,
    SEQ_MODULO,
    SIFS_US,
    SLOT_US,
    AckFrame,
    BeaconFrame,
    BlockAckFrame,
    DataAmpdu,
    MgmtFrame,
    Mpdu,
)
from repro.net.packet import Packet
from repro.phy.mcs import mcs_by_index


def test_timing_constants_are_2p4ghz_short_slot():
    assert SIFS_US == 10
    assert SLOT_US == 9
    assert DIFS_US == 28
    assert BA_WINDOW == 64
    assert SEQ_MODULO == 4096


def test_mpdu_sizes_include_mac_framing():
    mpdu = Mpdu(seq=0, packet=Packet("a", "b", 1500))
    assert mpdu.size_bytes == 1530
    assert mpdu.wire_bytes == 1534


def test_ampdu_duration_scales_with_payload_and_rate():
    def ampdu(n, mcs_index):
        mpdus = [Mpdu(seq=i, packet=Packet("a", "b", 1500)) for i in range(n)]
        return DataAmpdu(
            tx_device="ap0", ta="ap0", ra="c", mpdus=mpdus,
            mcs=mcs_by_index(mcs_index),
        )

    one = ampdu(1, 7).duration_us()
    ten = ampdu(10, 7).duration_us()
    slow = ampdu(1, 0).duration_us()
    assert ten > 5 * one  # aggregation amortizes only the preamble
    assert slow > 5 * one  # MCS0 is 10x slower than MCS7
    assert one > HT_PREAMBLE_US


def test_ampdu_preamble_amortization():
    """The whole point of aggregation: per-MPDU cost falls with size."""
    def per_mpdu_airtime(n):
        mpdus = [Mpdu(seq=i, packet=Packet("a", "b", 1500)) for i in range(n)]
        frame = DataAmpdu(
            tx_device="ap0", ta="ap0", ra="c", mpdus=mpdus,
            mcs=mcs_by_index(7),
        )
        return frame.duration_us() / n

    assert per_mpdu_airtime(20) < per_mpdu_airtime(1)


def test_block_ack_duration_fixed_and_short():
    ba = BlockAckFrame(tx_device="c", ta="c", ra="ap0")
    assert LEGACY_PREAMBLE_US < ba.duration_us() < 60


def test_beacon_duration_at_basic_rate():
    beacon = BeaconFrame(tx_device="ap0", ta="ap0", ra="*")
    expected = LEGACY_PREAMBLE_US + round(BEACON_FRAME_BYTES * 8 / 6.0)
    assert abs(beacon.duration_us() - expected) <= 1
    assert beacon.is_broadcast


def test_mgmt_and_ack_durations():
    mgmt = MgmtFrame(tx_device="c", ta="c", ra="ap0", subtype="assoc-req")
    ack = AckFrame(tx_device="ap0", ta="ap0", ra="c")
    assert mgmt.duration_us() > ack.duration_us()
    assert ack.duration_us() < 40


def test_frame_ids_are_unique():
    a = AckFrame(tx_device="x", ta="x", ra="y")
    b = AckFrame(tx_device="x", ta="x", ra="y")
    assert a.frame_id != b.frame_id


def test_max_ampdu_airtime_budget_is_4ms():
    assert MAX_AMPDU_AIRTIME_US == 4000
