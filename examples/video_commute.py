#!/usr/bin/env python
"""Stream HD video on the commute (the paper's §5.4 case study).

A passenger watches a 720p stream while the car drives past the AP
array. Under WGTT playback never stalls; under Enhanced 802.11r it
rebuffers whenever a handover lags (paper Table 4).

Run:  python examples/video_commute.py [speed_mph]
"""

import sys

from repro.apps.video import VideoPlayer
from repro.scenarios import TestbedConfig, build_testbed
from repro.sim.engine import SECOND


def watch(scheme: str, speed_mph: float, seed: int = 3) -> None:
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    player = VideoPlayer(testbed.sim, receiver)
    sender.start()
    transit_us = min(testbed.transit_duration_us(), 30 * SECOND)
    testbed.run_seconds(transit_us / SECOND)
    player.stop()
    label = "WGTT" if scheme == "wgtt" else "Enhanced 802.11r"
    ratio = player.rebuffer_ratio(transit_us)
    print(f"{label:18} rebuffers: {player.rebuffer_count:2d}   "
          f"rebuffer ratio: {ratio:.2f}   "
          f"({'smooth playback' if ratio == 0 else 'interrupted'})")


def main() -> None:
    speed = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    print(f"Watching a 3 Mbit/s 720p stream at {speed:g} mph "
          f"(1.5 s pre-buffer)\n")
    watch("wgtt", speed)
    watch("baseline", speed)
    print("\nPaper Table 4: WGTT rebuffer ratio 0 at all speeds; "
          "Enhanced 802.11r 0.54-0.69.")


if __name__ == "__main__":
    main()
