#!/usr/bin/env python
"""Rush hour: three cars, mixed workloads, one AP array.

Three clients drive the corridor in single file. The first streams
video, the second browses the web (repeated 2.1 MB page loads), the
third pushes uplink telemetry. One WGTT controller juggles all three —
per-client cyclic queues, per-client switching, shared uplink
de-duplication.

Run:  python examples/rush_hour.py [seed]
"""

import sys

from repro.apps.video import VideoPlayer
from repro.apps.web import PageLoad
from repro.scenarios import multi_client_config, build_testbed
from repro.sim.engine import SECOND


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    # Stagger the column so all three start inside the deployment.
    config = multi_client_config(3, speed_mph=10.0, gap_m=8.0,
                                 seed=seed, scheme="wgtt",
                                 client_start_x_m=24.0)
    testbed = build_testbed(config)

    video_sender, video_receiver = testbed.add_downlink_tcp_flow(0)
    player = VideoPlayer(testbed.sim, video_receiver)
    # A streaming server paces delivery (~2x the media rate) rather
    # than blasting at link speed; that leaves airtime for the others.
    video_sender._bulk = False
    from repro.sim.engine import Timer
    from repro.transport.tcp import MSS

    segments_per_tick = max(1, int(2 * player.bitrate_bps / 8 / MSS / 10))

    def pace():
        video_sender.supply(segments_per_tick)
        pacer.start(SECOND // 10)

    pacer = Timer(testbed.sim, pace)
    pacer.start(SECOND // 10)
    video_sender.start()

    telemetry_source, telemetry_sink = testbed.add_uplink_udp_flow(
        2, rate_bps=5e5
    )
    telemetry_source.start()

    duration_s = 12.0
    load_times = []
    page = PageLoad(testbed, client_index=1)
    elapsed = 0.0
    while elapsed < duration_s:
        testbed.run_seconds(0.25)
        elapsed += 0.25
        if page.complete:
            load_times.append(page.load_time_s())
            page = PageLoad(testbed, client_index=1)
    player.stop()

    print(f"Three clients, {duration_s:.0f} s of rush hour (seed {seed}):\n")
    print(f"client0 (video):     rebuffers={player.rebuffer_count}  "
          f"ratio={player.rebuffer_ratio(int(duration_s * SECOND)):.2f}")
    if load_times:
        mean_load = sum(load_times) / len(load_times)
        print(f"client1 (browsing):  {len(load_times)} page load(s), "
              f"mean {mean_load:.1f} s per 2.1 MB page")
    else:
        partial_mb = page.bytes_delivered() / 1e6
        print(f"client1 (browsing):  page still loading "
              f"({partial_mb:.1f}/2.1 MB) — the middle car contends "
              f"with both neighbours")
    received = telemetry_sink.packets_received()
    offered = telemetry_source.packets_sent
    print(f"client2 (telemetry): {received}/{offered} datagrams delivered "
          f"({100 * received / max(offered, 1):.1f}%)")

    controller = testbed.controller
    print(f"\ncontroller: {len(controller.coordinator.history)} switches, "
          f"{controller.stats['csi_reports']} CSI reports, "
          f"{controller.dedup.duplicates} duplicate uplink copies removed")
    per_client = {}
    for _, client, ap in controller.serving_timeline:
        per_client.setdefault(client, []).append(ap)
    for client_id in sorted(per_client):
        path = per_client[client_id]
        deduped = [a for a, b in zip(path, path[1:] + [None]) if a != b]
        print(f"  {client_id}: {' -> '.join(deduped[:10])}")


if __name__ == "__main__":
    main()
