#!/usr/bin/env python
"""The vehicular picocell regime (the paper's Figure 2).

Samples the ESNR of three adjacent AP links at millisecond resolution
while driving by at 25 mph, and shows how often the *best* AP changes —
the observation that motivates millisecond-granularity switching.

Run:  python examples/picocell_regime.py
"""

from repro.experiments import fig02


def sparkline(values, lo=0.0, hi=30.0) -> str:
    blocks = " .:-=+*#%@"
    span = hi - lo
    return "".join(
        blocks[min(len(blocks) - 1, max(0, int((v - lo) / span * len(blocks))))]
        for v in values
    )


def main() -> None:
    result = fig02.run(seed=3, speed_mph=25.0)
    series = result["esnr_series"]
    window = slice(800, 960)  # a 160 ms detail view, like Fig 2's inset
    print("ESNR during a 25 mph drive-by (160 ms detail, 1 ms samples)\n")
    for ap_id in sorted(series):
        print(f"  {ap_id}: {sparkline(series[ap_id][window])}")
    best = result["best_ap"][window]
    print(f"  best: {''.join(ap[-1] for ap in best)}\n")
    print(f"Best-AP changes: {result['flips']} over the drive "
          f"({result['flips_per_second']:.0f}/s overall, "
          f"{result['contested_flips_per_second']:.0f}/s where the top "
          f"two APs are within a fading swing)")
    print(f"Mean dwell on one best AP: {result['mean_best_dwell_ms']:.1f} ms")
    print("\nNo roaming scheme that decides on second-scale RSSI history "
          "can follow this; that is the case for WGTT's design.")


if __name__ == "__main__":
    main()
