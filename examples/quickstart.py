#!/usr/bin/env python
"""Quickstart: drive one client past the WGTT array with a TCP download.

Builds the paper's eight-AP roadside testbed, attaches a bulk TCP flow,
runs a 15 mph drive, and prints what the controller did: throughput,
switch timeline, and switch-protocol latencies (paper Table 1 /
Figure 14 territory).

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.scenarios import TestbedConfig, build_testbed
from repro.sim.engine import SECOND


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    config = TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[15.0])
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    sender.start()

    print(f"8 WGTT APs at x = {config.ap_xs()} m, client at 15 mph")
    duration_s = min(testbed.transit_duration_us() / SECOND, 10.0)
    testbed.run_seconds(duration_s)

    throughput = sender.throughput_mbps(testbed.sim.now)
    print(f"\nTCP throughput over {duration_s:.1f} s: {throughput:.2f} Mbit/s")
    print(f"TCP timeouts: {sender.timeouts}")

    from repro.metrics import sparkline, timeline

    series = receiver.goodput_series_mbps(
        testbed.sim.now, bin_us=SECOND // 4
    )
    print("\nGoodput (250 ms bins): " + sparkline(series))

    history = testbed.controller.coordinator.history
    durations = testbed.controller.switch_durations_ms()
    print(f"\nAP switches: {len(history)}"
          f" (~{len(history) / duration_s:.1f} per second)")
    if durations:
        print(f"Switch protocol time: mean {sum(durations)/len(durations):.1f} ms"
              f" (paper Table 1: 17-21 ms)")
    events = [
        (t / SECOND, ap) for t, _c, ap in testbed.controller.serving_timeline
    ]
    print("Serving AP over time:  " + timeline(events, duration_s))


if __name__ == "__main__":
    main()
