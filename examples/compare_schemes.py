#!/usr/bin/env python
"""WGTT vs Enhanced 802.11r head-to-head (the Figure 13/14 story).

Runs the same 15 mph drive under both schemes with TCP and UDP bulk
downloads and prints the comparison: throughput, gain factor, switch
behaviour, and TCP timeout times. This is the paper's headline result
in one script.

Run:  python examples/compare_schemes.py [speed_mph]
"""

import sys

from repro.apps.bulk import run_bulk_download
from repro.scenarios import TestbedConfig


def main() -> None:
    speed = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    seeds = (3, 7)
    print(f"Bulk download during a {speed:g} mph drive "
          f"(mean of {len(seeds)} runs)\n")
    results = {}
    for protocol in ("tcp", "udp"):
        for scheme in ("wgtt", "baseline"):
            throughputs, switches, timeouts = [], [], []
            for seed in seeds:
                config = TestbedConfig(
                    seed=seed, scheme=scheme, client_speeds_mph=[speed]
                )
                result = run_bulk_download(config, protocol=protocol)
                throughputs.append(result.throughput_mbps)
                switches.append(result.switch_count)
                timeouts.append(result.tcp_timeouts)
            results[(protocol, scheme)] = (
                sum(throughputs) / len(throughputs),
                sum(switches) / len(switches),
                sum(timeouts) / len(timeouts),
            )

    header = f"{'':14}{'WGTT':>10}{'802.11r':>10}{'gain':>8}"
    print(header)
    print("-" * len(header))
    for protocol in ("tcp", "udp"):
        wgtt = results[(protocol, "wgtt")][0]
        base = results[(protocol, "baseline")][0]
        gain = wgtt / base if base > 0 else float("inf")
        print(f"{protocol.upper():14}{wgtt:9.2f} {base:9.2f} {gain:7.2f}x")
    print()
    print(f"Switches/run     WGTT: {results[('tcp','wgtt')][1]:.0f}"
          f"   802.11r: {results[('tcp','baseline')][1]:.0f}")
    print(f"TCP timeouts     WGTT: {results[('tcp','wgtt')][2]:.1f}"
          f"   802.11r: {results[('tcp','baseline')][2]:.1f}")
    print("\nPaper (real testbed): 2.4-4.7x TCP and 2.6-4.0x UDP gain "
          "over 5-25 mph.")


if __name__ == "__main__":
    main()
