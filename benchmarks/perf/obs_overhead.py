#!/usr/bin/env python
"""Observability overhead check: tracing disabled must be ~free.

The ``repro.obs`` contract is zero-overhead-when-off: every emit site
is guarded by a single ``tracer.active`` attribute load, and the engine
hot loop only pays a ``self._profiler is None`` check per event.  A
direct before/after comparison needs a pre-obs checkout, which CI does
not have, so this benchmark bounds the overhead from first principles
instead:

* ``guard``  — the exact per-event cost the obs layer added to the hot
  loop, measured by timing the guarded dispatch pattern (attribute
  load + ``is None`` branch + call) against the bare call it replaced,
  then expressed as a fraction of the engine's *real* measured
  per-event dispatch cost.  This is the quantity the <3%% budget is
  asserted against: guard_cost / per_event_cost.
* ``engine`` — raw ``Simulator.step`` throughput with and without a
  profiler installed (profiling *on* is allowed to cost; recorded for
  context).
* ``drive``  — end-to-end wall clock of a short bulk-download drive,
  obs-disabled vs fully traced, interleaved repeats (context only).

CI's obs-smoke job runs::

    PYTHONPATH=src python benchmarks/perf/obs_overhead.py \
        --skip-drive --assert-max-overhead 0.03

failing when the added guard cost exceeds 3%% of the measured
per-event dispatch cost — i.e. when "off" stops being cheap.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_guard(n: int = 1_000_000) -> dict:
    """Cost of the obs hot-loop guard vs the bare dispatch it wraps.

    Mimics ``Simulator.step``'s shapes: the pre-obs loop called the
    handler directly; the obs loop loads ``self._profiler`` and
    branches on ``is None`` first.
    """

    class Host:
        __slots__ = ("_profiler",)

        def __init__(self):
            self._profiler = None

    host = Host()
    noop = lambda: None  # noqa: E731

    def bare():
        for _ in range(n):
            noop()

    def guarded():
        for _ in range(n):
            profiler = host._profiler
            if profiler is None:
                noop()
            else:  # pragma: no cover - profiler off in this bench
                noop()

    bare_s = _best_of(bare)
    guarded_s = _best_of(guarded)
    return {
        "iterations": n,
        "bare_best_s": bare_s,
        "guarded_best_s": guarded_s,
        "guard_cost_ns_per_event": max(0.0, (guarded_s - bare_s) / n * 1e9),
    }


def bench_engine(n_events: int = 200_000) -> dict:
    from repro.obs.profile import EngineProfiler
    from repro.sim.engine import Simulator

    def run(profiler):
        sim = Simulator()
        sim.set_profiler(profiler)
        noop = lambda: None  # noqa: E731
        for i in range(n_events):
            sim.schedule_at(i, noop)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    plain = _best_of(lambda: run(None), repeats=3)
    profiled = _best_of(lambda: run(EngineProfiler()), repeats=3)
    return {
        "events": n_events,
        "plain_best_s": plain,
        "profiled_best_s": profiled,
        "per_event_plain_us": plain / n_events * 1e6,
        "profiling_on_overhead": max(0.0, profiled / plain - 1.0),
    }


def bench_drive(repeats: int = 3) -> dict:
    from repro.apps.bulk import run_bulk_download
    from repro.obs.context import ObsConfig
    from repro.scenarios.testbed import TestbedConfig

    def drive(obs):
        config = TestbedConfig(
            seed=3, scheme="wgtt", client_speeds_mph=[25.0], obs=obs
        )
        return run_bulk_download(config, protocol="tcp", duration_s=2.0)

    # Interleave disabled/traced repeats so both see the same thermal
    # and allocator conditions.
    disabled, traced = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        drive(None)
        disabled.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        drive(ObsConfig(trace=True))
        traced.append(time.perf_counter() - t0)
    return {
        "disabled_best_s": min(disabled),
        "traced_best_s": min(traced),
        "traced_over_disabled": min(traced) / min(disabled) - 1.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, metavar="PATH")
    parser.add_argument(
        "--skip-drive", action="store_true",
        help="skip the end-to-end drive comparison (CI smoke)",
    )
    parser.add_argument(
        "--assert-max-overhead", type=float, default=None, metavar="FRAC",
        help="exit 1 when guard_cost / per_event_cost exceeds this "
        "fraction (e.g. 0.03 = 3%%)",
    )
    args = parser.parse_args()

    report = {"guard": bench_guard(), "engine": bench_engine()}
    guard_ns = report["guard"]["guard_cost_ns_per_event"]
    per_event_ns = report["engine"]["per_event_plain_us"] * 1e3
    report["disabled_overhead_fraction"] = (
        guard_ns / per_event_ns if per_event_ns else 0.0
    )
    if not args.skip_drive:
        report["drive"] = bench_drive()

    text = json.dumps(report, indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)

    if args.assert_max_overhead is not None:
        budget = args.assert_max_overhead
        overhead = report["disabled_overhead_fraction"]
        if overhead > budget:
            print(
                f"FAIL obs-off guard overhead {overhead:.2%} of per-event "
                f"cost exceeds budget {budget:.2%}",
                file=sys.stderr,
            )
            return 1
        print(f"OK obs-off guard overhead {overhead:.2%} within {budget:.2%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
