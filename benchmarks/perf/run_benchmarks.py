#!/usr/bin/env python
"""Hot-path microbenchmarks + end-to-end wall-clock, written to JSON.

Measures the four optimisation targets of the performance overhaul and
records them (with their reference-implementation counterparts where
one exists) in a machine-readable file, so regressions show up as a
diff rather than a vibe:

* ``engine``    — discrete-event throughput (schedule/cancel/fire mix),
                  plus the heap-compaction behaviour under timer churn.
* ``esnr``      — effective-SNR evaluations/s under the MAC's real
                  per-frame call pattern (several evaluations of each
                  snapshot — what the identity memos exist for), LUT
                  fast path vs the seed's per-evaluation scipy chain;
                  cold single-evaluation timings recorded alongside.
* ``selector``  — AP-selection queries/s, incremental sliding window
                  vs the naive re-``sorted()`` reference.
* ``phy_batch`` — the vectorized snapshot-batch ESNR kernel
                  (``repro.phy.batch``) against a loop of scalar calls,
                  at several link counts, with an in-bench bit-identity
                  check.
* ``obs``       — the observability layer's hot-loop guard cost
                  (``benchmarks/perf/obs_overhead.py``), embedded so
                  one JSON carries the whole perf picture.
* ``fig13``     — wall-clock of the headline experiment in quick mode,
                  serial and parallel, plus one representative cell
                  with the batched PHY path on vs off.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py \
        [--output BENCH_PR6.json] [--skip-fig13] [--jobs N]

``--skip-fig13`` keeps CI smoke runs to a few seconds; the committed
``BENCH_PR6.json`` at the repo root is a full run.

When the requested ``--jobs`` exceeds what the machine can actually
run in parallel (``run_grid`` clamps CPU-bound workers to the core
count), the parallel leg silently measures serial execution — the
runner now detects this and says so, on stderr and in the JSON, so a
"parallel" number from a one-core box cannot be mistaken for a real
scaling result.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import random
import sys
import time

import numpy as np

#: fig13 quick-mode wall-clock of the pre-overhaul tree (commit
#: 615ea72, same machine class as the committed BENCH_PR1.json), the
#: denominator for the end-to-end speedup this PR claims.
SEED_BASELINE_FIG13_WALL_S = 132.69


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` — robust to scheduler noise."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------


def bench_engine() -> dict:
    from repro.sim.engine import Simulator

    n_events = 200_000

    def churn() -> Simulator:
        sim = Simulator()
        rng = random.Random(7)
        pending = []
        for i in range(n_events):
            handle = sim.schedule(rng.randrange(1, 5_000), lambda: None)
            pending.append(handle)
            # MAC-like behaviour: most timers are cancelled, not fired.
            if len(pending) > 32:
                pending.pop(rng.randrange(len(pending))).cancel()
            if i % 16 == 0:
                sim.step()
        sim.run()
        return sim

    elapsed = _best_of(churn)
    sim = churn()
    return {
        "events_scheduled": n_events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(n_events / elapsed),
        "compactions": sim.compactions,
        "final_queue_size": sim.queue_size(),
    }


# ----------------------------------------------------------------------
# effective SNR
# ----------------------------------------------------------------------


#: ESNR evaluations the MAC performs against one SNR snapshot while a
#: frame is on the air: one per A-MPDU subframe plus the preamble and
#: rate-control lookups.  4 is conservative — saturated aggregates run
#: 16-32 subframes — and it is exactly the repetition the identity
#: memos in ``repro.phy.per`` were built for.  The seed recomputed the
#: full scipy chain on every one of these evaluations.
ESNR_EVALS_PER_SNAPSHOT = 4


def bench_esnr() -> dict:
    """The per-frame ESNR chain, driven the way the MAC drives it.

    Replays the simulator's call pattern — ``ESNR_EVALS_PER_SNAPSHOT``
    evaluations of each snapshot, fresh snapshot per frame — through
    the memoised LUT fast path (``repro.phy.per``) and through the
    seed's per-evaluation scipy chain.  Cold (single-evaluation, no
    memo benefit) timings for both are recorded alongside.
    """
    from repro.phy.esnr import effective_snr_db, effective_snr_db_exact
    from repro.phy.per import _effective_snr_db_memo

    rng = np.random.default_rng(3)
    channels = [rng.uniform(0.0, 40.0, 56) for _ in range(2_000)]
    k = ESNR_EVALS_PER_SNAPSHOT
    total = k * len(channels)

    def run_fast():
        for channel in channels:
            for _ in range(k):
                _effective_snr_db_memo(channel, "64qam")

    def run_exact():
        for channel in channels:
            for _ in range(k):
                effective_snr_db_exact(channel)

    def run_fast_cold():
        for channel in channels:
            effective_snr_db(channel)

    def run_exact_cold():
        for channel in channels:
            effective_snr_db_exact(channel)

    effective_snr_db(channels[0])  # build the tables outside the timer
    fast = _best_of(run_fast)
    exact = _best_of(run_exact)
    fast_cold = _best_of(run_fast_cold)
    exact_cold = _best_of(run_exact_cold)
    worst_err = max(
        abs(effective_snr_db(c) - effective_snr_db_exact(c)) for c in channels
    )
    return {
        "snapshots": len(channels),
        "evals_per_snapshot": k,
        "evaluations": total,
        "lut_us_per_eval": round(fast / total * 1e6, 3),
        "exact_us_per_eval": round(exact / total * 1e6, 3),
        "lut_evals_per_s": round(total / fast),
        "exact_evals_per_s": round(total / exact),
        "speedup": round(exact / fast, 2),
        "lut_cold_us_per_call": round(fast_cold / len(channels) * 1e6, 3),
        "exact_cold_us_per_call": round(exact_cold / len(channels) * 1e6, 3),
        "cold_speedup": round(exact_cold / fast_cold, 2),
        "worst_abs_error_db": round(worst_err, 5),
    }


# ----------------------------------------------------------------------
# AP selector
# ----------------------------------------------------------------------


class _SortedReferenceSelector:
    """The pre-overhaul O(n log n)-per-query window, as a yardstick."""

    def __init__(self, window_us: int = 10_000):
        self.window_us = window_us
        self._readings: dict = {}

    def record(self, client, ap, time_us, value):
        per_client = self._readings.setdefault(client, {})
        series = per_client.setdefault(ap, [])
        series.append((time_us, value))
        horizon = time_us - self.window_us
        per_client[ap] = [(t, v) for t, v in series if t >= horizon]

    def best_ap(self, client, now_us):
        per_client = self._readings.get(client, {})
        best, best_value = None, 0.0
        horizon = now_us - self.window_us
        for ap, series in per_client.items():
            values = sorted(v for t, v in series if t >= horizon)
            if not values:
                continue
            value = values[len(values) // 2]
            if best is None or value > best_value:
                best, best_value = ap, value
        return best


def _selector_workload(selector, n_steps: int) -> None:
    rng = random.Random(11)
    aps = [f"ap{i}" for i in range(8)]
    now = 0
    for _ in range(n_steps):
        now += rng.randrange(100, 600)
        for ap in aps:
            if rng.random() < 0.5:
                selector.record("c", ap, now, rng.uniform(5.0, 35.0))
        selector.best_ap("c", now)


def bench_selector() -> dict:
    from repro.core.selection import ApSelector

    n_steps = 5_000
    fast = _best_of(lambda: _selector_workload(ApSelector(), n_steps))
    reference = _best_of(
        lambda: _selector_workload(_SortedReferenceSelector(), n_steps)
    )
    return {
        "query_steps": n_steps,
        "incremental_wall_s": round(fast, 4),
        "reference_wall_s": round(reference, 4),
        "incremental_queries_per_s": round(n_steps / fast),
        "reference_queries_per_s": round(n_steps / reference),
        "speedup": round(reference / fast, 2),
    }


# ----------------------------------------------------------------------
# batched PHY kernel
# ----------------------------------------------------------------------


#: Link counts the batched-kernel bench sweeps.  64 is the headline
#: figure (the PR's ≥8× target); 8 is the testbed's real
#: contention-domain size, where per-call numpy dispatch bounds the
#: achievable batching gain.
PHY_BATCH_LINK_COUNTS = (8, 64, 256)


def bench_phy_batch() -> dict:
    """Stacked effective-SNR kernel vs a loop of scalar calls.

    Fresh arrays per repetition on the scalar side so the identity
    memos cannot serve hits — this measures the *compute* paths, which
    is what the batched medium replaces.  The two paths are checked
    bit-identical inside the bench before any timing is recorded.
    """
    from repro.phy.batch import effective_snr_db_batch
    from repro.phy.esnr import effective_snr_db

    rng = np.random.default_rng(17)
    report: dict = {"modulation": "64qam", "link_counts": {}}
    for n_links in PHY_BATCH_LINK_COUNTS:
        stack = rng.uniform(0.0, 40.0, size=(n_links, 56))
        rows = [stack[i] for i in range(n_links)]

        batch_out = effective_snr_db_batch(stack)
        scalar_out = np.asarray([effective_snr_db(row) for row in rows])
        if batch_out.tobytes() != scalar_out.tobytes():
            raise AssertionError(
                f"batch/scalar ESNR mismatch at {n_links} links"
            )

        def run_batch():
            effective_snr_db_batch(stack)

        def run_scalar():
            from repro.phy.per import reset_phy_memos

            reset_phy_memos()
            for row in rows:
                effective_snr_db(row)

        batch_wall = _best_of(run_batch, repeats=20)
        scalar_wall = _best_of(run_scalar, repeats=5)
        report["link_counts"][str(n_links)] = {
            "batch_us": round(batch_wall * 1e6, 2),
            "scalar_loop_us": round(scalar_wall * 1e6, 2),
            "speedup": round(scalar_wall / batch_wall, 2),
        }
    report["bit_identical"] = True
    report["speedup_64_links"] = report["link_counts"]["64"]["speedup"]
    return report


# ----------------------------------------------------------------------
# observability overhead (embedded from obs_overhead.py)
# ----------------------------------------------------------------------


def bench_obs() -> dict:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    try:
        import obs_overhead
    finally:
        sys.path.pop(0)
    guard = obs_overhead.bench_guard()
    engine = obs_overhead.bench_engine()
    # Same budget the CI obs-smoke job asserts: the guard added to the
    # hot loop must stay under 3% of the real per-event dispatch cost.
    fraction = (
        guard["guard_cost_ns_per_event"]
        / 1e3
        / engine["per_event_plain_us"]
    )
    return {
        "guard_cost_ns_per_event": round(
            guard["guard_cost_ns_per_event"], 2
        ),
        "per_event_plain_us": round(engine["per_event_plain_us"], 3),
        "disabled_overhead_fraction": round(fraction, 4),
        "profiling_on_overhead": round(
            engine["profiling_on_overhead"], 3
        ),
        "within_budget": fraction <= 0.03,
    }


# ----------------------------------------------------------------------
# fig13 end to end
# ----------------------------------------------------------------------


#: fig13 quick-mode serial wall recorded by the previous perf PR
#: (committed BENCH_PR1.json, same machine class) — the denominator
#: for the end-to-end speedup this PR reports.
PR1_RECORDED_FIG13_WALL_S = 57.98


def warn_ineffective_jobs(requested: int) -> dict:
    """Detect ``--jobs`` values the machine cannot honour.

    Returns the fields the fig13 report embeds; prints a stderr
    warning when the parallel leg would actually run serial (or
    degraded), so the recorded "parallel" wall is never mistaken for a
    scaling measurement.
    """
    from repro.experiments.runner import available_jobs

    effective = min(requested, available_jobs())
    info = {
        "jobs_requested": requested,
        "jobs_effective": effective,
        "jobs_ineffective": effective < requested,
    }
    if effective < requested:
        print(
            f"WARNING: --jobs {requested} requested but only {effective} "
            f"worker(s) are effective on this machine "
            f"(cpu_count={os.cpu_count()}); the parallel fig13 timing "
            "below measures "
            + ("serial" if effective == 1 else "degraded")
            + " execution, not parallel scaling.",
            file=sys.stderr,
        )
    return info


def bench_fig13_cell(repeats: int = 3) -> dict:
    """One representative fig13 cell, batched PHY path on vs off.

    The quick-suite wall below runs with the config default
    (``batch_phy=True``); this isolates what the flag itself buys,
    and proves the two modes bit-identical on a full cell.  The two
    modes run interleaved, best-of-N, and the speedup is computed on
    *CPU* time — on a loaded shared box, wall-clock noise between two
    three-second runs swamps a single-digit-percent effect.
    """
    from repro.apps.bulk import run_bulk_download
    from repro.phy.per import reset_phy_memos
    from repro.scenarios.testbed import TestbedConfig

    def cell(batch_phy: bool) -> float:
        reset_phy_memos()
        result = run_bulk_download(
            TestbedConfig(
                seed=1,
                scheme="wgtt",
                client_speeds_mph=[15.0],
                batch_phy=batch_phy,
            ),
            protocol="tcp",
            udp_rate_bps=50e6,
        )
        return result.throughput_mbps

    throughput = {}
    wall = {True: math.inf, False: math.inf}
    cpu = {True: math.inf, False: math.inf}
    for _ in range(repeats):
        for batch_phy in (True, False):
            w0, c0 = time.perf_counter(), time.process_time()
            throughput[batch_phy] = cell(batch_phy)
            wall[batch_phy] = min(
                wall[batch_phy], time.perf_counter() - w0
            )
            cpu[batch_phy] = min(
                cpu[batch_phy], time.process_time() - c0
            )
    return {
        "cell": "tcp/wgtt/15mph/seed1",
        "repeats": repeats,
        "batch_on_wall_s": round(wall[True], 2),
        "batch_off_wall_s": round(wall[False], 2),
        "batch_on_cpu_s": round(cpu[True], 2),
        "batch_off_cpu_s": round(cpu[False], 2),
        "batch_speedup_cpu": round(cpu[False] / cpu[True], 2),
        "bit_identical_throughput": throughput[True] == throughput[False],
    }


def bench_fig13(jobs: int = 4) -> dict:
    from repro.experiments import fig13

    jobs_info = warn_ineffective_jobs(jobs)

    t0, c0 = time.perf_counter(), time.process_time()
    serial = fig13.run(quick=True, jobs=1)
    serial_wall = time.perf_counter() - t0
    serial_cpu = time.process_time() - c0

    t0 = time.perf_counter()
    parallel = fig13.run(quick=True, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    return {
        "quick": True,
        "serial_wall_s": round(serial_wall, 2),
        # CPU time of the in-process serial leg: the load-robust number
        # to compare across bench runs on a shared box.
        "serial_cpu_s": round(serial_cpu, 2),
        "parallel_wall_s": round(parallel_wall, 2),
        **jobs_info,
        "seed_baseline_wall_s": SEED_BASELINE_FIG13_WALL_S,
        "pr1_recorded_wall_s": PR1_RECORDED_FIG13_WALL_S,
        "serial_speedup_vs_seed": round(
            SEED_BASELINE_FIG13_WALL_S / serial_wall, 2
        ),
        "serial_speedup_vs_pr1": round(
            PR1_RECORDED_FIG13_WALL_S / serial_wall, 2
        ),
        "jobs_parity": serial["rows"] == parallel["rows"],
        "batch_cell": bench_fig13_cell(),
    }


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--skip-fig13", action="store_true",
                        help="skip the minutes-long end-to-end benchmark")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker count for the parallel fig13 leg "
                             "(ineffective values are detected and "
                             "flagged)")
    parser.add_argument("--assert-batch-speedup", type=float, default=None,
                        metavar="X",
                        help="exit nonzero unless the 64-link batched "
                             "ESNR kernel beats the scalar loop by at "
                             "least X (CI perf gate)")
    args = parser.parse_args()

    report = {
        "generated_by": "benchmarks/perf/run_benchmarks.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "engine": bench_engine(),
        "esnr": bench_esnr(),
        "selector": bench_selector(),
        "phy_batch": bench_phy_batch(),
        "obs": bench_obs(),
    }
    if not args.skip_fig13:
        report["fig13"] = bench_fig13(jobs=args.jobs)

    text = json.dumps(report, indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    print(text)

    if args.assert_batch_speedup is not None:
        got = report["phy_batch"]["speedup_64_links"]
        if got < args.assert_batch_speedup:
            print(
                f"FAIL: 64-link batched ESNR speedup {got:.2f}x is below "
                f"the required {args.assert_batch_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"batch speedup gate passed: {got:.2f}x >= "
            f"{args.assert_batch_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
