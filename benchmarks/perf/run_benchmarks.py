#!/usr/bin/env python
"""Hot-path microbenchmarks + end-to-end wall-clock, written to JSON.

Measures the four optimisation targets of the performance overhaul and
records them (with their reference-implementation counterparts where
one exists) in a machine-readable file, so regressions show up as a
diff rather than a vibe:

* ``engine``    — discrete-event throughput (schedule/cancel/fire mix),
                  plus the heap-compaction behaviour under timer churn.
* ``esnr``      — effective-SNR evaluations/s under the MAC's real
                  per-frame call pattern (several evaluations of each
                  snapshot — what the identity memos exist for), LUT
                  fast path vs the seed's per-evaluation scipy chain;
                  cold single-evaluation timings recorded alongside.
* ``selector``  — AP-selection queries/s, incremental sliding window
                  vs the naive re-``sorted()`` reference.
* ``fig13``     — wall-clock of the headline experiment in quick mode,
                  serial and with ``--jobs 4``, against the recorded
                  pre-overhaul baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py \
        [--output BENCH_PR1.json] [--skip-fig13]

``--skip-fig13`` keeps CI smoke runs to a few seconds; the committed
``BENCH_PR1.json`` at the repo root is a full run.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import time

import numpy as np

#: fig13 quick-mode wall-clock of the pre-overhaul tree (commit
#: 615ea72, same machine class as the committed BENCH_PR1.json), the
#: denominator for the end-to-end speedup this PR claims.
SEED_BASELINE_FIG13_WALL_S = 132.69


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` — robust to scheduler noise."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------


def bench_engine() -> dict:
    from repro.sim.engine import Simulator

    n_events = 200_000

    def churn() -> Simulator:
        sim = Simulator()
        rng = random.Random(7)
        pending = []
        for i in range(n_events):
            handle = sim.schedule(rng.randrange(1, 5_000), lambda: None)
            pending.append(handle)
            # MAC-like behaviour: most timers are cancelled, not fired.
            if len(pending) > 32:
                pending.pop(rng.randrange(len(pending))).cancel()
            if i % 16 == 0:
                sim.step()
        sim.run()
        return sim

    elapsed = _best_of(churn)
    sim = churn()
    return {
        "events_scheduled": n_events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(n_events / elapsed),
        "compactions": sim.compactions,
        "final_queue_size": sim.queue_size(),
    }


# ----------------------------------------------------------------------
# effective SNR
# ----------------------------------------------------------------------


#: ESNR evaluations the MAC performs against one SNR snapshot while a
#: frame is on the air: one per A-MPDU subframe plus the preamble and
#: rate-control lookups.  4 is conservative — saturated aggregates run
#: 16-32 subframes — and it is exactly the repetition the identity
#: memos in ``repro.phy.per`` were built for.  The seed recomputed the
#: full scipy chain on every one of these evaluations.
ESNR_EVALS_PER_SNAPSHOT = 4


def bench_esnr() -> dict:
    """The per-frame ESNR chain, driven the way the MAC drives it.

    Replays the simulator's call pattern — ``ESNR_EVALS_PER_SNAPSHOT``
    evaluations of each snapshot, fresh snapshot per frame — through
    the memoised LUT fast path (``repro.phy.per``) and through the
    seed's per-evaluation scipy chain.  Cold (single-evaluation, no
    memo benefit) timings for both are recorded alongside.
    """
    from repro.phy.esnr import effective_snr_db, effective_snr_db_exact
    from repro.phy.per import _effective_snr_db_memo

    rng = np.random.default_rng(3)
    channels = [rng.uniform(0.0, 40.0, 56) for _ in range(2_000)]
    k = ESNR_EVALS_PER_SNAPSHOT
    total = k * len(channels)

    def run_fast():
        for channel in channels:
            for _ in range(k):
                _effective_snr_db_memo(channel, "64qam")

    def run_exact():
        for channel in channels:
            for _ in range(k):
                effective_snr_db_exact(channel)

    def run_fast_cold():
        for channel in channels:
            effective_snr_db(channel)

    def run_exact_cold():
        for channel in channels:
            effective_snr_db_exact(channel)

    effective_snr_db(channels[0])  # build the tables outside the timer
    fast = _best_of(run_fast)
    exact = _best_of(run_exact)
    fast_cold = _best_of(run_fast_cold)
    exact_cold = _best_of(run_exact_cold)
    worst_err = max(
        abs(effective_snr_db(c) - effective_snr_db_exact(c)) for c in channels
    )
    return {
        "snapshots": len(channels),
        "evals_per_snapshot": k,
        "evaluations": total,
        "lut_us_per_eval": round(fast / total * 1e6, 3),
        "exact_us_per_eval": round(exact / total * 1e6, 3),
        "lut_evals_per_s": round(total / fast),
        "exact_evals_per_s": round(total / exact),
        "speedup": round(exact / fast, 2),
        "lut_cold_us_per_call": round(fast_cold / len(channels) * 1e6, 3),
        "exact_cold_us_per_call": round(exact_cold / len(channels) * 1e6, 3),
        "cold_speedup": round(exact_cold / fast_cold, 2),
        "worst_abs_error_db": round(worst_err, 5),
    }


# ----------------------------------------------------------------------
# AP selector
# ----------------------------------------------------------------------


class _SortedReferenceSelector:
    """The pre-overhaul O(n log n)-per-query window, as a yardstick."""

    def __init__(self, window_us: int = 10_000):
        self.window_us = window_us
        self._readings: dict = {}

    def record(self, client, ap, time_us, value):
        per_client = self._readings.setdefault(client, {})
        series = per_client.setdefault(ap, [])
        series.append((time_us, value))
        horizon = time_us - self.window_us
        per_client[ap] = [(t, v) for t, v in series if t >= horizon]

    def best_ap(self, client, now_us):
        per_client = self._readings.get(client, {})
        best, best_value = None, 0.0
        horizon = now_us - self.window_us
        for ap, series in per_client.items():
            values = sorted(v for t, v in series if t >= horizon)
            if not values:
                continue
            value = values[len(values) // 2]
            if best is None or value > best_value:
                best, best_value = ap, value
        return best


def _selector_workload(selector, n_steps: int) -> None:
    rng = random.Random(11)
    aps = [f"ap{i}" for i in range(8)]
    now = 0
    for _ in range(n_steps):
        now += rng.randrange(100, 600)
        for ap in aps:
            if rng.random() < 0.5:
                selector.record("c", ap, now, rng.uniform(5.0, 35.0))
        selector.best_ap("c", now)


def bench_selector() -> dict:
    from repro.core.selection import ApSelector

    n_steps = 5_000
    fast = _best_of(lambda: _selector_workload(ApSelector(), n_steps))
    reference = _best_of(
        lambda: _selector_workload(_SortedReferenceSelector(), n_steps)
    )
    return {
        "query_steps": n_steps,
        "incremental_wall_s": round(fast, 4),
        "reference_wall_s": round(reference, 4),
        "incremental_queries_per_s": round(n_steps / fast),
        "reference_queries_per_s": round(n_steps / reference),
        "speedup": round(reference / fast, 2),
    }


# ----------------------------------------------------------------------
# fig13 end to end
# ----------------------------------------------------------------------


def bench_fig13() -> dict:
    from repro.experiments import fig13
    from repro.experiments.runner import available_jobs

    t0 = time.perf_counter()
    serial = fig13.run(quick=True, jobs=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = fig13.run(quick=True, jobs=4)
    parallel_wall = time.perf_counter() - t0

    return {
        "quick": True,
        "serial_wall_s": round(serial_wall, 2),
        "jobs4_wall_s": round(parallel_wall, 2),
        # run_grid clamps CPU-bound workers to the core count, so on a
        # single-core box --jobs 4 runs with one worker (see
        # docs/performance.md).
        "jobs4_effective_workers": min(4, available_jobs()),
        "seed_baseline_wall_s": SEED_BASELINE_FIG13_WALL_S,
        "serial_speedup_vs_seed": round(
            SEED_BASELINE_FIG13_WALL_S / serial_wall, 2
        ),
        "jobs4_speedup_vs_seed": round(
            SEED_BASELINE_FIG13_WALL_S / parallel_wall, 2
        ),
        "jobs_parity": serial["rows"] == parallel["rows"],
    }


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--skip-fig13", action="store_true",
                        help="skip the minutes-long end-to-end benchmark")
    args = parser.parse_args()

    report = {
        "generated_by": "benchmarks/perf/run_benchmarks.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": __import__("os").cpu_count(),
        "engine": bench_engine(),
        "esnr": bench_esnr(),
        "selector": bench_selector(),
    }
    if not args.skip_fig13:
        report["fig13"] = bench_fig13()

    text = json.dumps(report, indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
