"""Shared helpers for the per-figure benchmark suite.

Each benchmark runs its experiment driver once (quick mode), prints a
paper-vs-measured comparison, and asserts the *shape* of the paper's
result — who wins, roughly by how much, where trends point. Absolute
numbers are not asserted: the substrate is a simulator, not the
authors' testbed (see EXPERIMENTS.md).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
comparison tables inline).
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str, paper: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print(f"paper: {paper}")
    print("=" * 72)
