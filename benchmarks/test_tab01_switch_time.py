"""Table 1 — the stop/start/ack switching protocol takes ~17-21 ms,
roughly flat across 50-90 Mbit/s offered load."""

from conftest import banner, run_once

from repro.experiments import tab01
from repro.experiments.common import format_table


def test_tab01_switch_protocol_time(benchmark):
    result = run_once(benchmark, lambda: tab01.run(seed=3, quick=True))
    banner(
        "Table 1: switching-protocol execution time vs offered load",
        "mean 17-21 ms, std 3-5 ms at 50/60/70/80/90 Mbit/s",
    )
    print(format_table(result["rows"], ["rate_mbps", "switches", "mean_ms", "std_ms"]))

    means = [row["mean_ms"] for row in result["rows"]]
    stds = [row["std_ms"] for row in result["rows"]]
    # Shape: low-tens of ms, flat across load, modest variance.
    assert all(10.0 <= m <= 28.0 for m in means)
    assert max(means) - min(means) < 6.0
    assert all(s < 8.0 for s in stds)
    assert all(row["switches"] >= 5 for row in result["rows"])
