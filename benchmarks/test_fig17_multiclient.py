"""Figure 17 — per-client throughput with 1-3 simultaneous clients:
WGTT stays ahead as contention grows (paper: gap widens to ~2.6x TCP)."""

from conftest import banner, run_once

from repro.experiments import fig17
from repro.experiments.common import format_table


def test_fig17_multiclient(benchmark):
    result = run_once(benchmark, lambda: fig17.run(quick=True))
    banner(
        "Figure 17: per-client throughput vs number of clients (15 mph)",
        "WGTT ahead at every client count; advantage holds/grows "
        "with contention (paper: 2.5x -> 2.6x TCP)",
    )
    print(
        format_table(
            result["rows"],
            [
                "clients",
                "tcp_wgtt_mbps", "tcp_baseline_mbps", "tcp_gain",
                "udp_wgtt_mbps", "udp_baseline_mbps", "udp_gain",
            ],
        )
    )
    rows = result["rows"]
    for row in rows:
        assert row["tcp_wgtt_mbps"] > row["tcp_baseline_mbps"]
        assert row["udp_wgtt_mbps"] > row["udp_baseline_mbps"]
    # Per-client throughput decreases as clients share the channel.
    tcp_wgtt = [row["tcp_wgtt_mbps"] for row in rows]
    assert tcp_wgtt[0] > tcp_wgtt[-1]
    # WGTT's advantage does not collapse under contention.
    assert rows[-1]["tcp_gain"] > 1.3
