"""Extension — the densification curve behind the paper's motivation:
smaller cells (tighter AP spacing) buy throughput, which is the whole
premise of roadside picocells (§1, Cooper's law)."""

from conftest import banner, run_once

from repro.experiments import ext_density
from repro.experiments.common import format_table


def test_ext_density_sweep(benchmark):
    result = run_once(benchmark, lambda: ext_density.run(quick=True))
    banner(
        "Extension: WGTT throughput vs AP spacing (15 mph, TCP)",
        "densification pays: tighter spacing -> higher throughput "
        "(not an evaluation figure; quantifies the paper's premise)",
    )
    print(
        format_table(
            result["rows"],
            ["spacing_m", "num_aps", "throughput_mbps", "switches_per_s"],
        )
    )
    by_spacing = {row["spacing_m"]: row for row in result["rows"]}
    # The paper's 7.5 m deployment clearly beats a sparse 15 m one.
    assert (
        by_spacing[7.5]["throughput_mbps"]
        > 1.2 * by_spacing[15.0]["throughput_mbps"]
    )
    # Densest spacing is at least competitive with the deployed one.
    assert (
        by_spacing[5.0]["throughput_mbps"]
        > 0.8 * by_spacing[7.5]["throughput_mbps"]
    )
    # Switching keeps working at every density (a few per second; with
    # 5 m spacing the richer overlap can actually *lower* churn — the
    # median leader persists across more of the drive).
    for row in result["rows"]:
        assert 0.5 < row["switches_per_s"] < 20.0
