"""Figure 10 — the ESNR coverage heatmap: one cell per AP, centred on
its boresight, overlapping neighbours by 6-10 m."""

from conftest import banner, run_once

from repro.experiments import fig10


def test_fig10_coverage_heatmap(benchmark):
    result = run_once(benchmark, lambda: fig10.run(seed=3))
    banner(
        "Figure 10: ESNR heatmap along the road",
        "cells centred per AP; adjacent coverage overlaps 6-10 m",
    )
    for ap_id in sorted(result["coverage"]):
        lo, hi = result["coverage"][ap_id]
        print(f"{ap_id}: usable {lo}..{hi} m")
    print("overlaps:", [round(o, 1) for o in result["overlaps_m"]])

    # Shape: every AP covers a contiguous span centred near its mount,
    # and neighbours overlap in the paper's band.
    for i, ap_id in enumerate(sorted(result["coverage"], key=lambda a: int(a[2:]))):
        lo, hi = result["coverage"][ap_id]
        assert lo is not None
        centre = (lo + hi) / 2
        expected_x = 10.0 + 7.5 * i
        assert abs(centre - expected_x) < 3.0
    for overlap in result["overlaps_m"]:
        assert 4.0 <= overlap <= 12.0
    # ESNR is higher kerbside than across the road (beam aimed at kerb)
    ap0 = result["heatmap"]["ap0"]
    assert max(ap0[0]) >= max(ap0[-1]) - 1.0
