"""Table 4 — HD video rebuffer ratio: zero under WGTT at every speed;
substantial under Enhanced 802.11r."""

from conftest import banner, run_once

from repro.experiments import tab04
from repro.experiments.common import format_table


def test_tab04_video_rebuffering(benchmark):
    result = run_once(benchmark, lambda: tab04.run(seed=3, quick=False))
    banner(
        "Table 4: video rebuffer ratio vs speed (720p, 1.5 s pre-buffer)",
        "WGTT: 0 at 5-20 mph; Enhanced 802.11r: 0.54-0.69",
    )
    print(
        format_table(
            result["rows"],
            ["speed_mph", "wgtt_ratio", "baseline_ratio",
             "wgtt_rebuffers", "baseline_rebuffers"],
        )
    )
    rows = result["rows"]
    # WGTT plays smoothly at every speed.
    for row in rows:
        assert row["wgtt_ratio"] < 0.05
        # and never worse than the baseline
        assert row["wgtt_ratio"] <= row["baseline_ratio"] + 1e-9
    # The baseline stalls for a meaningful share of at least the faster
    # transits (at cruising speed it may never even start playing —
    # that counts as stalled time, not as a "rebuffer event").
    worst_baseline = max(row["baseline_ratio"] for row in rows)
    assert worst_baseline > 0.15
