"""Figure 22 — time hysteresis T for AP switching: smaller T adapts
faster to the channel and yields higher TCP throughput."""

from conftest import banner, run_once

from repro.experiments import fig22
from repro.experiments.common import format_table


def test_fig22_time_hysteresis(benchmark):
    result = run_once(benchmark, lambda: fig22.run(quick=True))
    banner(
        "Figure 22: TCP throughput vs switching hysteresis T (15 mph)",
        "throughput grows as T shrinks from 120 ms to 40 ms",
    )
    print(format_table(result["rows"], ["hysteresis_ms", "throughput_mbps", "switches"]))

    by_t = {row["hysteresis_ms"]: row for row in result["rows"]}
    # Smaller hysteresis -> more switches.
    assert by_t[40]["switches"] > by_t[120]["switches"]
    # Smaller hysteresis -> at least as good throughput (paper: better).
    assert by_t[40]["throughput_mbps"] >= 0.9 * by_t[120]["throughput_mbps"]
    # All settings keep the link alive (never the baseline's collapse).
    for row in result["rows"]:
        assert row["throughput_mbps"] > 1.0
