"""Table 3 — everyone-answers block ACKs rarely collide: microsecond
response jitter plus side-lobe discrimination keep the uplink clean."""

from conftest import banner, run_once

from repro.experiments import tab03
from repro.experiments.common import format_table


def test_tab03_ack_collision_rate(benchmark):
    result = run_once(benchmark, lambda: tab03.run(seed=3, quick=False))
    banner(
        "Table 3: link-layer ACK collision rate (uplink UDP, parked)",
        "collision-attributable loss is negligible "
        "(paper: 0.001-0.004% of frames)",
    )
    print(
        format_table(
            result["rows"],
            ["rate_mbps", "mpdus_sent", "ba_responses",
             "ba_collision_rate_pct", "no_ba_rate_pct"],
        )
    )
    for row in result["rows"]:
        # Direct observation: BAs addressed to the client almost never
        # overlap on the air (response-slot sensing + jitter works).
        assert row["ba_collision_rate_pct"] < 1.0
        assert row["ba_responses"] > 500
        assert row["mpdus_sent"] > 5_000  # the load was really offered
