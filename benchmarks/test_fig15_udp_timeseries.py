"""Figure 15 — UDP timeseries at 15 mph: same story as Figure 14
without TCP's congestion control in the way."""

from conftest import banner, run_once

from repro.experiments import fig15


def test_fig15_udp_timeseries(benchmark):
    result = run_once(benchmark, lambda: fig15.run(seed=3, quick=False))
    banner(
        "Figure 15: UDP timeseries + association timeline (15 mph)",
        "WGTT switches frequently, rate stays up; baseline switches "
        "~3 times in 10 s with unstable throughput",
    )
    for scheme in ("wgtt", "baseline"):
        row = result[scheme]
        print(
            f"{scheme:9} thr={row['throughput_mbps']:6.2f} Mbit/s  "
            f"switches/s={row['switches_per_second']:4.1f}"
        )

    wgtt, base = result["wgtt"], result["baseline"]
    assert wgtt["switches_per_second"] > 2 * base["switches_per_second"]
    assert wgtt["throughput_mbps"] > 1.3 * base["throughput_mbps"]
    # WGTT's series is meaningfully more stable relative to its mean.
    import numpy as np

    def cov(series):
        arr = np.array([g for g in series if True])
        return arr.std() / max(arr.mean(), 1e-9)

    assert cov(wgtt["goodput_series_mbps"]) < cov(base["goodput_series_mbps"])
