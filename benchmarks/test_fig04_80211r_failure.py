"""Figure 4 — stock 802.11r cannot hand over in the picocell regime:
the 20 mph handover fails outright; the 5 mph one happens far too late."""

from conftest import banner, run_once

from repro.experiments import fig04


def test_fig04_stock_80211r_failure(benchmark):
    result = run_once(benchmark, lambda: fig04.run(seed=3))
    banner(
        "Figure 4: stock 802.11r drive-by (2 APs, UDP CBR)",
        "20 mph: handover fails, reception ends early; "
        "5 mph: handover completes but late; capacity lost either way",
    )
    fast, slow = result["20mph"], result["5mph"]
    for label, row in (("20 mph", fast), ("5 mph", slow)):
        print(
            f"{label:7} handover={'OK' if row['handover_completed'] else 'FAILED'}"
            f"  at={row['handover_time_s']}"
            f"  pkts={row['packets_received']}"
            f"  loss={row['capacity_loss_mbps']:.1f} Mbit/s"
            f"  (accum {row['accumulated_loss_mbit']:.0f} Mbit)"
        )

    # Shape: at 20 mph the handover is useless — it either never
    # happens or happens only after the client has already driven past
    # the crossover into (or beyond) AP2's cell, and reception
    # collapses in the tail of the drive either way.
    crossover_s = (13.75 - 4.0) / (20.0 * 0.44704)  # ~1.1 s
    if fast["handover_completed"]:
        assert fast["handover_time_s"] > 1.6 * crossover_s
    seq_series = fast["received_seq_series"]
    quarter = fast["duration_s"] * 1e6 / 4
    peak_quarter = max(
        sum(1 for t, _ in seq_series if i * quarter <= t < (i + 1) * quarter)
        for i in range(4)
    )
    last_quarter = sum(1 for t, _ in seq_series if t >= 3 * quarter)
    assert last_quarter < 0.35 * peak_quarter
    # The slow drive eventually hands over, but late: well after the
    # two cells' crossover point (~40% of the transit).
    assert slow["handover_completed"]
    assert slow["handover_time_s"] > 0.35 * slow["duration_s"]
    # Capacity is lost in both runs.
    assert fast["capacity_loss_mbps"] > 1.0
    assert slow["capacity_loss_mbps"] > 0.5
