"""Figure 18 — three clients' uplink loss: WGTT's every-AP-forwards
diversity keeps loss near zero; the baseline's single path spikes."""

from conftest import banner, run_once

from repro.experiments import fig18


def test_fig18_uplink_loss(benchmark):
    result = run_once(benchmark, lambda: fig18.run(seed=3, quick=False))
    banner(
        "Figure 18: uplink UDP loss, 3 clients at 15 mph",
        "WGTT per-client loss stays near zero (<0.02 in the paper); "
        "the single-path baseline spikes to 1.0 around handovers",
    )
    for scheme in ("wgtt", "baseline"):
        row = result[scheme]
        means = [round(x, 3) for x in row["mean_loss"]]
        maxes = [round(x, 3) for x in row["max_loss"]]
        print(f"{scheme:9} mean loss per client: {means}   max: {maxes}")
    print(
        "controller de-dup ratio (wgtt):",
        round(result["wgtt"]["controller_duplicate_ratio"], 3),
    )

    wgtt, base = result["wgtt"], result["baseline"]
    # Aggregate loss: WGTT's diversity crushes the single-path baseline.
    # (Absolute WGTT loss is higher here than the paper's <0.02: our
    # calibrated narrow beams leave genuinely weak uplink valleys —
    # see EXPERIMENTS.md. The ordering and the gap are the claim.)
    wgtt_mean = sum(wgtt["mean_loss"]) / len(wgtt["mean_loss"])
    base_mean = sum(base["mean_loss"]) / len(base["mean_loss"])
    assert wgtt_mean < 0.5 * base_mean
    assert wgtt_mean < 0.35
    # The baseline hits total-blackout bins; WGTT's worst stays lower.
    assert max(base["max_loss"]) >= 0.9
    assert max(wgtt["max_loss"]) < max(base["max_loss"]) + 1e-9
    # The controller really did remove duplicate uplink copies.
    assert result["wgtt"]["controller_duplicate_ratio"] > 0.0
