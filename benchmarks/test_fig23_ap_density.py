"""Figure 23 — dense vs sparse AP segments: WGTT holds useful
throughput in both; the dense segment is ahead (more diversity)."""

from conftest import banner, run_once

from repro.experiments import fig23
from repro.experiments.common import format_table


def test_fig23_ap_density(benchmark):
    result = run_once(benchmark, lambda: fig23.run(quick=True))
    banner(
        "Figure 23: UDP throughput, dense (AP1-4) vs sparse (AP5-7) "
        "segments",
        "WGTT consistently high in both; dense segment higher "
        "(paper: ~9.3 vs ~6.7 Mbit/s)",
    )
    print(
        format_table(
            result["rows"],
            [
                "speed_mph",
                "wgtt_dense_mbps", "wgtt_sparse_mbps",
                "baseline_dense_mbps", "baseline_sparse_mbps",
            ],
        )
    )
    for row in result["rows"]:
        # WGTT beats the baseline in the dense segment...
        assert row["wgtt_dense_mbps"] > row["baseline_dense_mbps"]
        # ...and its dense segment beats its own sparse segment.
        assert row["wgtt_dense_mbps"] > row["wgtt_sparse_mbps"]
        # WGTT stays usable even where APs are sparse.
        assert row["wgtt_sparse_mbps"] > 1.0
