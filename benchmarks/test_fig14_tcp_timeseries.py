"""Figure 14 — TCP timeseries at 15 mph: WGTT switches several times a
second and holds throughput; the baseline collapses mid-transit and
hits TCP timeouts."""

from conftest import banner, run_once

from repro.experiments import fig14


def test_fig14_tcp_timeseries(benchmark):
    result = run_once(
        benchmark, lambda: fig14.run(seed=3, protocol="tcp", quick=False)
    )
    banner(
        "Figure 14: TCP timeseries + association timeline (15 mph)",
        "WGTT ~5 switches/s, stable ~5 Mbit/s; baseline drops to zero "
        "and hits an RTO drought",
    )
    for scheme in ("wgtt", "baseline"):
        row = result[scheme]
        print(
            f"{scheme:9} thr={row['throughput_mbps']:6.2f} Mbit/s  "
            f"switches/s={row['switches_per_second']:4.1f}  "
            f"timeouts at {[round(t,1) for t in row['tcp_timeout_times_s']]}"
        )
        print(
            "          goodput/250ms:",
            " ".join(f"{g:4.1f}" for g in row["goodput_series_mbps"][:24]),
        )

    wgtt, base = result["wgtt"], result["baseline"]
    # WGTT switches an order of magnitude more often than the baseline.
    assert wgtt["switches_per_second"] > 3 * base["switches_per_second"]
    assert wgtt["switches_per_second"] >= 1.5
    # WGTT clearly ahead on throughput.
    assert wgtt["throughput_mbps"] > 1.8 * base["throughput_mbps"]
    # The baseline stalls: long zero stretches in its goodput series.
    zero_bins = sum(1 for g in base["goodput_series_mbps"] if g < 0.1)
    assert zero_bins >= 4
    # WGTT never has a comparably long blackout.
    wgtt_zero = sum(1 for g in wgtt["goodput_series_mbps"] if g < 0.1)
    assert wgtt_zero < zero_bins
