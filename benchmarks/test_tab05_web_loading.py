"""Table 5 — web page load time: flat and fast under WGTT at any speed;
slower (to never) under Enhanced 802.11r."""

from conftest import banner, run_once

from repro.experiments import tab05
from repro.experiments.common import format_table


def test_tab05_web_page_loading(benchmark):
    result = run_once(benchmark, lambda: tab05.run(seed=3, quick=False))
    banner(
        "Table 5: 2.1 MB page load time vs speed (6 connections)",
        "WGTT ~4.5 s at every speed; 802.11r 15-18 s at 5-10 mph and "
        "infinite at 15+ mph",
    )
    print(format_table(result["rows"], ["speed_mph", "wgtt_s", "baseline_s"]))

    rows = result["rows"]
    wgtt_times = [row["wgtt_s"] for row in rows]
    # WGTT always completes, with a roughly flat load time.
    assert all(t != float("inf") for t in wgtt_times)
    assert max(wgtt_times) / min(wgtt_times) < 3.0
    # The baseline is slower at every speed.
    for row in rows:
        assert row["baseline_s"] > row["wgtt_s"]
    # And meaningfully slower overall.
    finite_base = [r["baseline_s"] for r in rows if r["baseline_s"] != float("inf")]
    if finite_base:
        assert max(finite_base) > 1.3 * max(wgtt_times)
