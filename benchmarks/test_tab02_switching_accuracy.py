"""Table 2 — switching accuracy: WGTT keeps the client on the
oracle-best AP >90% of the time; Enhanced 802.11r ~20%."""

from conftest import banner, run_once

from repro.experiments import tab02
from repro.experiments.common import format_table


def test_tab02_switching_accuracy(benchmark):
    result = run_once(benchmark, lambda: tab02.run(seed=3, quick=False))
    banner(
        "Table 2: switching accuracy, 15 mph",
        "WGTT 90.1% (TCP) / 91.4% (UDP); 802.11r 20.2% / 18.7%",
    )
    print(format_table(result["rows"], ["protocol", "wgtt_pct", "baseline_pct"]))

    for row in result["rows"]:
        # WGTT tracks the optimal AP most of the time...
        assert row["wgtt_pct"] > 70.0
        # ...and stays clearly ahead of the baseline. (Our baseline's
        # UDP accuracy can exceed the paper's ~19% on lucky seeds —
        # narrow cells make "nearest AP" right more often; the ordering
        # and the WGTT level are the robust claims.)
        assert row["wgtt_pct"] > 1.15 * row["baseline_pct"]
    tcp_row = next(r for r in result["rows"] if r["protocol"] == "tcp")
    assert tcp_row["baseline_pct"] < 55.0
