"""Figures 19/20 — two-client driving formations: opposing directions
fare best (clients far apart), parallel worst (mutual carrier sense),
and WGTT beats the baseline in every case."""

from conftest import banner, run_once

from repro.experiments import fig20
from repro.experiments.common import format_table


def test_fig20_driving_patterns(benchmark):
    result = run_once(benchmark, lambda: fig20.run(quick=True))
    banner(
        "Figure 20: two-client driving patterns (15 mph)",
        "opposing > following > parallel; WGTT above the baseline in "
        "all three cases",
    )
    print(
        format_table(
            result["rows"],
            [
                "case",
                "tcp_wgtt_mbps", "tcp_baseline_mbps",
                "udp_wgtt_mbps", "udp_baseline_mbps",
            ],
        )
    )
    rows = {row["case"]: row for row in result["rows"]}
    for case, row in rows.items():
        assert row["tcp_wgtt_mbps"] > row["tcp_baseline_mbps"], case
        assert row["udp_wgtt_mbps"] > row["udp_baseline_mbps"], case
    # Opposing cars spend most of the drive far apart: best WGTT case.
    assert (
        rows["opposing"]["udp_wgtt_mbps"]
        >= rows["parallel"]["udp_wgtt_mbps"] * 0.95
    )
