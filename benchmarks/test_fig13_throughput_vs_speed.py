"""Figure 13 — the headline: TCP/UDP throughput vs driving speed.

Paper: WGTT roughly flat (~6.6 Mbit/s TCP, ~8.7 UDP) from 5-35 mph;
Enhanced 802.11r decays with speed (TCP 2.7 -> 0.8); the gain lands at
2.4-4.7x (TCP) and 2.6-4.0x (UDP) and grows with speed."""

from conftest import banner, run_once

from repro.experiments import fig13
from repro.experiments.common import format_table


def test_fig13_throughput_vs_speed(benchmark):
    result = run_once(benchmark, lambda: fig13.run(quick=True))
    banner(
        "Figure 13: bulk throughput vs speed (both schemes)",
        "WGTT flat across speeds; baseline decays; gain 2.4-4.7x TCP",
    )
    print(
        format_table(
            result["rows"],
            [
                "speed_mph",
                "tcp_wgtt_mbps", "tcp_baseline_mbps", "tcp_gain",
                "udp_wgtt_mbps", "udp_baseline_mbps", "udp_gain",
            ],
        )
    )
    rows = result["rows"]
    by_speed = {row["speed_mph"]: row for row in rows}
    fastest = max(by_speed)
    slowest = min(by_speed)

    # WGTT stays within a 2.5x band across speeds (flat-ish).
    for protocol in ("tcp", "udp"):
        wgtt = [row[f"{protocol}_wgtt_mbps"] for row in rows]
        assert min(wgtt) > 0
        assert max(wgtt) / min(wgtt) < 2.5
        # the baseline decays with speed
        assert (
            by_speed[fastest][f"{protocol}_baseline_mbps"]
            < by_speed[slowest][f"{protocol}_baseline_mbps"]
        )
        # the gain grows with speed
        assert (
            by_speed[fastest][f"{protocol}_gain"]
            > by_speed[slowest][f"{protocol}_gain"]
        )
    # At cruising speed and above, WGTT wins by at least ~2x on TCP
    # (the paper's band is 2.4-4.7x over 5-25 mph).
    assert by_speed[15.0]["tcp_gain"] > 1.8
    assert by_speed[fastest]["tcp_gain"] > 2.5
