"""Figure 24 — conferencing frame rate: the resolution-adaptive codec
(Hangouts) sustains a much higher fps than the fixed one (Skype)."""

from conftest import banner, run_once

from repro.experiments import fig24


def test_fig24_conferencing_fps(benchmark):
    result = run_once(benchmark, lambda: fig24.run(seed=3, quick=False))
    banner(
        "Figure 24: video-conferencing fps CDF over WGTT",
        "Skype ~20 fps at the 85th pct; Hangouts ~56 fps (it shrinks "
        "frames under loss instead of dropping them)",
    )
    for key in sorted(result):
        row = result[key]
        print(
            f"{key:18} median={row['median']:5.1f} fps  "
            f"p85={row['p85']:5.1f} fps  "
            f"(n={len(row['fps_series'])} seconds)"
        )

    for speed in ("5mph", "15mph"):
        skype = result[f"skype-{speed}"]
        hangouts = result[f"hangouts-{speed}"]
        # The adaptive codec sustains a substantially higher frame rate.
        assert hangouts["median"] > 1.4 * skype["median"]
        # The call stays alive (at most a rare mid-valley silent second).
        interior = skype["fps_series"][1:-1] or [1]
        assert sum(interior) > 0
        assert sum(1 for f in interior if f == 0) <= 2
        assert hangouts["p85"] > 40
        assert skype["p85"] <= 31  # bounded by its 30 fps capture rate
