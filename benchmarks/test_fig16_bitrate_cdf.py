"""Figure 16 — link bit-rate CDF at 15 mph: WGTT rides the best AP, so
its transmit-rate distribution sits well above the baseline's."""

from conftest import banner, run_once

from repro.experiments import fig16


def test_fig16_bitrate_cdf(benchmark):
    result = run_once(benchmark, lambda: fig16.run(seed=3, quick=False))
    banner(
        "Figure 16: CDF of the link bit rate (15 mph, TCP)",
        "WGTT 90th percentile ~70 Mbit/s, ~30 Mbit/s above the baseline",
    )
    for scheme in ("wgtt", "baseline"):
        row = result[scheme]
        print(
            f"{scheme:9} median={row['p50']:5.1f}  p90={row['p90']:5.1f} Mbit/s"
            f"  (n={len(row['rates_mbps'])})"
        )

    wgtt, base = result["wgtt"], result["baseline"]
    # WGTT's distribution dominates at the median.
    assert wgtt["p50"] >= base["p50"]
    assert wgtt["p50"] > 20.0
    # Its 90th percentile reaches the top single-stream MCS band.
    assert wgtt["p90"] >= 57.8
    # and the whole WGTT sample set is biased to higher rates
    mean_wgtt = sum(wgtt["rates_mbps"]) / len(wgtt["rates_mbps"])
    mean_base = sum(base["rates_mbps"]) / len(base["rates_mbps"])
    assert mean_wgtt > mean_base
