"""Ablations of WGTT's design choices (DESIGN.md §5/6).

The paper motivates each mechanism; these runs disable one at a time on
the otherwise-identical 15 mph TCP drive and check the mechanism did
what it is for. Throughput deltas for the subtler mechanisms are noisy
at this scale, so assertions target the *mechanism's observable*:
duplicate uplink copies removed, forwarded BAs applied, cross-channel
deafness, switching still functioning under every metric.
"""

from conftest import banner, run_once

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_wgtt_design_ablations(benchmark):
    result = run_once(benchmark, lambda: ablations.run(quick=True))
    banner(
        "Ablations: disable one WGTT mechanism at a time (15 mph, TCP)",
        "multi-channel loses overhearing diversity (§7); fan-out, BA "
        "forwarding and the median metric each support the full design",
    )
    print(
        format_table(
            result["rows"],
            [
                "variant", "throughput_mbps", "switches", "tcp_timeouts",
                "ba_forward_applied", "dedup_duplicates",
            ],
        )
    )
    rows = {row["variant"]: row for row in result["rows"]}
    paper = rows["paper"]

    # Every variant still switches and moves data (no hard collapse).
    for name, row in rows.items():
        assert row["switches"] > 3, name
        assert row["throughput_mbps"] > 0.5, name

    # The full design's uplink diversity produces duplicate copies for
    # the controller to remove; on disjoint channels overhearing (and
    # with it the de-dup work) collapses.
    assert paper["dedup_duplicates"] > 20
    assert (
        rows["multi-channel"]["dedup_duplicates"]
        < 0.2 * paper["dedup_duplicates"]
    )
    # Losing the single-channel diversity costs real throughput (§7's
    # argument for staying on one channel).
    assert (
        rows["multi-channel"]["throughput_mbps"]
        < 0.8 * paper["throughput_mbps"]
    )
    # BA forwarding actually repairs exchanges in the full design.
    assert paper["ba_forward_applied"] >= 1
    assert rows["no-ba-forwarding"]["ba_forward_applied"] == 0
    # The paper configuration is not dominated: it performs within 20%
    # of the best variant of the day (and typically at the top).
    best = max(row["throughput_mbps"] for row in rows.values())
    assert paper["throughput_mbps"] > 0.8 * best
