"""Figure 21 — choosing the selection window W: capacity loss is
minimized at a small-but-not-tiny window (paper: 10 ms) and grows for
large stale windows."""

from conftest import banner, run_once

from repro.experiments import fig21
from repro.experiments.common import format_table


def test_fig21_window_size(benchmark):
    result = run_once(benchmark, lambda: fig21.run(seed=3, quick=False))
    banner(
        "Figure 21: capacity loss vs selection window W (emulation)",
        "minimum near W = 10 ms; loss grows for windows that are much "
        "larger (stale medians) and for tiny noisy windows",
    )
    print(format_table(result["rows"], ["window_ms", "capacity_loss_mbps"]))
    print(f"best window: {result['best_window_ms']} ms")

    losses = {row["window_ms"]: row["capacity_loss_mbps"] for row in result["rows"]}
    # The optimum sits at a small window (<= 50 ms); second-scale
    # windows — what legacy roaming effectively uses — are clearly
    # worse. (Our simulated channel's geometry dominance flattens the
    # left side of the paper's U; see EXPERIMENTS.md.)
    assert result["best_window_ms"] <= 50
    assert losses[400] > 1.4 * losses[10]
    assert losses[200] > min(losses.values())
    # The paper's W = 10 ms choice is within ~15% of our optimum too.
    assert losses[10] <= 1.15 * min(losses.values())
