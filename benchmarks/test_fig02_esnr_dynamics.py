"""Figure 2 — the vehicular picocell regime: the best AP flips at
millisecond timescales as fast fading rides on top of cell geometry."""

from conftest import banner, run_once

from repro.experiments import fig02


def test_fig02_esnr_dynamics(benchmark):
    result = run_once(benchmark, lambda: fig02.run(seed=3, quick=True))
    banner(
        "Figure 2: ESNR dynamics at 25 mph",
        "best AP changes every few ms in the overlap zones; "
        "ESNR swings are fast (coherence ~2-3 ms)",
    )
    print(f"best-AP flips/s overall:   {result['flips_per_second']:8.1f}")
    print(f"best-AP flips/s contested: {result['contested_flips_per_second']:8.1f}")
    print(f"mean best-AP dwell:        {result['mean_best_dwell_ms']:8.1f} ms")
    print(f"time with top-2 APs close: {result['contested_fraction']:8.2f}")

    # Shape: millisecond-scale flipping, far beyond any second-scale
    # roaming scheme's reaction time.
    assert result["flips_per_second"] > 20
    assert result["mean_best_dwell_ms"] < 50
    assert result["contested_flips_per_second"] > result["flips_per_second"]
    # every AP's ESNR series actually varies (fading is alive)
    for series in result["esnr_series"].values():
        assert max(series) - min(series) > 5.0
