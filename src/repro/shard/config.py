"""Sharded-deployment tunables.

One :class:`ShardConfig` governs how a corridor testbed is partitioned
into contiguous AP-cluster shards (each owned by its own
``WgttController``) and how the inter-shard client handoff protocol
behaves.  The master switch lives on the testbed config
(``TestbedConfig.sharding_enabled``) so that, off, construction takes
the exact legacy single-controller path and stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ShardConfig:
    """Tunables of the sharded control plane."""

    #: Contiguous shards the AP corridor is partitioned into.  APs are
    #: split as evenly as possible, earlier shards taking the remainder.
    num_shards: int = 2

    #: Cadence of the shard manager's boundary scan — how often client
    #: positions are checked against shard boundaries to trigger
    #: inter-shard handoffs.
    scan_interval_us: int = 20_000

    #: Ack timeout for one ``shard-handoff`` state transfer.  Handoff
    #: messages ride the lossy backhaul data path (they are *not* in
    #: ``RELIABLE_KINDS``), so the sending shard retransmits the same
    #: handoff id until acked.
    handoff_timeout_us: int = 30_000

    #: Retransmissions before a handoff is abandoned; the client is
    #: then freshly re-associated in the destination shard (state lost,
    #: counted — never silently wedged).
    handoff_retry_limit: int = 5

    #: How far past a shard boundary a client must travel before a
    #: handoff fires.  Suppresses ping-pong for clients dawdling on the
    #: boundary line.
    boundary_hysteresis_m: float = 2.0

    #: Give every shard its own PR-3 warm standby (one
    #: ``StandbyController`` + ``HaCluster`` per shard).  Off by
    #: default: a shard controller is then a single point of failure
    #: for its region only.
    ha_enabled: bool = False

    def controller_id(self, shard: int) -> str:
        """Backhaul id of shard ``shard``'s primary controller."""
        return f"controller-s{shard}"

    def standby_id(self, shard: int) -> str:
        """Backhaul id of shard ``shard``'s warm standby."""
        return f"standby-s{shard}"
