"""Sharded control plane: per-region controllers + inter-shard handoff.

The corridor is partitioned into contiguous AP-cluster regions
(:class:`~repro.scenarios.builder.RegionSpec`); each region gets its
own :class:`~repro.core.controller.WgttController` (optionally with a
warm standby, ``ShardConfig.ha_enabled``).  The
:class:`ShardManager` owns the pieces a single controller used to own
globally:

* **ownership** — every client belongs to exactly one shard; both
  controllers near a boundary decode the client's frames, so each
  controller carries an ownership gate (``owns_client``) that drops
  unowned uplinks *before* de-duplication, keeping upstream delivery
  single-copy;
* **inter-shard handoff** — a boundary-crossing client's controller
  state moves between shards via the per-client checkpoint slice
  (:func:`repro.ha.checkpoint.extract_client_state`), shipped as a
  lossy ``"shard-handoff"`` backhaul message with ack +
  retransmission (see :mod:`repro.shard.handoff`);
* **routing** — server downlink ingress and serving-map queries go to
  the owning shard's active controller.

Clients are placed by the testbed's spatial AP index
(:class:`~repro.scenarios.spatial.ApGridIndex`), restricted to the
owning shard's APs, so candidate-set work stays O(nearby) no matter
how long the corridor grows.

Sharded scenarios require ``instant_association`` — over-the-air
association broadcasts sta-sync to every backhaul node, which would
register the client with every shard at once.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.access_point import WgttAccessPoint
from repro.core.assoc_sync import StaInfo
from repro.core.controller import WgttController
from repro.ha.checkpoint import (
    client_state_from_bytes,
    client_state_to_bytes,
    extract_client_state,
    merge_client_state,
)
from repro.obs.metrics import metric_key
from repro.shard.handoff import (
    HANDOFF_ACK_KIND,
    HANDOFF_ACK_WIRE_BYTES,
    HANDOFF_KIND,
    HandoffAck,
    HandoffMsg,
)
from repro.sim.engine import Timer

if TYPE_CHECKING:
    from repro.scenarios.builder import RegionSpec
    from repro.scenarios.testbed import ClientNode, Testbed

#: Receiving-side memory of completed handoff ids (duplicate arrivals
#: are re-acked, never re-merged); bounded FIFO.
COMPLETED_HANDOFF_CAP = 4096


class Shard:
    """One region's control plane: controller, APs, optional HA pair."""

    def __init__(
        self, testbed: "Testbed", region: "RegionSpec", manager: "ShardManager"
    ):
        self.region = region
        config = testbed.config
        self.controller = WgttController(
            testbed.sim,
            testbed.backhaul,
            testbed.rng,
            config.wgtt,
            controller_id=region.controller_id,
        )
        self.controller.on_uplink = testbed._deliver_uplink
        #: This shard's APs only (testbed.wgtt_aps is the global union).
        self.aps: Dict[str, WgttAccessPoint] = {}
        for offset, ap_id in enumerate(region.ap_ids):
            ap = WgttAccessPoint(
                testbed.sim,
                testbed.medium,
                testbed.backhaul,
                testbed.rng,
                ap_id,
                config.wgtt,
                controller_id=region.controller_id,
            )
            ap.device.channel = config.ap_channel(
                region.first_ap_index + offset
            )
            ap.device.start_beaconing()
            self.aps[ap_id] = ap
            testbed.wgtt_aps[ap_id] = ap
            self.controller.add_ap(ap_id)
        self.standby = None
        self.ha = None
        if region.standby_id is not None:
            from repro.ha.cluster import HaCluster
            from repro.ha.standby import StandbyController

            self.standby = StandbyController(
                testbed.sim,
                testbed.backhaul,
                testbed.rng,
                config.wgtt,
                controller_id=region.standby_id,
                primary_id=region.controller_id,
            )
            self.standby.on_uplink = testbed._deliver_uplink
            for ap_id in region.ap_ids:
                self.standby.add_ap(ap_id)
            self.ha = HaCluster(
                testbed.sim,
                testbed.backhaul,
                self.controller,
                self.standby,
                config.wgtt,
            )
            self.ha.start()
        # Shard glue on both ends of the (possible) HA pair: the
        # ownership gate and the handoff-kind dispatch survive a
        # promotion because the standby is wired identically.
        for ctrl in self.controllers():
            ctrl.owns_client = (
                lambda client_id, _k=region.shard, _c=ctrl: manager._owns(
                    _k, _c, client_id
                )
            )
            ctrl.on_unhandled = (
                lambda src, kind, payload, _k=region.shard, _c=ctrl: (
                    manager._on_controller_unhandled(_k, _c, src, kind, payload)
                )
            )

    def controllers(self) -> List[WgttController]:
        """Primary first, then the standby when HA is on."""
        out: List[WgttController] = [self.controller]
        if self.standby is not None:
            out.append(self.standby)
        return out

    def active_controller(self) -> Optional[WgttController]:
        if self.ha is not None:
            return self.ha.active_controller()
        return self.controller


class _PendingHandoff:
    """Sending-side record of one un-acked transfer."""

    __slots__ = (
        "client",
        "handoff_id",
        "from_shard",
        "to_shard",
        "data",
        "retries",
        "timer",
    )

    def __init__(
        self,
        client: str,
        handoff_id: int,
        from_shard: int,
        to_shard: int,
        data: bytes,
        timer: Timer,
    ):
        self.client = client
        self.handoff_id = handoff_id
        self.from_shard = from_shard
        self.to_shard = to_shard
        self.data = data
        self.retries = 0
        self.timer = timer


class ShardManager:
    """Owns the shards, the client→shard map, and the handoff protocol."""

    def __init__(self, testbed: "Testbed", regions: List["RegionSpec"]):
        if not testbed.config.instant_association:
            raise ValueError("sharding requires instant_association")
        self._testbed = testbed
        self._sim = testbed.sim
        self._backhaul = testbed.backhaul
        self.config = testbed.config.shard
        self.regions = list(regions)
        self.shards = [Shard(testbed, region, self) for region in regions]
        #: Boundary k sits midway between region k's last AP and region
        #: k+1's first AP.
        self._boundaries: List[float] = [
            (regions[k].ap_xs[-1] + regions[k + 1].ap_xs[0]) / 2.0
            for k in range(len(regions) - 1)
        ]
        #: client -> owning shard index (flips at handoff initiation).
        self._owner: Dict[str, int] = {}
        #: client -> live ClientNode (position source for placement).
        self._nodes: Dict[str, "ClientNode"] = {}
        #: client -> in-flight transfer awaiting ack.
        self._pending: Dict[str, _PendingHandoff] = {}
        self._completed: "OrderedDict[int, int]" = OrderedDict()
        self._next_handoff_id = 1
        self.stats = {
            "downlink_lost": 0,
            "downlink_unowned": 0,
            "handoff_bytes": 0,
            "handoff_duplicates": 0,
            "handoff_retries": 0,
            "handoffs_abandoned": 0,
            "handoffs_completed": 0,
            "handoffs_initiated": 0,
        }
        self._scan_timer = Timer(self._sim, self._scan_tick)
        if self.config.scan_interval_us > 0:
            self._scan_timer.start(self.config.scan_interval_us)

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------

    def _owns(
        self, shard_idx: int, controller: WgttController, client_id: str
    ) -> bool:
        """The per-controller uplink gate.

        Ownership alone is not enough: during a handoff's backhaul
        flight the receiving shard owns the client but has not merged
        its dedup window yet, so accepting uplinks there could deliver
        copies the sending shard already forwarded.  Requiring tracked
        membership closes that window (a brief uplink blackout, like
        the real handoff it models).
        """
        return (
            self._owner.get(client_id) == shard_idx
            and client_id in controller._clients
        )

    def owner_of(self, client_id: str) -> Optional[int]:
        return self._owner.get(client_id)

    def handoff_in_flight(self, client_id: str) -> bool:
        return client_id in self._pending

    def shard_for_x(self, x: float) -> int:
        return bisect_right(self._boundaries, x)

    def _target_shard(self, x: float, owner: int) -> int:
        """Boundary crossing with hysteresis (no flapping on a client
        idling exactly on a boundary)."""
        idx = self.shard_for_x(x)
        if idx == owner:
            return owner
        margin = self.config.boundary_hysteresis_m
        if idx > owner:
            return idx if x > self._boundaries[idx - 1] + margin else owner
        return idx if x < self._boundaries[idx] - margin else owner

    # ------------------------------------------------------------------
    # association / departure (testbed entry points)
    # ------------------------------------------------------------------

    def associate_instantly(self, client: "ClientNode") -> None:
        client_id = client.client_id
        position = client.track.position_at(self._sim.now)
        shard_idx = self.shard_for_x(position.x)
        self._owner[client_id] = shard_idx
        self._nodes[client_id] = client
        self._fresh_associate(client_id, shard_idx)

    def depart_client(self, client_id: str) -> None:
        pending = self._pending.pop(client_id, None)
        if pending is not None:
            pending.timer.stop()
        self._owner.pop(client_id, None)
        self._nodes.pop(client_id, None)
        for shard in self.shards:
            for ctrl in shard.controllers():
                if client_id in ctrl._clients:
                    ctrl.deregister_client(client_id)
                else:
                    # Neighbour shards accumulate CSI prewarm state for
                    # clients they never owned; free it.
                    ctrl.selector.forget_client(client_id)
                    ctrl._last_heard.pop(client_id, None)

    def _nearest_shard_ap(self, shard: Shard, position) -> Optional[str]:
        aps = shard.aps
        best = self._testbed.ap_index.nearest(
            position,
            predicate=lambda ap_id: ap_id in aps and aps[ap_id].alive,
        )
        if best is not None:
            return best
        return self._testbed.ap_index.nearest(
            position, predicate=lambda ap_id: ap_id in aps
        )

    def _fresh_associate(self, client_id: str, shard_idx: int) -> None:
        """Associate a client with a shard from scratch (t=0 arrival,
        churn arrival, or an abandoned handoff's self-heal path)."""
        shard = self.shards[shard_idx]
        ctrl = shard.active_controller()
        node = self._nodes.get(client_id)
        if ctrl is None or node is None:
            return  # control plane down; the scan loop retries
        if client_id in ctrl._clients:
            return
        position = node.track.position_at(self._sim.now)
        target = self._nearest_shard_ap(shard, position)
        if target is None:
            return
        info = StaInfo(
            client=client_id,
            associated_at_us=self._sim.now,
            first_ap=target,
        )
        for ap in shard.aps.values():
            if ap.alive:
                ap.directory.admit(info)
        ctrl.register_association(info)
        if shard.standby is not None:
            shard.standby.directory.admit(info)
        shard.aps[target].start_serving(client_id)

    # ------------------------------------------------------------------
    # boundary scan + handoff initiation (sending side)
    # ------------------------------------------------------------------

    def _scan_tick(self) -> None:
        now = self._sim.now
        for client_id in sorted(self._owner):
            if client_id in self._pending:
                continue
            node = self._nodes.get(client_id)
            if node is None:
                continue
            owner = self._owner[client_id]
            ctrl = self.shards[owner].active_controller()
            if ctrl is not None and client_id not in ctrl._clients:
                # Unfinished business (abandoned handoff with the
                # control plane down, say): re-associate from scratch.
                self._fresh_associate(client_id, owner)
                continue
            if ctrl is not None and ctrl.coordinator.busy(client_id):
                # Mid-switch-handshake: stop/start messages for this
                # client are in flight among the shard's APs.  Migrate
                # at a quiescent instant instead (next tick is 20 ms
                # away; handshakes finish in single-digit ms) so the
                # teardown broadcast cannot race a live handshake.
                continue
            target = self._target_shard(node.track.position_at(now).x, owner)
            if target != owner:
                self._initiate_handoff(client_id, owner, target)
        self._scan_timer.start(self.config.scan_interval_us)

    def _initiate_handoff(
        self, client_id: str, from_idx: int, to_idx: int
    ) -> None:
        ctrl_from = self.shards[from_idx].active_controller()
        ctrl_to = self.shards[to_idx].active_controller()
        if ctrl_from is None or ctrl_to is None:
            return  # either control plane down; retry next scan
        if client_id not in ctrl_from._clients:
            return
        state = extract_client_state(ctrl_from, client_id)
        data = client_state_to_bytes(state)
        # Deregistration aborts any in-flight switch and tells the old
        # shard's APs to drop the client — state was captured first.
        ctrl_from.deregister_client(client_id)
        self._owner[client_id] = to_idx
        handoff_id = self._next_handoff_id
        self._next_handoff_id += 1
        pending = _PendingHandoff(
            client_id,
            handoff_id,
            from_idx,
            to_idx,
            data,
            Timer(
                self._sim,
                lambda _c=client_id: self._handoff_timeout(_c),
            ),
        )
        self._pending[client_id] = pending
        self.stats["handoffs_initiated"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "shard",
                "shard-handoff-out",
                track="shard",
                client=client_id,
                handoff_id=handoff_id,
                from_shard=from_idx,
                to_shard=to_idx,
                bytes=len(data),
            )
        self._send_handoff(pending)

    def _send_handoff(self, pending: _PendingHandoff) -> None:
        src = self.shards[pending.from_shard].active_controller()
        dst = self.shards[pending.to_shard].active_controller()
        if src is not None and dst is not None:
            msg = HandoffMsg(
                client=pending.client,
                handoff_id=pending.handoff_id,
                from_shard=pending.from_shard,
                to_shard=pending.to_shard,
                state=pending.data,
            )
            self._backhaul.send(
                src.controller_id,
                dst.controller_id,
                HANDOFF_KIND,
                msg,
                size_bytes=msg.wire_size_bytes,
            )
            self.stats["handoff_bytes"] += msg.wire_size_bytes
        # Armed even when a controller is down: the timeout retries
        # against whichever controller is active by then.
        pending.timer.start(self.config.handoff_timeout_us)

    def _handoff_timeout(self, client_id: str) -> None:
        pending = self._pending.get(client_id)
        if pending is None:
            return
        pending.retries += 1
        tracer = self._sim.obs.trace
        if pending.retries > self.config.handoff_retry_limit:
            del self._pending[client_id]
            self.stats["handoffs_abandoned"] += 1
            if tracer.active:
                tracer.emit(
                    "shard",
                    "shard-handoff-abandon",
                    track="shard",
                    client=client_id,
                    handoff_id=pending.handoff_id,
                    to_shard=pending.to_shard,
                )
            # Self-heal: give up on the transferred history and start
            # the client fresh on the shard that now owns it.
            self._fresh_associate(client_id, pending.to_shard)
            return
        self.stats["handoff_retries"] += 1
        if tracer.active:
            tracer.emit(
                "shard",
                "shard-handoff-retry",
                track="shard",
                client=client_id,
                handoff_id=pending.handoff_id,
                retries=pending.retries,
            )
        self._send_handoff(pending)

    # ------------------------------------------------------------------
    # receiving side (via controller.on_unhandled)
    # ------------------------------------------------------------------

    def _on_controller_unhandled(
        self,
        shard_idx: int,
        controller: WgttController,
        src: str,
        kind: str,
        payload: object,
    ) -> None:
        if kind == HANDOFF_KIND:
            self._handle_handoff(shard_idx, controller, src, payload)
        elif kind == HANDOFF_ACK_KIND:
            self._handle_ack(payload)

    def _record_completed(self, handoff_id: int, shard_idx: int) -> None:
        self._completed[handoff_id] = shard_idx
        if len(self._completed) > COMPLETED_HANDOFF_CAP:
            self._completed.popitem(last=False)

    def _send_ack(
        self, controller: WgttController, dst: str, msg: HandoffMsg
    ) -> None:
        self._backhaul.send_control(
            controller.controller_id,
            dst,
            HANDOFF_ACK_KIND,
            HandoffAck(
                client=msg.client,
                handoff_id=msg.handoff_id,
                to_shard=msg.to_shard,
            ),
            size_bytes=HANDOFF_ACK_WIRE_BYTES,
        )

    def _handle_handoff(
        self,
        shard_idx: int,
        controller: WgttController,
        src: str,
        msg: HandoffMsg,
    ) -> None:
        shard = self.shards[shard_idx]
        if msg.handoff_id in self._completed:
            # Retransmission of a transfer already merged: the ack was
            # lost, not the handoff.  Never merge twice.
            self.stats["handoff_duplicates"] += 1
            self._send_ack(controller, src, msg)
            return
        client_id = msg.client
        node = self._nodes.get(client_id)
        if node is None:
            # Departed while the transfer was in flight; ack so the
            # sender stops retrying, merge nothing.
            self._record_completed(msg.handoff_id, shard_idx)
            self._send_ack(controller, src, msg)
            return
        position = node.track.position_at(self._sim.now)
        target = self._nearest_shard_ap(shard, position)
        if target is None or not shard.aps[target].alive:
            return  # nothing live to serve from; let the sender retry
        state = client_state_from_bytes(msg.state)
        info = StaInfo(
            client=client_id,
            associated_at_us=self._sim.now,
            first_ap=target,
        )
        for ap in shard.aps.values():
            if ap.alive:
                ap.directory.admit(info)
        merged = merge_client_state(controller, state, serving_ap=target)
        if merged:
            shard.aps[target].start_serving(client_id)
            if shard.standby is not None:
                shard.standby.directory.admit(info)
            self.stats["handoffs_completed"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "shard",
                    "shard-handoff-in",
                    track="shard",
                    client=client_id,
                    handoff_id=msg.handoff_id,
                    from_shard=msg.from_shard,
                    to_shard=shard_idx,
                    serving=target,
                )
        self._owner[client_id] = shard_idx
        self._record_completed(msg.handoff_id, shard_idx)
        self._send_ack(controller, src, msg)

    def _handle_ack(self, ack: HandoffAck) -> None:
        pending = self._pending.get(ack.client)
        if pending is None or pending.handoff_id != ack.handoff_id:
            return
        pending.timer.stop()
        del self._pending[ack.client]
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "shard",
                "shard-handoff-ack",
                track="shard",
                client=ack.client,
                handoff_id=ack.handoff_id,
                to_shard=ack.to_shard,
            )

    # ------------------------------------------------------------------
    # routing (testbed entry points)
    # ------------------------------------------------------------------

    def accept_downlink(self, packet) -> None:
        shard_idx = self._owner.get(packet.dst)
        if shard_idx is None:
            self.stats["downlink_unowned"] += 1
            return
        ctrl = self.shards[shard_idx].active_controller()
        if ctrl is None:
            self.stats["downlink_lost"] += 1
            return
        ctrl.accept_downlink(packet)

    def serving_ap(self, client_id: str) -> Optional[str]:
        shard_idx = self._owner.get(client_id)
        if shard_idx is None:
            return None
        ctrl = self.shards[shard_idx].active_controller()
        return ctrl.serving_ap(client_id) if ctrl is not None else None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def collect_metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "shard_count": len(self.shards),
            "shard_handoffs_pending": len(self._pending),
        }
        for name in sorted(self.stats):
            out[f"shard_{name}"] = self.stats[name]
        index = self._testbed.ap_index
        out["ap_index_queries"] = index.queries
        out["ap_index_scanned"] = index.scanned
        for k, shard in enumerate(self.shards):
            ctrl = shard.active_controller() or shard.controller
            out[metric_key("shard_clients", shard=k)] = len(ctrl._clients)
            out[metric_key("shard_switches", shard=k)] = len(
                ctrl.coordinator.history
            )
            out[metric_key("shard_uplink_unowned", shard=k)] = ctrl.stats[
                "uplink_unowned"
            ]
            out[metric_key("shard_dedup_window", shard=k)] = (
                ctrl.dedup.window_size()
            )
        return out
