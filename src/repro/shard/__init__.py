"""Sharded control plane: contiguous AP-cluster shards, each owned by
its own controller, with checkpoint-based inter-shard client handoff.

See ``docs/scaling.md`` for the deployment model and protocol.
"""

from repro.shard.config import ShardConfig
from repro.shard.handoff import (
    HANDOFF_ACK_KIND,
    HANDOFF_KIND,
    HandoffAck,
    HandoffMsg,
)
from repro.shard.manager import Shard, ShardManager

__all__ = [
    "HANDOFF_ACK_KIND",
    "HANDOFF_KIND",
    "HandoffAck",
    "HandoffMsg",
    "Shard",
    "ShardConfig",
    "ShardManager",
]
