"""Inter-shard handoff wire protocol.

When a client crosses a shard boundary, the sending shard's controller
serializes the client's slice of controller state (selection windows,
serving entry, index cursor, dedup keys — see
:func:`repro.ha.checkpoint.extract_client_state`) and ships it to the
receiving shard's controller as a ``"shard-handoff"`` backhaul data
message; the receiver replies with ``"shard-handoff-ack"`` on the
control path.

Neither kind is in :data:`repro.net.backhaul.RELIABLE_KINDS`: handoff
messages are deliberately subject to loss and the message-level
adversary, exactly like the switch handshake they resemble.  The shard
manager retransmits un-acked handoffs (same ``handoff_id``, so
duplicate arrivals are idempotent) and, past the retry limit, abandons
the transfer and re-associates the client freshly on the receiving
shard — self-healing at the cost of the transferred history.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Backhaul message kinds (deliberately absent from RELIABLE_KINDS).
HANDOFF_KIND = "shard-handoff"
HANDOFF_ACK_KIND = "shard-handoff-ack"

#: Header overhead on top of the serialized client state.
HANDOFF_BASE_WIRE_BYTES = 64
HANDOFF_ACK_WIRE_BYTES = 64


@dataclass(frozen=True)
class HandoffMsg:
    """One client-state transfer attempt (retransmissions reuse the
    same ``handoff_id``, making duplicate delivery idempotent)."""

    client: str
    handoff_id: int
    from_shard: int
    to_shard: int
    #: Canonical bytes from ``client_state_to_bytes``.
    state: bytes

    @property
    def wire_size_bytes(self) -> int:
        return HANDOFF_BASE_WIRE_BYTES + len(self.state)


@dataclass(frozen=True)
class HandoffAck:
    """Receiving shard's acknowledgement (also re-sent on duplicates)."""

    client: str
    handoff_id: int
    to_shard: int
