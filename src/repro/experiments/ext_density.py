"""Extension experiment: throughput vs AP deployment density.

The paper's framing (§1, Cooper's law) is that capacity comes from
shrinking cells; §7 proposes larger deployments. This sweep varies the
AP spacing over the same road length and measures what a WGTT client
actually gets — the densification curve the paper motivates but never
plots. Denser arrays keep the client nearer to *some* boresight and
deepen the fan-out/diversity; beyond a point, extra APs on one channel
add beacon overhead and switching churn without new capacity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import mean, seeds_for
from repro.experiments.runner import run_grid
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment

#: Spacings to sweep; the paper's testbed is 7.5 m.
SPACINGS_M = (5.0, 7.5, 10.0, 15.0)
ROAD_SPAN_M = 52.5  # the default testbed's AP0..AP7 extent


def run_spacing(
    seed: int, spacing_m: float, speed_mph: float = 15.0,
    duration_s: float = 8.0,
) -> Dict:
    num_aps = max(2, int(round(ROAD_SPAN_M / spacing_m)) + 1)
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        num_aps=num_aps,
        ap_spacing_m=spacing_m,
        client_speeds_mph=[speed_mph],
    )
    testbed = build_testbed(config)
    sender, _receiver = testbed.add_downlink_tcp_flow(0)
    sender.start()
    testbed.run_seconds(duration_s)
    return {
        "spacing_m": spacing_m,
        "num_aps": num_aps,
        "throughput_mbps": sender.throughput_mbps(testbed.sim.now),
        "switches_per_s": len(testbed.controller.coordinator.history)
        / duration_s,
    }


@register_experiment("ext_density", "throughput vs AP deployment density")
def run(
    quick: bool = True, speed_mph: float = 15.0, jobs: Optional[int] = None
) -> Dict:
    seeds = seeds_for(quick)
    grid = [
        (seed, spacing, speed_mph)
        for spacing in SPACINGS_M
        for seed in seeds
    ]
    results = iter(run_grid(run_spacing, grid, jobs=jobs))
    rows: List[Dict] = []
    for spacing in SPACINGS_M:
        cells = [next(results) for _ in seeds]
        rows.append(
            {
                "spacing_m": spacing,
                "num_aps": cells[0]["num_aps"],
                "throughput_mbps": mean(c["throughput_mbps"] for c in cells),
                "switches_per_s": mean(c["switches_per_s"] for c in cells),
            }
        )
    return {"rows": rows}
