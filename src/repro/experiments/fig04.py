"""Figure 4: stock 802.11r in the picocell regime (§2).

Two APs 7.5 m apart, a constant-rate UDP stream to a client driving by
at 5 and at 20 mph, running the *stock* 802.11r roaming policy (which
waits for a 5 s RSSI history before deciding). At 20 mph the handover
fails outright — the client leaves AP1's range before the decision can
be made; at 5 mph the handover happens, but far later than it should,
and capacity is lost either way.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.enhanced_80211r import stock_80211r_config
from repro.metrics.capacity import CapacityLossMeter
from repro.scenarios.presets import two_ap_config
from repro.sim.engine import SECOND
from repro.experiments.registry import register_experiment


def run_speed(seed: int, speed_mph: float, udp_rate_bps: float = 30e6) -> Dict:
    from repro.scenarios.testbed import build_testbed

    config = two_ap_config(
        seed=seed,
        scheme="baseline",
        client_speeds_mph=[speed_mph],
        roaming=stock_80211r_config(),
    )
    testbed = build_testbed(config)
    meter = CapacityLossMeter(testbed, sample_period_us=20_000)
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=udp_rate_bps)
    source.start()
    duration_s = min(testbed.transit_duration_us() / SECOND, 30.0)
    testbed.run_seconds(duration_s)
    agent = testbed.clients[0].agent
    handovers = max(0, len(agent.association_log) - 1)
    last_rx_us = sink.arrivals[-1][0] if sink.arrivals else 0
    return {
        "speed_mph": speed_mph,
        "duration_s": duration_s,
        "handover_completed": handovers > 0,
        "handover_time_s": (
            agent.association_log[1][0] / SECOND if handovers else None
        ),
        "failed_handovers": agent.failed_handovers,
        "packets_received": sink.packets_received(),
        "received_seq_series": [(t, seq) for t, seq, _, _ in sink.arrivals],
        "last_reception_s": last_rx_us / SECOND,
        "capacity_loss_mbps": meter.mean_loss_mbps(),
        "accumulated_loss_mbit": meter.mean_loss_mbps() * duration_s,
        "best_capacity_mbps": meter.mean_best_mbps(),
    }


@register_experiment("fig04", "stock 802.11r handover failure")
def run(seed: int = 3, quick: bool = False) -> Dict:
    """Both drive-by speeds; the paper's qualitative claims are that the
    20 mph handover fails and the 5 mph one is late, with capacity loss
    larger at the slower speed (more time spent on the wrong AP)."""
    results = {
        "20mph": run_speed(seed, 20.0),
        "5mph": run_speed(seed, 5.0),
    }
    return results
