"""Table 2: switching accuracy of WGTT vs Enhanced 802.11r.

Accuracy = fraction of time the client is attached to the AP with the
maximal instantaneous ESNR (oracle-sampled, non-perturbing). The paper:
WGTT > 90 % for both TCP and UDP; Enhanced 802.11r ~20 %.
"""

from __future__ import annotations

from typing import Dict

from repro.metrics.accuracy import SwitchingAccuracyMeter
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_cell(
    seed: int, scheme: str, protocol: str, duration_s: float = 10.0
) -> float:
    config = TestbedConfig(seed=seed, scheme=scheme, client_speeds_mph=[15.0])
    testbed = build_testbed(config)
    meter = SwitchingAccuracyMeter(testbed, sample_period_us=20_000)
    if protocol == "tcp":
        sender, _ = testbed.add_downlink_tcp_flow(0)
        sender.start()
    else:
        source, _ = testbed.add_downlink_udp_flow(0, rate_bps=50e6)
        source.start()
    testbed.run_seconds(duration_s)
    return meter.accuracy()


@register_experiment("tab02", "switching accuracy")
def run(seed: int = 3, quick: bool = False) -> Dict:
    duration = 6.0 if quick else 10.0
    rows = []
    for protocol in ("tcp", "udp"):
        rows.append(
            {
                "protocol": protocol,
                "wgtt_pct": 100.0 * run_cell(seed, "wgtt", protocol, duration),
                "baseline_pct": 100.0
                * run_cell(seed, "baseline", protocol, duration),
            }
        )
    return {"rows": rows}
