"""Table 5: web page load time at different driving speeds.

A 2.1 MB page over six parallel connections, loaded while driving past
the array. The paper: ~4.5 s with WGTT at every speed; 15–18 s with
Enhanced 802.11r at 5–10 mph and never completing at 15+ mph.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.web import PageLoad
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND
from repro.experiments.registry import register_experiment

SPEEDS = (5.0, 10.0, 15.0, 20.0)


def run_cell(seed: int, scheme: str, speed_mph: float) -> float:
    """Average load time over back-to-back page loads during the
    transit (the paper repeats the fetch 10 times and averages).
    Returns infinity when no load completes — the paper's "∞" cells.
    """
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    transit_s = min(testbed.transit_duration_us() / SECOND, 30.0)
    step = 0.25
    elapsed = 0.0
    times: List[float] = []
    page = PageLoad(testbed)
    while elapsed < transit_s:
        testbed.run_seconds(step)
        elapsed += step
        if page.complete:
            times.append(page.load_time_s())
            page = PageLoad(testbed)  # immediately load the next copy
    if not times:
        return float("inf")
    if not page.complete:
        # The final, unfinished load is censored at the transit end; it
        # is at least this slow, so include it as a lower bound rather
        # than silently surviving on the fast loads only.
        censored_s = (testbed.sim.now - page.started_us) / SECOND
        if censored_s > 0.5 * step:
            times.append(censored_s)
    return sum(times) / len(times)


@register_experiment("tab05", "web page load time")
def run(seed: int = 3, quick: bool = False) -> Dict:
    speeds = (5.0, 15.0) if quick else SPEEDS
    rows: List[Dict] = []
    for speed in speeds:
        rows.append(
            {
                "speed_mph": speed,
                "wgtt_s": run_cell(seed, "wgtt", speed),
                "baseline_s": run_cell(seed, "baseline", speed),
            }
        )
    return {"rows": rows}
