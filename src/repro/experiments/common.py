"""Shared helpers for the per-figure experiment drivers.

Every driver exposes ``run(seed=..., quick=...) -> dict`` returning the
rows/series its figure or table reports. ``quick`` trims seeds and
durations so the benchmark suite stays tractable; the shapes the paper
reports survive the trimming.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


#: Seeds used when averaging runs.
FULL_SEEDS = (3, 7, 11, 19, 23)
QUICK_SEEDS = (3, 7)


def seeds_for(quick: bool) -> tuple:
    return QUICK_SEEDS if quick else FULL_SEEDS


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_table(rows: List[Dict], columns: List[str]) -> str:
    """Plain-text table used by the benches to print paper-style rows."""
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"
    return str(value)
