"""Extension experiment: chaos sweep — crash rate × partition duration.

The paper's deployment ran eight healthy APs for a week; a transit
network runs thousands of cells for years, and cells *will* die.  This
sweep turns the fault-injection subsystem (:mod:`repro.faults`) loose
on the standard drive-by: AP crashes arrive as a Poisson process,
backhaul partitions cut AP subsets off the controller, and each cell
reports

* **failover latency** — crash instant → client re-served by a live AP
  (heartbeat detection lag + emergency handshake), from the
  :class:`~repro.metrics.recorder.FailoverAudit` join;
* **throughput retained** — chaos-run TCP throughput over the
  fault-free twin run of the same seed;
* **deadline violations** — recoveries slower than
  ``failover_deadline_us`` (default 100 ms) plus clients never
  recovered.

``main()`` also exposes a ``--smoke`` mode for CI: one mid-drive crash
of the serving AP, asserting recovery within the deadline and TCP
forward progress afterwards (nonzero exit on violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.experiments.common import mean, seeds_for
from repro.experiments.runner import run_grid
from repro.faults.plan import ApCrash, FaultPlan
from repro.metrics.recorder import FailoverAudit
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND
from repro.sim.rng import RngRegistry
from repro.experiments.registry import register_experiment

#: AP crash arrival rates to sweep (per second of sim time).
CRASH_RATES_PER_S = (0.1, 0.3)
#: Backhaul partition durations to sweep (seconds; 0 = no partitions).
PARTITION_DURATIONS_S = (0.0, 0.2)
#: Partition arrival rate whenever partitions are enabled.
PARTITION_RATE_PER_S = 0.2
#: How long a crashed AP stays down before restarting.
CRASH_DOWN_US = 500_000


def _plan_for(
    seed: int,
    ap_ids: List[str],
    duration_us: int,
    crash_rate_per_s: float,
    partition_duration_s: float,
) -> FaultPlan:
    """Draw the cell's fault schedule from its own named streams.

    The plan registry is spawned off the run seed, so plan draws can
    never perturb the testbed's channel/MAC streams — and the same
    (seed, rates) always yields the same plan.
    """
    plan_rng = RngRegistry(seed).spawn("faultplan")
    return FaultPlan.random(
        plan_rng,
        ap_ids,
        duration_us,
        crash_rate_per_s=crash_rate_per_s,
        crash_down_us=CRASH_DOWN_US,
        partition_rate_per_s=(
            PARTITION_RATE_PER_S if partition_duration_s > 0 else 0.0
        ),
        partition_duration_us=int(partition_duration_s * SECOND),
    )


def run_cell(
    seed: int,
    crash_rate_per_s: float,
    partition_duration_s: float,
    duration_s: float = 8.0,
) -> Dict:
    """One chaos run plus its fault-free twin, same seed."""
    duration_us = int(duration_s * SECOND)
    ap_ids = [f"ap{i}" for i in range(TestbedConfig().num_aps)]
    plan = _plan_for(
        seed, ap_ids, duration_us, crash_rate_per_s, partition_duration_s
    )

    def one_run(fault_plan: Optional[FaultPlan]) -> Dict:
        config = TestbedConfig(seed=seed, scheme="wgtt", fault_plan=fault_plan)
        testbed = build_testbed(config)
        sender, _receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(duration_s)
        out = {
            "throughput_mbps": sender.throughput_mbps(testbed.sim.now),
            "switches": len(testbed.controller.coordinator.history),
        }
        if fault_plan is not None:
            audit = FailoverAudit(testbed)
            out["audit"] = audit.summary()
            out["failover_ms"] = audit.failover_latencies_ms()
        return out

    baseline = one_run(None)
    chaos = one_run(plan)
    retained = (
        chaos["throughput_mbps"] / baseline["throughput_mbps"]
        if baseline["throughput_mbps"] > 0
        else 0.0
    )
    return {
        "crash_rate_per_s": crash_rate_per_s,
        "partition_s": partition_duration_s,
        "planned_faults": len(plan),
        "crashes": chaos["audit"]["crashes"],
        "throughput_mbps": chaos["throughput_mbps"],
        "throughput_retained": retained,
        "failover_ms": chaos["failover_ms"],
        "deadline_violations": chaos["audit"]["deadline_violations"],
    }


@register_experiment(
    "ext_faults",
    "chaos sweep: crash rate x partition duration",
    smoke="run_smoke",
)
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    seeds = seeds_for(quick)
    duration_s = 8.0 if quick else 12.0
    grid = [
        (seed, crash_rate, partition_s, duration_s)
        for crash_rate in CRASH_RATES_PER_S
        for partition_s in PARTITION_DURATIONS_S
        for seed in seeds
    ]
    results = iter(run_grid(run_cell, grid, jobs=jobs))
    rows: List[Dict] = []
    for crash_rate in CRASH_RATES_PER_S:
        for partition_s in PARTITION_DURATIONS_S:
            cells = [next(results) for _ in seeds]
            latencies = [v for c in cells for v in c["failover_ms"]]
            rows.append(
                {
                    "crash_rate_per_s": crash_rate,
                    "partition_s": partition_s,
                    "crashes": sum(c["crashes"] for c in cells),
                    "throughput_mbps": mean(
                        c["throughput_mbps"] for c in cells
                    ),
                    "throughput_retained": mean(
                        c["throughput_retained"] for c in cells
                    ),
                    "mean_failover_ms": mean(latencies) if latencies else None,
                    "max_failover_ms": (
                        max(latencies) if latencies else None
                    ),
                    "deadline_violations": sum(
                        c["deadline_violations"] for c in cells
                    ),
                }
            )
    return {"rows": rows}


# ----------------------------------------------------------------------
# CI smoke: one deterministic mid-drive crash, hard pass/fail
# ----------------------------------------------------------------------


def run_smoke(seed: int = 3) -> Dict:
    """Crash the serving AP mid-drive; fail unless the client recovers
    within the configured deadline *and* TCP makes forward progress."""
    config = TestbedConfig(seed=seed, scheme="wgtt")
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    sender.start()

    # Let the drive settle, then kill whichever AP is serving.
    testbed.run_seconds(2.0)
    victim = testbed.serving_ap_of(0)
    crash_us = testbed.sim.now
    plan = FaultPlan(
        [ApCrash(at_us=crash_us, ap_id=victim, down_us=2 * SECOND)]
    )
    testbed.install_fault_plan(plan)
    deadline_us = config.wgtt.failover_deadline_us

    # Segments delivered by the crash instant, then run out the drive.
    segments_at_crash = receiver.rcv_nxt
    testbed.run_seconds(3.0)

    audit = FailoverAudit(testbed)
    summary = audit.summary()
    recoveries = audit.crash_recoveries()
    progressed = receiver.rcv_nxt > segments_at_crash
    ok = (
        summary["crashes"] == 1
        and summary["recovered"] >= 1
        and summary["unrecovered"] == 0
        and summary["deadline_violations"] == 0
        and progressed
    )
    return {
        "ok": ok,
        "victim": victim,
        "crash_us": crash_us,
        "deadline_ms": deadline_us / 1_000.0,
        "failover_ms": audit.failover_latencies_ms(),
        "recovered_to": [
            new_ap for r in recoveries for (_, _, new_ap) in r.recoveries
        ],
        "tcp_forward_progress": progressed,
        "summary": summary,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ext_faults", description="chaos sweep / failover smoke"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="one mid-drive crash; exit 1 on violation")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        result = run_smoke(seed=args.seed)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    result = run(quick=not args.full, jobs=args.jobs)
    print(json.dumps(result, indent=2, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
