"""Table 1: running time of the switching protocol vs offered load.

The paper measures the stop → start → ack round at UDP offered loads of
50–90 Mbit/s: mean 17–21 ms with 3–5 ms standard deviation, roughly
flat across load (the cost is kernel/user processing, not queue depth).
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.stats import summarize
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_rate(seed: int, rate_mbps: float, duration_s: float = 8.0) -> Dict:
    config = TestbedConfig(
        seed=seed, scheme="wgtt", client_speeds_mph=[15.0]
    )
    testbed = build_testbed(config)
    source, _sink = testbed.add_downlink_udp_flow(0, rate_bps=rate_mbps * 1e6)
    source.start()
    testbed.run_seconds(duration_s)
    durations_ms = testbed.controller.switch_durations_ms()
    stats = summarize(durations_ms)
    return {
        "rate_mbps": rate_mbps,
        "switches": stats["n"],
        "mean_ms": stats["mean"],
        "std_ms": stats["std"],
    }


@register_experiment("tab01", "switching-protocol execution time")
def run(seed: int = 3, quick: bool = False) -> Dict:
    rates = [50, 70, 90] if quick else [50, 60, 70, 80, 90]
    rows: List[Dict] = [run_rate(seed, rate) for rate in rates]
    return {"rows": rows}
