"""Figure 18: uplink UDP loss with three mobile clients.

Three clients each push an uplink UDP stream while driving. Under WGTT
every AP that overhears a datagram forwards it (the controller
de-duplicates), so windowed loss stays near zero; the baseline's single
uplink path spikes whenever the serving AP lags the client.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.recorder import UplinkLossMeter
from repro.scenarios.presets import multi_client_config
from repro.scenarios.testbed import build_testbed
from repro.sim.engine import SECOND, Timer
from repro.experiments.registry import register_experiment


def run_scheme(
    seed: int,
    scheme: str,
    num_clients: int = 3,
    duration_s: float = 9.0,
    rate_bps: float = 2e6,
) -> Dict:
    config = multi_client_config(
        num_clients, speed_mph=15.0, seed=seed, scheme=scheme
    )
    testbed = build_testbed(config)
    meters: List[UplinkLossMeter] = []
    for i in range(num_clients):
        source, sink = testbed.add_uplink_udp_flow(i, rate_bps=rate_bps)
        source.start()
        meter = UplinkLossMeter(testbed.sim, source, sink, bin_us=SECOND // 2)
        meters.append(meter)

    def tick():
        for meter in meters:
            meter.sample()
        timer.start(SECOND // 2)

    timer = Timer(testbed.sim, tick)
    timer.start(SECOND // 2)
    testbed.run_seconds(duration_s)
    # Score each client only while it is inside the deployment — the
    # following clients start behind the first AP and genuinely have no
    # coverage for the first seconds of the run.
    first_x = testbed.config.ap_xs()[0] - 3.0
    last_x = testbed.config.ap_xs()[-1] + 3.0
    series = []
    for i, meter in enumerate(meters):
        track = testbed.clients[i].track
        in_coverage = [
            loss
            for t, loss in meter.series
            if first_x <= track.position_at(t).x <= last_x
        ]
        series.append(in_coverage)
    dup_ratio = (
        testbed.controller.dedup.duplicate_ratio()
        if testbed.controller is not None
        else 0.0
    )
    return {
        "scheme": scheme,
        "loss_series": series,
        "mean_loss": [
            sum(s) / len(s) if s else 0.0 for s in series
        ],
        "max_loss": [max(s) if s else 0.0 for s in series],
        "controller_duplicate_ratio": dup_ratio,
    }


@register_experiment("fig18", "multi-client uplink loss")
def run(seed: int = 3, quick: bool = False) -> Dict:
    duration = 6.0 if quick else 9.0
    return {
        "wgtt": run_scheme(seed, "wgtt", duration_s=duration),
        "baseline": run_scheme(seed, "baseline", duration_s=duration),
    }
