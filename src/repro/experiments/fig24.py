"""Figure 24: video conferencing frame rate CDF.

A two-party call with one end on the vehicle: bidirectional frame
streams over UDP under WGTT. Skype keeps its resolution and delivers
~20 fps at the 85th percentile; Hangouts shrinks frames under loss and
sustains a much higher frame rate — the paper measures ~56 fps.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.conferencing import (
    HANGOUTS,
    SKYPE,
    ConferencingReceiver,
    ConferencingSender,
)
from repro.metrics.stats import cdf_points, percentile
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_call(
    seed: int,
    codec,
    speed_mph: float,
    scheme: str = "wgtt",
    duration_s: float = 10.0,
) -> Dict:
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    client = testbed.clients[0]
    # Downlink leg (conference room -> vehicle).
    down = ConferencingSender(
        testbed.sim, "server", client.client_id, testbed.send_downlink,
        codec, flow_id="conf-down",
    )
    down_rx = ConferencingReceiver(testbed.sim, "conf-down", down)
    client.host.attach_raw("conf-down", down_rx.on_packet)
    # Uplink leg (vehicle -> conference room).
    up = ConferencingSender(
        testbed.sim, client.client_id, "server", client.send_uplink,
        codec, flow_id="conf-up",
    )
    up_rx = ConferencingReceiver(testbed.sim, "conf-up", up)
    testbed.server_host.attach_raw("conf-up", up_rx.on_packet)
    down.start()
    up.start()
    testbed.run_seconds(duration_s)
    fps = down_rx.fps_series()
    return {
        "codec": codec.name,
        "speed_mph": speed_mph,
        "fps_series": fps,
        "cdf": cdf_points(fps),
        "p85": percentile(fps, 85) if fps else 0.0,
        "median": percentile(fps, 50) if fps else 0.0,
        "uplink_fps_series": up_rx.fps_series(),
    }


@register_experiment("fig24", "conferencing fps CDF")
def run(seed: int = 3, quick: bool = False) -> Dict:
    duration = 6.0 if quick else 10.0
    speeds = (15.0,) if quick else (5.0, 15.0)
    results: Dict = {}
    for codec in (SKYPE, HANGOUTS):
        for speed in speeds:
            key = f"{codec.name}-{int(speed)}mph"
            results[key] = run_call(seed, codec, speed, duration_s=duration)
    return results
