"""Table 4: HD video rebuffer ratio at different speeds.

A locally served 720p stream is watched during the transit; the metric
is the fraction of the transit spent stalled (after the initial
pre-buffer). The paper: zero for WGTT at every speed; 0.54–0.69 for
Enhanced 802.11r, decreasing with speed only because faster transits
are shorter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.video import VideoPlayer
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND
from repro.experiments.registry import register_experiment

SPEEDS = (5.0, 10.0, 15.0, 20.0)


def run_cell(seed: int, scheme: str, speed_mph: float) -> Dict:
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    player = VideoPlayer(testbed.sim, receiver)
    sender.start()
    transit_us = min(testbed.transit_duration_us(), 30 * SECOND)
    testbed.run_seconds(transit_us / SECOND)
    player.stop()
    return {
        "rebuffer_ratio": player.rebuffer_ratio(transit_us),
        "rebuffer_count": player.rebuffer_count,
    }


@register_experiment("tab04", "video rebuffer ratio")
def run(seed: int = 3, quick: bool = False) -> Dict:
    speeds = (5.0, 15.0) if quick else SPEEDS
    rows: List[Dict] = []
    for speed in speeds:
        wgtt = run_cell(seed, "wgtt", speed)
        baseline = run_cell(seed, "baseline", speed)
        rows.append(
            {
                "speed_mph": speed,
                "wgtt_ratio": wgtt["rebuffer_ratio"],
                "baseline_ratio": baseline["rebuffer_ratio"],
                "wgtt_rebuffers": wgtt["rebuffer_count"],
                "baseline_rebuffers": baseline["rebuffer_count"],
            }
        )
    return {"rows": rows}
