"""Parallel fan-out for the per-figure experiment grids.

Every figure driver is, structurally, the same computation: evaluate an
independent simulation cell at every point of a small parameter grid
(scheme × protocol × speed × seed …) and aggregate.  The cells share no
state — each builds its own :class:`Simulator` and RNG registry from the
seed — so they parallelize embarrassingly.

:func:`run_grid` is the one fan-out primitive the drivers use.  Its
contract is *determinism first*:

* the grid is materialized up front and every cell is keyed by its
  position, not by completion time;
* results come back in grid order regardless of worker scheduling, so
  ``jobs=N`` output is byte-identical to ``jobs=1`` for the same seeds
  (the parity test in ``tests/test_perf_equivalence.py`` asserts this);
* ``jobs<=1`` short-circuits to a plain in-process loop — no executor,
  no pickling, nothing to go wrong on constrained CI boxes.

The cell function must be a module-level callable and its grid points
picklable (the drivers pass primitives and tuples only), because workers
are separate processes.

The module-level default lets ``repro experiment --jobs N`` configure
parallelism once without threading a ``jobs`` kwarg through every
driver's signature; drivers still accept an explicit ``jobs=`` override.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

#: Process-wide default used when a driver is called without ``jobs=``.
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = max(1, int(jobs))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """An explicit ``jobs`` argument, or the process-wide default."""
    if jobs is None:
        return _DEFAULT_JOBS
    return max(1, int(jobs))


def available_jobs() -> int:
    """Worker count that saturates this machine (for ``--jobs 0``)."""
    return os.cpu_count() or 1


def run_grid(
    cell: Callable,
    grid: Iterable[Tuple],
    jobs: Optional[int] = None,
) -> List:
    """Evaluate ``cell(*point)`` for every grid point, in grid order.

    Serial when ``jobs<=1`` (or for a single point); otherwise fans out
    over a :class:`~concurrent.futures.ProcessPoolExecutor` and collects
    results in submission order, which makes the output independent of
    worker scheduling — the determinism contract above.

    The worker count is clamped to the number of points *and* to the
    machine's core count: simulation cells are CPU-bound, so
    oversubscription buys nothing and costs context switches and cache
    thrash (``make -j`` and joblib apply the same clamp).  A clamp to 1
    short-circuits to the serial loop; the result is identical either
    way.
    """
    points: Sequence[Tuple] = list(grid)
    jobs = resolve_jobs(jobs)
    workers = min(jobs, len(points), available_jobs())
    if workers <= 1 or len(points) <= 1:
        return [cell(*point) for point in points]

    from concurrent.futures import ProcessPoolExecutor
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(cell, *point) for point in points]
        # In submission (= grid) order, NOT completion order.
        return [future.result() for future in futures]
