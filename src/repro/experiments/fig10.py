"""Figure 10: ESNR heatmap of the road, per AP.

Samples mean ESNR on a grid along (x) and across (y) the road for each
AP, with fading averaged out, reproducing the coverage heatmap: cells
centred on each AP's boresight, overlapping 6–10 m with neighbours.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.phy.esnr import effective_snr_db
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


@register_experiment("fig10", "ESNR coverage heatmap")
def run(
    seed: int = 3,
    x_step_m: float = 1.0,
    y_values: tuple = (0.0, 1.75, 3.5),
    usable_esnr_db: float = 8.5,
    quick: bool = False,
) -> Dict:
    """``usable_esnr_db`` defines coverage: ~8.5 dB sustains MCS2-3,
    a sensible "the link works here" line in this link budget; it
    reproduces the 6-10 m adjacent-AP overlap of the paper's heatmap."""
    config = TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[0.0])
    testbed = build_testbed(config)
    client = testbed.clients[0]
    track = client.track
    xs = list(np.arange(0.0, testbed.road.length_m, x_step_m))
    heatmap: Dict[str, List[List[float]]] = {}
    # Move the (static) client across the grid by editing its track
    # start position; fading is bypassed via the mean-SNR term.
    for ap_id in testbed.ap_ids:
        rows = []
        for y in y_values:
            row = []
            for x in xs:
                track.start_x = x
                # use the lane offset for y by adjusting... the track's
                # road lane y is fixed; emulate the across-road position
                # via direction choice? Simpler: temporary road tweak.
                original = track.road
                from repro.mobility.road import Road

                track.road = Road(
                    length_m=original.length_m,
                    near_lane_y=y,
                    far_lane_y=original.far_lane_y,
                )
                # The track was mutated at a fixed sim time, so the
                # channel's time-keyed geometry memos are stale.
                testbed.channel.invalidate_geometry()
                link = testbed.channel.link(ap_id, client.client_id)
                mean_snr = link.mean_snr_db(testbed.sim.now, tx_id=ap_id)
                flat = np.full(56, mean_snr)
                row.append(effective_snr_db(flat))
                track.road = original
            rows.append(row)
        heatmap[ap_id] = rows

    # Coverage span per AP at the kerbside row (y = 0).
    coverage: Dict[str, tuple] = {}
    for ap_id in testbed.ap_ids:
        usable = [
            x for x, esnr in zip(xs, heatmap[ap_id][0]) if esnr >= usable_esnr_db
        ]
        coverage[ap_id] = (min(usable), max(usable)) if usable else (None, None)
    overlaps = []
    ap_list = sorted(testbed.ap_ids, key=lambda a: int(a[2:]))
    for left, right in zip(ap_list, ap_list[1:]):
        l0, l1 = coverage[left]
        r0, r1 = coverage[right]
        if None in (l0, l1, r0, r1):
            overlaps.append(0.0)
        else:
            overlaps.append(max(0.0, min(l1, r1) - max(l0, r0)))
    return {
        "xs": xs,
        "y_values": list(y_values),
        "heatmap": heatmap,
        "coverage": coverage,
        "overlaps_m": overlaps,
    }
