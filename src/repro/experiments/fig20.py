"""Figures 19/20: multi-client driving patterns.

Two clients at 15 mph in three formations — following (3 m apart),
parallel (adjacent lanes), opposing directions — with downlink flows.
The paper's ranking: opposing best (clients far apart most of the
time), parallel worst (they carrier-sense each other constantly), and
WGTT above the baseline everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.common import mean, seeds_for
from repro.scenarios.presets import (
    following_config,
    opposing_config,
    parallel_config,
)
from repro.scenarios.testbed import build_testbed
from repro.experiments.registry import register_experiment

CASES: Dict[str, Callable] = {
    "following": following_config,
    "parallel": parallel_config,
    "opposing": opposing_config,
}


def run_cell(
    seed: int,
    scheme: str,
    protocol: str,
    case: str,
    duration_s: float = 8.0,
    udp_rate_bps: float = 15e6,
) -> float:
    config = CASES[case](speed_mph=15.0, seed=seed, scheme=scheme)
    testbed = build_testbed(config)
    flows = []
    for i in range(len(testbed.clients)):
        if protocol == "tcp":
            sender, receiver = testbed.add_downlink_tcp_flow(i)
            sender.start()
            flows.append(("tcp", sender, receiver))
        else:
            source, sink = testbed.add_downlink_udp_flow(i, rate_bps=udp_rate_bps)
            source.start()
            flows.append(("udp", source, sink))
    testbed.run_seconds(duration_s)
    values = []
    for kind, a, b in flows:
        if kind == "tcp":
            values.append(a.throughput_mbps(testbed.sim.now))
        else:
            values.append(b.bytes_received() * 8 / duration_s / 1e6)
    return mean(values)


@register_experiment("fig20", "driving-pattern cases")
def run(quick: bool = True) -> Dict:
    seeds = seeds_for(quick)
    rows: List[Dict] = []
    for case in CASES:
        row: Dict = {"case": case}
        for protocol in ("tcp", "udp"):
            for scheme in ("wgtt", "baseline"):
                row[f"{protocol}_{scheme}_mbps"] = mean(
                    run_cell(seed, scheme, protocol, case) for seed in seeds
                )
        rows.append(row)
    return {"rows": rows}
