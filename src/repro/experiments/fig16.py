"""Figure 16: CDF of the link bit rate during a 15 mph drive.

Logs the MCS chosen for every data aggregate transmitted towards the
client under each scheme. The paper's WGTT rides the best AP, so its
rate distribution sits ~30 Mbit/s above the baseline's, with a 90th
percentile around the top single-stream rate.
"""

from __future__ import annotations

from typing import Dict

from repro.metrics.recorder import RateUsageLog
from repro.metrics.stats import cdf_points, percentile
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_scheme(
    seed: int, scheme: str, protocol: str = "tcp", duration_s: float = 10.0
) -> Dict:
    config = TestbedConfig(seed=seed, scheme=scheme, client_speeds_mph=[15.0])
    testbed = build_testbed(config)
    log = RateUsageLog(testbed, client_id="client0")
    if protocol == "tcp":
        sender, _receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
    else:
        source, _sink = testbed.add_downlink_udp_flow(0, rate_bps=50e6)
        source.start()
    testbed.run_seconds(duration_s)
    rates = log.rates_mbps()
    return {
        "scheme": scheme,
        "protocol": protocol,
        "rates_mbps": rates,
        "cdf": cdf_points(rates),
        "p50": percentile(rates, 50) if rates else 0.0,
        "p90": percentile(rates, 90) if rates else 0.0,
    }


@register_experiment("fig16", "link bit-rate CDF")
def run(seed: int = 3, protocol: str = "tcp", quick: bool = False) -> Dict:
    duration = 6.0 if quick else 10.0
    return {
        "wgtt": run_scheme(seed, "wgtt", protocol, duration),
        "baseline": run_scheme(seed, "baseline", protocol, duration),
    }
