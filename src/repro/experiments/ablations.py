"""Ablations of WGTT's design choices.

The paper argues for each mechanism qualitatively; these runs turn the
arguments into measurements by disabling one mechanism at a time on the
otherwise-identical 15 mph TCP drive:

* ``no-ba-forwarding`` — overheard block ACKs are discarded (§3.2.1).
* ``no-fanout``        — downlink goes only to the serving AP, so a
                         switch starts with an empty cyclic queue
                         (§3.1.2's pre-placement removed).
* ``metric-latest``    — AP selection uses the newest ESNR reading
                         instead of the window median (§3.1.1).
* ``metric-mean``      — window mean instead of median.
* ``multi-channel``    — adjacent APs on channels 1/6/11; the client
                         retunes on each switch and cross-channel
                         overhearing disappears (§7 discussion).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.config import WgttConfig
from repro.experiments.common import mean, seeds_for
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_variant(
    seed: int,
    variant: str,
    speed_mph: float = 15.0,
    duration_s: float = 10.0,
) -> Dict:
    wgtt = WgttConfig()
    channel_plan: Optional[List[int]] = None
    if variant == "paper":
        pass
    elif variant == "no-ba-forwarding":
        wgtt = dataclasses.replace(wgtt, ba_forwarding_enabled=False)
    elif variant == "no-fanout":
        wgtt = dataclasses.replace(wgtt, fanout_enabled=False)
    elif variant == "metric-latest":
        wgtt = dataclasses.replace(wgtt, selection_metric="latest")
    elif variant == "metric-mean":
        wgtt = dataclasses.replace(wgtt, selection_metric="mean")
    elif variant == "multi-channel":
        channel_plan = [1, 6, 11]
    else:
        raise ValueError(f"unknown variant {variant!r}")
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        client_speeds_mph=[speed_mph],
        wgtt=wgtt,
        channel_plan=channel_plan,
    )
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    sender.start()
    testbed.run_seconds(duration_s)
    mpdu_retx = sum(
        ap.device.session("client0").scoreboard.retransmissions
        for ap in testbed.wgtt_aps.values()
        if "client0" in ap.device._sessions
    )
    ba_applied = sum(
        ap.stats["ba_forward_applied"] for ap in testbed.wgtt_aps.values()
    )
    return {
        "variant": variant,
        "throughput_mbps": sender.throughput_mbps(testbed.sim.now),
        "switches": len(testbed.controller.coordinator.history),
        "tcp_timeouts": sender.timeouts,
        "mpdu_retransmissions": mpdu_retx,
        "ba_forward_applied": ba_applied,
        "dedup_duplicates": testbed.controller.dedup.duplicates,
    }


VARIANTS = (
    "paper",
    "no-ba-forwarding",
    "no-fanout",
    "metric-latest",
    "metric-mean",
    "multi-channel",
)


@register_experiment("ablations", "WGTT design-choice ablations")
def run(quick: bool = True, variants: tuple = VARIANTS) -> Dict:
    seeds = seeds_for(quick)
    duration = 8.0 if quick else 10.0
    rows: List[Dict] = []
    for variant in variants:
        cells = [run_variant(seed, variant, duration_s=duration) for seed in seeds]
        rows.append(
            {
                "variant": variant,
                "throughput_mbps": mean(c["throughput_mbps"] for c in cells),
                "switches": mean(c["switches"] for c in cells),
                "tcp_timeouts": mean(c["tcp_timeouts"] for c in cells),
                "mpdu_retransmissions": mean(
                    c["mpdu_retransmissions"] for c in cells
                ),
                "ba_forward_applied": mean(
                    c["ba_forward_applied"] for c in cells
                ),
                "dedup_duplicates": mean(c["dedup_duplicates"] for c in cells),
            }
        )
    return {"rows": rows}
