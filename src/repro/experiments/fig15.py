"""Figure 15: UDP throughput timeseries during a 15 mph drive.

Same harness as Figure 14, run with the constant-rate UDP workload.
The paper's observation: WGTT switches constantly and keeps a steady
rate; Enhanced 802.11r switches only ~3 times in 10 s and is unstable.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.fig14 import run_scheme
from repro.experiments.registry import register_experiment


@register_experiment("fig15", "UDP timeseries + association timeline")
def run(seed: int = 3, quick: bool = False) -> Dict:
    duration = 6.0 if quick else 10.0
    return {
        "wgtt": run_scheme(seed, "wgtt", "udp", duration_s=duration),
        "baseline": run_scheme(seed, "baseline", "udp", duration_s=duration),
    }
