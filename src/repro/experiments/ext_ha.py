"""Extension experiment: controller-kill sweep under warm-standby HA.

The paper's §6 notes the central controller is the obvious single point
of failure of the WGTT architecture; this experiment measures what the
HA subsystem (:mod:`repro.ha`) buys.  A mid-drive controller kill is
injected while a UDP downlink flow runs, for each checkpoint interval
in the sweep, and each cell reports

* **recovery latency** — kill instant → every client registered at the
  promoted standby with a live serving AP (detection lag + promotion +
  re-publication), from :class:`~repro.metrics.recorder.HaAudit`;
* **duplicate leakage** — uplink copies the server saw twice across the
  failover (the shipped dedup window should keep this near zero), plus
  the post-restore duplicates the window *caught*;
* **packets lost** — downlink datagrams that arrived at ingress while
  no controller was active (explicitly counted, never silent), and
  cyclic-queue ``overflow_drops`` (must stay zero — the backlog the
  standby's takeover resumes from is intact).

``main()`` exposes ``--smoke`` for CI: one controller kill at t = 2 s,
asserting promotion, full client recovery within 250 ms of the kill,
zero cyclic-queue overflow loss, post-failover delivery progress, and
accounted duplicates (nonzero exit on violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.core.config import WgttConfig
from repro.experiments.common import mean, seeds_for
from repro.experiments.runner import run_grid
from repro.faults.plan import ControllerCrash, FaultPlan
from repro.metrics.recorder import FailoverAudit, HaAudit
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import MS, SECOND
from repro.experiments.registry import register_experiment

#: Checkpoint shipping intervals to sweep (ms).
CHECKPOINT_INTERVALS_MS = (25, 100, 400)
#: When the controller dies, relative to run start.
KILL_AT_US = 2 * SECOND
#: Recovery budget the smoke asserts (kill → all clients recovered).
SMOKE_RECOVERY_BUDGET_US = 250 * MS


def _ha_config(checkpoint_interval_ms: int) -> WgttConfig:
    return WgttConfig(
        ha_enabled=True,
        checkpoint_interval_us=checkpoint_interval_ms * MS,
    )


def run_cell(
    seed: int,
    checkpoint_interval_ms: int,
    duration_s: float = 5.0,
    kill_at_us: int = KILL_AT_US,
) -> Dict:
    """One controller-kill run at one checkpoint interval."""
    plan = FaultPlan([ControllerCrash(at_us=kill_at_us, down_us=None)])
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        wgtt=_ha_config(checkpoint_interval_ms),
        fault_plan=plan,
    )
    testbed = build_testbed(config)
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=4e6)
    source.start()
    uplink_sender, _ = testbed.add_uplink_tcp_flow(0)
    uplink_sender.start()
    testbed.run_seconds(duration_s)

    audit = HaAudit(testbed)
    summary = audit.summary()
    return {
        "seed": seed,
        "checkpoint_interval_ms": checkpoint_interval_ms,
        "promoted": summary["promoted"],
        "promotion_latency_ms": summary["promotion_latency_ms"],
        "recovery_latency_ms": summary["recovery_latency_ms"],
        "clients_recovered": summary["clients_recovered"],
        "lost_downlink": summary["lost_downlink"],
        "overflow_drops": summary["overflow_drops"],
        "duplicates_at_server": sink.duplicates,
        "post_restore_duplicates": summary["post_restore_duplicates"],
        "checkpoints_shipped": summary["checkpoints_shipped"],
        "checkpoint_bytes": summary["checkpoint_bytes"],
        "delivered": len(sink.arrivals),
        "sent": source.packets_sent,
    }


@register_experiment("ext_ha", "controller-kill sweep under warm-standby HA", smoke="run_smoke")
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    seeds = seeds_for(quick)
    duration_s = 5.0 if quick else 8.0
    grid = [
        (seed, interval_ms, duration_s)
        for interval_ms in CHECKPOINT_INTERVALS_MS
        for seed in seeds
    ]
    results = iter(run_grid(run_cell, grid, jobs=jobs))
    rows: List[Dict] = []
    for interval_ms in CHECKPOINT_INTERVALS_MS:
        cells = [next(results) for _ in seeds]
        recoveries = [
            c["recovery_latency_ms"]
            for c in cells
            if c["recovery_latency_ms"] is not None
        ]
        rows.append(
            {
                "checkpoint_interval_ms": interval_ms,
                "promoted": sum(1 for c in cells if c["promoted"]),
                "runs": len(cells),
                "mean_recovery_ms": mean(recoveries) if recoveries else None,
                "max_recovery_ms": max(recoveries) if recoveries else None,
                "lost_downlink": sum(c["lost_downlink"] for c in cells),
                "overflow_drops": sum(c["overflow_drops"] for c in cells),
                "duplicates_at_server": sum(
                    c["duplicates_at_server"] for c in cells
                ),
                "post_restore_duplicates": sum(
                    c["post_restore_duplicates"] for c in cells
                ),
                "mean_checkpoint_bytes": mean(
                    c["checkpoint_bytes"] / max(1, c["checkpoints_shipped"])
                    for c in cells
                ),
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# CI smoke: one deterministic controller kill, hard pass/fail
# ----------------------------------------------------------------------


def run_smoke(seed: int = 3) -> Dict:
    """Kill the controller at t = 2 s; fail unless the standby promotes
    and every client recovers within the 250 ms budget with zero
    cyclic-queue overflow loss and accounted duplicates."""
    plan = FaultPlan([ControllerCrash(at_us=KILL_AT_US, down_us=None)])
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        wgtt=_ha_config(checkpoint_interval_ms=100),
        fault_plan=plan,
    )
    testbed = build_testbed(config)
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=4e6)
    source.start()

    # Run past the kill by exactly the recovery budget and check the
    # control plane is whole again.
    testbed.run_until(KILL_AT_US + SMOKE_RECOVERY_BUDGET_US)
    ha_audit = HaAudit(testbed)
    promoted_in_budget = testbed.standby.promoted
    recovered_in_budget = ha_audit.clients_recovered()
    delivered_at_budget = len(sink.arrivals)

    # Then run out the drive to measure post-failover delivery.
    testbed.run_seconds(1.5)
    summary = ha_audit.summary()
    failover_summary = FailoverAudit(testbed).summary()
    progressed = len(sink.arrivals) > delivered_at_budget

    # Every ingress datagram is either delivered, explicitly lost at
    # ingress (no active controller / paced), or still in flight —
    # cyclic-queue overwrites of undelivered slots must never eat one.
    overflow_ok = summary["overflow_drops"] == 0
    dup_accounted = sink.duplicates == 0

    ok = (
        promoted_in_budget
        and recovered_in_budget
        and summary["clients_recovered"]
        and overflow_ok
        and progressed
        and dup_accounted
    )
    return {
        "ok": ok,
        "kill_us": KILL_AT_US,
        "recovery_budget_ms": SMOKE_RECOVERY_BUDGET_US / 1_000.0,
        "promoted_in_budget": promoted_in_budget,
        "recovered_in_budget": recovered_in_budget,
        "promotion_latency_ms": summary["promotion_latency_ms"],
        "recovery_latency_ms": summary["recovery_latency_ms"],
        "overflow_drops": summary["overflow_drops"],
        "lost_downlink": summary["lost_downlink"],
        "duplicates_at_server": sink.duplicates,
        "post_restore_duplicates": summary["post_restore_duplicates"],
        "post_failover_progress": progressed,
        "ha_summary": summary,
        "failover_summary": failover_summary,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ext_ha",
        description="controller-kill sweep under warm-standby HA",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="one controller kill; exit 1 on violation")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        result = run_smoke(seed=args.seed)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    result = run(quick=not args.full, jobs=args.jobs)
    print(json.dumps(result, indent=2, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
