"""Table 3: link-layer (block) ACK collision rate.

Every WGTT AP that decodes an uplink frame answers with a block ACK, so
BAs can collide at the client. The paper measures uplink retransmission
rate as an upper bound and finds it negligible — microsecond response
jitter plus directional side-lobe discrimination keep simultaneous BAs
from colliding.

The simulator can observe the collision event *directly*: two BA frames
addressed to the client overlapping on the air. We report that rate
alongside the retransmission-based upper bound (which in a fading
simulation also contains whole-aggregate fades, not just collisions).
"""

from __future__ import annotations

from typing import Dict, List

from repro.mac.frames import BlockAckFrame
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment


def run_rate(seed: int, rate_mbps: float, duration_s: float = 8.0) -> Dict:
    # The paper's measurement isolates ACK collisions from channel
    # loss: a client with an excellent link (parked near a boresight)
    # blasting uplink UDP.
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        client_speeds_mph=[0.0],
        client_start_x_m=10.0,
    )
    testbed = build_testbed(config)

    # Observe every BA headed for the client directly on the medium.
    ba_intervals: List[tuple] = []
    original_transmit = testbed.medium.transmit

    def watching_transmit(frame):
        tx = original_transmit(frame)
        if isinstance(frame, BlockAckFrame) and frame.ra == "client0":
            ba_intervals.append((tx.start_us, tx.end_us))
        return tx

    testbed.medium.transmit = watching_transmit

    source, _sink = testbed.add_uplink_udp_flow(0, rate_bps=rate_mbps * 1e6)
    source.start()
    testbed.run_seconds(duration_s)

    ba_intervals.sort()
    collisions = sum(
        1
        for (s1, e1), (s2, _e2) in zip(ba_intervals, ba_intervals[1:])
        if s2 < e1
    )
    device = testbed.clients[0].device
    session = device.session(config.wgtt.bssid)
    sent = device.stats["mpdus_sent"]
    ampdus = max(device.stats["ampdus_sent"], 1)
    return {
        "rate_mbps": rate_mbps,
        "mpdus_sent": sent,
        "ba_responses": len(ba_intervals),
        "ba_collision_rate_pct": 100.0 * collisions / max(len(ba_intervals), 1),
        "retransmission_rate_pct": 100.0
        * session.scoreboard.retransmissions
        / max(sent, 1),
        "no_ba_rate_pct": 100.0 * device.stats["ba_timeouts"] / ampdus,
    }


@register_experiment("tab03", "block-ACK collision rate")
def run(seed: int = 3, quick: bool = False) -> Dict:
    rates = [70, 90] if quick else [70, 80, 90]
    rows: List[Dict] = [run_rate(seed, rate) for rate in rates]
    return {"rows": rows}
