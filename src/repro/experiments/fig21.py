"""Figure 21: choosing the selection window W.

Emulation-based, exactly as §5.3.1 describes: record per-AP ESNR traces
from a 15 mph drive, then replay them through the median-window
selector at different W and score the capacity loss of its choices.
The paper finds a minimum at W = 10 ms: shorter windows chase fading
noise, longer windows react too slowly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.capacity import selector_capacity_loss_mbps
from repro.phy.esnr import effective_snr_db
from repro.phy.per import best_rate_bps
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import MS, SECOND
from repro.experiments.registry import register_experiment

FULL_WINDOWS_MS = (2, 5, 10, 20, 50, 100, 200, 400)
QUICK_WINDOWS_MS = (2, 10, 100)


def record_traces(
    seed: int,
    speed_mph: float = 15.0,
    duration_s: float = 8.0,
    reading_period_us: int = 4 * MS,
    measurement_noise_db: float = 2.0,
) -> Tuple[Dict, Dict]:
    """Collect (esnr readings, achievable-rate ground truth) per AP.

    Readings are sampled at the cadence real uplink traffic would
    produce CSI (~every 2 ms under load). Each *reading* carries the
    estimation error a single-frame CSI measurement has in practice
    (``measurement_noise_db``); the ground-truth rate trace does not.
    This noise is what makes very small windows lose: a one-sample
    median is at the mercy of measurement error, which is the
    "accurateness vs agility" trade-off §5.3.1 describes.
    """
    config = TestbedConfig(seed=seed, scheme="wgtt", client_speeds_mph=[speed_mph])
    testbed = build_testbed(config)
    noise_rng = testbed.rng.stream("fig21/measurement-noise")
    client_id = testbed.clients[0].client_id
    esnr_trace: Dict[str, List[Tuple[int, float]]] = {
        ap: [] for ap in testbed.ap_ids
    }
    rate_trace: Dict[str, List[Tuple[int, float]]] = {
        ap: [] for ap in testbed.ap_ids
    }
    end = int(duration_s * SECOND)
    # Ground truth is sampled densely and regularly; *readings* arrive
    # like real CSI does — one per overheard uplink frame, at bursty
    # Poisson-ish times — so a 2 ms window frequently holds nothing,
    # which is the agility-vs-accuracy trade-off the figure studies.
    next_reading_us = 0
    for t in range(0, end, 2 * MS):
        for ap_id in testbed.ap_ids:
            link = testbed.channel.link(ap_id, client_id)
            snr = link.subcarrier_snr_db(t, tx_id=ap_id)
            rate_trace[ap_id].append((t, best_rate_bps(snr)))
            if t >= next_reading_us:
                noisy = effective_snr_db(snr) + measurement_noise_db * float(
                    noise_rng.standard_normal()
                )
                esnr_trace[ap_id].append((t, noisy))
        if t >= next_reading_us:
            gap = noise_rng.exponential(reading_period_us)
            next_reading_us = t + max(int(gap), 1)
    return esnr_trace, rate_trace


@register_experiment("fig21", "selection-window sweep")
def run(seed: int = 3, quick: bool = False, speed_mph: float = 15.0) -> Dict:
    windows = QUICK_WINDOWS_MS if quick else FULL_WINDOWS_MS
    duration = 4.0 if quick else 8.0
    esnr_trace, rate_trace = record_traces(
        seed, speed_mph=speed_mph, duration_s=duration
    )
    rows = []
    for window_ms in windows:
        loss = selector_capacity_loss_mbps(
            esnr_trace, rate_trace, window_us=window_ms * MS
        )
        rows.append({"window_ms": window_ms, "capacity_loss_mbps": loss})
    best = min(rows, key=lambda r: r["capacity_loss_mbps"])
    return {"rows": rows, "best_window_ms": best["window_ms"]}
