"""Experiment drivers: one module per paper table/figure.

==========  =====================================================
Module      Reproduces
==========  =====================================================
fig02       ESNR dynamics / best-AP flip rate (Figure 2)
fig04       stock 802.11r handover failure (Figure 4)
tab01       switching-protocol execution time (Table 1)
fig10       ESNR coverage heatmap (Figure 10)
fig13       throughput vs speed, both schemes (Figure 13)
fig14       TCP timeseries + association timeline (Figure 14)
fig15       UDP timeseries + association timeline (Figure 15)
fig16       link bit-rate CDF (Figure 16)
tab02       switching accuracy (Table 2)
fig17       per-client throughput, 1-3 clients (Figure 17)
fig18       multi-client uplink loss (Figure 18)
fig20       driving-pattern cases (Figures 19/20)
fig21       selection-window sweep (Figure 21)
tab03       block-ACK collision rate (Table 3)
fig22       time-hysteresis sweep (Figure 22)
fig23       dense vs sparse segments (Figure 23)
tab04       video rebuffer ratio (Table 4)
fig24       conferencing fps CDF (Figure 24)
tab05       web page load time (Table 5)
==========  =====================================================

Each module exposes ``run(...) -> dict``; benches print and sanity-
check the returned rows.
"""

from repro.experiments import (  # noqa: F401
    fig02,
    fig04,
    fig10,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig20,
    fig21,
    fig22,
    fig23,
    fig24,
    tab01,
    tab02,
    tab03,
    tab04,
    tab05,
)
from repro.experiments.common import format_table

__all__ = [
    "fig02", "fig04", "fig10", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig20", "fig21", "fig22", "fig23", "fig24",
    "tab01", "tab02", "tab03", "tab04", "tab05", "format_table",
]
