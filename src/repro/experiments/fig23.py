"""Figure 23: UDP throughput in dense vs sparse AP segments.

The testbed's actual layout has a densely deployed stretch (AP2–AP4)
and a sparse one (AP5–AP7). Driving through each at several speeds, the
paper finds WGTT consistently high in both, with the dense segment
ahead thanks to stronger uplink/overhearing diversity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import mean, seeds_for
from repro.experiments.runner import run_grid
from repro.scenarios.presets import (
    dense_segment_bounds,
    mixed_density_config,
    sparse_segment_bounds,
)
from repro.scenarios.testbed import build_testbed
from repro.sim.engine import SECOND
from repro.experiments.registry import register_experiment


def run_cell(
    seed: int,
    scheme: str,
    speed_mph: float,
    udp_rate_bps: float = 50e6,
) -> Dict:
    config = mixed_density_config(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    source, sink = testbed.add_downlink_udp_flow(0, rate_bps=udp_rate_bps)
    source.start()
    track = testbed.clients[0].track
    end_x = sparse_segment_bounds()[1]
    duration_s = min(track.time_to_reach_x(end_x) / SECOND + 0.5, 40.0)
    testbed.run_seconds(duration_s)

    def segment_throughput(bounds) -> float:
        start_us = track.time_to_reach_x(bounds[0])
        end_us = track.time_to_reach_x(bounds[1])
        return sink.throughput_bps(start_us, end_us) / 1e6

    return {
        "dense_mbps": segment_throughput(dense_segment_bounds()),
        "sparse_mbps": segment_throughput(sparse_segment_bounds()),
    }


@register_experiment("fig23", "dense vs sparse segments")
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    seeds = seeds_for(quick)
    speeds = (5.0, 10.0) if quick else (2.0, 5.0, 10.0)
    grid = [
        (seed, scheme, speed)
        for speed in speeds
        for scheme in ("wgtt", "baseline")
        for seed in seeds
    ]
    results = iter(run_grid(run_cell, grid, jobs=jobs))
    rows: List[Dict] = []
    for speed in speeds:
        row: Dict = {"speed_mph": speed}
        for scheme in ("wgtt", "baseline"):
            cells = [next(results) for _ in seeds]
            row[f"{scheme}_dense_mbps"] = mean(c["dense_mbps"] for c in cells)
            row[f"{scheme}_sparse_mbps"] = mean(c["sparse_mbps"] for c in cells)
        rows.append(row)
    return {"rows": rows}
