"""Figure 22: impact of the switching time hysteresis T.

TCP at 15 mph with T = 40 / 80 / 120 ms. Smaller hysteresis lets the
controller ride fast channel changes, so throughput rises as T shrinks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import WgttConfig
from repro.experiments.common import mean, seeds_for
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.experiments.registry import register_experiment

HYSTERESIS_MS = (40, 80, 120)


def run_cell(seed: int, hysteresis_ms: int, duration_s: float = 10.0) -> Dict:
    wgtt = WgttConfig(time_hysteresis_us=hysteresis_ms * 1000)
    config = TestbedConfig(
        seed=seed, scheme="wgtt", client_speeds_mph=[15.0], wgtt=wgtt
    )
    testbed = build_testbed(config)
    sender, receiver = testbed.add_downlink_tcp_flow(0)
    sender.start()
    testbed.run_seconds(duration_s)
    return {
        "throughput_mbps": sender.throughput_mbps(testbed.sim.now),
        "switches": len(testbed.controller.coordinator.history),
        "series": receiver.goodput_series_mbps(testbed.sim.now),
    }


@register_experiment("fig22", "time-hysteresis sweep")
def run(quick: bool = True) -> Dict:
    seeds = seeds_for(quick)
    duration = 8.0 if quick else 10.0
    rows: List[Dict] = []
    for hyst in HYSTERESIS_MS:
        cells = [run_cell(seed, hyst, duration) for seed in seeds]
        rows.append(
            {
                "hysteresis_ms": hyst,
                "throughput_mbps": mean(c["throughput_mbps"] for c in cells),
                "switches": mean(c["switches"] for c in cells),
            }
        )
    return {"rows": rows}
