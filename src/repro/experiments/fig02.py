"""Figure 2: the vehicular picocell regime.

Samples the ESNR of three adjacent AP↔client links at millisecond
resolution while a client drives past at 25 mph, and counts how often
the instantaneously best AP changes — the paper's motivating
observation that the right AP flips at millisecond timescales.
"""

from __future__ import annotations

from typing import Dict, List

from repro.phy.esnr import effective_snr_db
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import MS, SECOND
from repro.experiments.registry import register_experiment


@register_experiment("fig02", "ESNR dynamics / best-AP flip rate")
def run(seed: int = 3, speed_mph: float = 25.0, quick: bool = False) -> Dict:
    """Returns the per-AP ESNR series and best-AP flip statistics."""
    config = TestbedConfig(
        seed=seed, scheme="wgtt", num_aps=3, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    client = testbed.clients[0]
    # Sample through the overlap region of AP0/AP1/AP2.
    start_us = client.track.time_to_reach_x(testbed.config.first_ap_x_m)
    duration_us = int((1.0 if quick else 3.0) * SECOND)
    times: List[int] = list(range(start_us, start_us + duration_us, MS))
    series: Dict[str, List[float]] = {ap: [] for ap in testbed.ap_ids}
    best: List[str] = []
    contested: List[bool] = []
    for t in times:
        readings = []
        for ap_id in testbed.ap_ids:
            link = testbed.channel.link(ap_id, client.client_id)
            # Offline trace: committed sampling gives the true
            # continuous fading path (nothing else runs concurrently).
            esnr = effective_snr_db(link.subcarrier_snr_db(t, tx_id=ap_id))
            series[ap_id].append(esnr)
            readings.append((esnr, ap_id))
        readings.sort(reverse=True)
        best.append(readings[0][1])
        # "Contested": the top two APs are within a fading swing of
        # each other — the overlap zones of Figure 2's detail view.
        contested.append(readings[0][0] - readings[1][0] < 6.0)
    flips = sum(1 for a, b in zip(best, best[1:]) if a != b)
    contested_flips = sum(
        1
        for (a, b, c) in zip(best, best[1:], contested[1:])
        if a != b and c
    )
    contested_ms = max(1, sum(contested))
    return {
        "times_us": times,
        "esnr_series": series,
        "best_ap": best,
        "flips": flips,
        "flips_per_second": flips / (duration_us / SECOND),
        "mean_best_dwell_ms": (duration_us / 1000) / max(flips, 1),
        "contested_fraction": sum(contested) / len(contested),
        "contested_flips_per_second": contested_flips / (contested_ms / 1000.0),
    }
