"""Extension experiment: SLO-guarded endurance soak.

The paper's deployment argument is a week of healthy operation on
eight APs; a transit operator's question is what happens over months
of churn — thousands of rider sessions arriving and leaving, flows
whose sizes are heavy-tailed, APs crashing and restarting underneath
them.  This experiment drives :mod:`repro.soak` at two scales:

* ``run()`` — the endurance run: one sim-hour (quick: two sim-minutes)
  of Poisson rider churn with continuous background faults, reporting
  cumulative arrivals/departures, delivery ratio, violation count, and
  the determinism fingerprint.  The full run crosses 1000 cumulative
  arrivals, the ISSUE's acceptance bar.
* ``run_smoke()`` — the CI gate: a ~60 s soak at ~50-rider churn
  scale executed TWICE with the same seed, asserting byte-identical
  fingerprints, zero SLO/invariant violations in both runs, and that
  churn actually happened (arrivals and departures both nonzero).

``main()`` exposes ``--smoke`` (nonzero exit on any violation or
fingerprint divergence) and ``--full`` for the sim-hour endurance run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.experiments.registry import register_experiment
from repro.soak.harness import SoakConfig, SoakResult, run_soak
from repro.soak.workload import WorkloadConfig

#: Arrival rate of the full endurance run — 0.3/s over a sim-hour is
#: ~1080 expected arrivals, comfortably past the 1000-arrival bar.
FULL_ARRIVAL_RATE_PER_S = 0.3
FULL_DURATION_S = 3600.0
QUICK_DURATION_S = 120.0

#: Smoke scale: ~50 cumulative arrivals in ~60 s of sim time, with
#: flow rates turned down so the CI job stays fast while the churn,
#: fault, admission, and guard machinery is fully exercised.
SMOKE_DURATION_S = 60.0
SMOKE_ARRIVAL_RATE_PER_S = 0.8


def _smoke_config(seed: int) -> SoakConfig:
    workload = WorkloadConfig(
        arrival_rate_per_s=SMOKE_ARRIVAL_RATE_PER_S,
        mean_dwell_s=12.0,
        max_concurrent=50,
        rate_min_bps=0.25e6,
        rate_max_bps=1.5e6,
        size_min_bytes=16 * 1024,
        size_max_bytes=4 * 1024 * 1024,
    )
    return SoakConfig(
        seed=seed,
        duration_s=SMOKE_DURATION_S,
        workload=workload,
        fault_intensity=1.0,
        admission_enabled=False,
        backpressure_enabled=True,
    )


def _result_row(result: SoakResult) -> Dict:
    return {
        "ok": result.ok,
        "fingerprint": result.fingerprint,
        "samples": result.samples,
        "violations": result.violations,
        "arrivals": result.churn_stats["arrivals"],
        "departures": result.churn_stats["departures"],
        "rejected": result.churn_stats["rejected"],
        "flows_started": result.churn_stats["flows_started"],
        "delivery_ratio": result.delivery_ratio,
        "mean_delay_us": result.mean_delay_us,
    }


@register_experiment(
    "ext_soak",
    "SLO-guarded endurance soak: churn x faults x admission",
    smoke="run_smoke",
)
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    """Endurance run (full: one sim-hour, >=1000 cumulative arrivals).

    ``jobs`` is accepted for registry-signature uniformity; a soak is
    one long serial simulation and never fans out.
    """
    del jobs
    duration_s = QUICK_DURATION_S if quick else FULL_DURATION_S
    config = SoakConfig(
        seed=1,
        duration_s=duration_s,
        workload=WorkloadConfig(arrival_rate_per_s=FULL_ARRIVAL_RATE_PER_S),
        fault_intensity=1.0,
        admission_enabled=False,
        backpressure_enabled=True,
    )
    result = run_soak(config)
    row = _result_row(result)
    row["duration_s"] = duration_s
    row["summary"] = result.summary()
    return {"rows": [row], "ok": result.ok}


# ----------------------------------------------------------------------
# CI smoke: double run, fingerprint identity, zero violations
# ----------------------------------------------------------------------


def run_smoke(seed: int = 3) -> Dict:
    """Run the smoke-scale soak twice with one seed; fail unless the
    runs are fingerprint-identical, violation-free, and actually
    churned (nonzero arrivals and departures)."""
    first = run_soak(_smoke_config(seed))
    second = run_soak(_smoke_config(seed))
    reproducible = first.fingerprint == second.fingerprint
    churned = (
        first.churn_stats["arrivals"] > 0
        and first.churn_stats["departures"] > 0
    )
    ok = first.ok and second.ok and reproducible and churned
    return {
        "ok": ok,
        "reproducible": reproducible,
        "churned": churned,
        "first": _result_row(first),
        "second": _result_row(second),
        "summary": first.summary(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ext_soak", description="SLO-guarded endurance soak"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="double smoke soak; exit 1 on violation or drift",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--full",
        action="store_true",
        help="one sim-hour endurance run (>=1000 arrivals)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = run_smoke(seed=args.seed)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    result = run(quick=not args.full)
    print(json.dumps(result, indent=2, default=str))
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
