"""Figure 17: per-client downlink throughput with 1–3 clients.

All clients drive at 15 mph with saturating downlink flows; the paper
reports WGTT's per-client advantage growing slightly with client count
(the baseline suffers more from added contention and loss).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import mean, seeds_for
from repro.scenarios.presets import multi_client_config
from repro.scenarios.testbed import build_testbed
from repro.experiments.registry import register_experiment


def run_cell(
    seed: int,
    scheme: str,
    protocol: str,
    num_clients: int,
    duration_s: float = 8.0,
    udp_rate_bps: float = 20e6,
) -> float:
    config = multi_client_config(
        num_clients, speed_mph=15.0, seed=seed, scheme=scheme
    )
    testbed = build_testbed(config)
    flows = []
    for i in range(num_clients):
        if protocol == "tcp":
            sender, receiver = testbed.add_downlink_tcp_flow(i)
            sender.start()
            flows.append(("tcp", sender, receiver))
        else:
            source, sink = testbed.add_downlink_udp_flow(
                i, rate_bps=udp_rate_bps
            )
            source.start()
            flows.append(("udp", source, sink))
    testbed.run_seconds(duration_s)
    per_client = []
    for kind, a, b in flows:
        if kind == "tcp":
            per_client.append(a.throughput_mbps(testbed.sim.now))
        else:
            per_client.append(b.bytes_received() * 8 / duration_s / 1e6)
    return mean(per_client)


@register_experiment("fig17", "per-client throughput, 1-3 clients")
def run(quick: bool = True) -> Dict:
    seeds = seeds_for(quick)
    counts = (1, 2, 3)
    rows: List[Dict] = []
    for count in counts:
        row: Dict = {"clients": count}
        for protocol in ("tcp", "udp"):
            for scheme in ("wgtt", "baseline"):
                row[f"{protocol}_{scheme}_mbps"] = mean(
                    run_cell(seed, scheme, protocol, count) for seed in seeds
                )
            base = row[f"{protocol}_baseline_mbps"]
            row[f"{protocol}_gain"] = (
                row[f"{protocol}_wgtt_mbps"] / base if base > 0 else float("inf")
            )
        rows.append(row)
    return {"rows": rows}
