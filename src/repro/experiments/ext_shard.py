"""Extension experiment: city-scale sharded control plane gate + bench.

The paper runs one controller over an eight-AP city block.  A transit
*network* is a different regime: hundreds of picocells along miles of
corridor, more than one controller's worth of clients, and a nearest-AP
query that must not scan the whole deployment per event.  This gate
exercises the :mod:`repro.shard` control plane end to end:

* a corridor partitioned into contiguous AP-cluster shards, each owned
  by its own controller (optionally with a warm standby per shard);
* fleets of clients riding through shard boundaries, their
  controller-side state (selection windows, serving map, dedup window)
  migrating via the checkpoint-based inter-shard handoff protocol;
* the sharded runtime invariant checker
  (:class:`~repro.invariants.shard.ShardInvariantChecker`) auditing
  every run — zero violations, zero duplicate deliveries across
  handoffs;
* byte-determinism — the same seed twice produces the identical
  outcome digest.

``--bench`` additionally measures per-query candidate-set cost of the
uniform-grid AP index (:class:`~repro.scenarios.spatial.ApGridIndex`)
against the legacy linear scan as the deployment grows 8 → 400 APs,
and writes the result to ``BENCH_PR10.json`` — the committed evidence
that nearest-AP cost stays flat while linear cost grows with N.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_grid
from repro.mobility.road import Position, Road
from repro.mobility.vehicle import VehicleTrack
from repro.scenarios.presets import shard_corridor_config
from repro.scenarios.spatial import ApGridIndex
from repro.scenarios.testbed import Testbed, TestbedConfig
from repro.shard.config import ShardConfig

#: Deployment sizes for the candidate-set bench (APs along the road).
BENCH_NUM_APS: Sequence[int] = (8, 50, 200, 400)
#: Nearest-AP probes per deployment size (evenly spaced along the road).
BENCH_PROBES = 256

#: Fleet speed for the gate runs — fast enough that every client
#: crosses at least one shard boundary within the run.
GATE_SPEED_MPH = 25.0
#: Following-distance between fleet clients (metres).
GATE_GAP_M = 8.0


def _fleet_tracks(config: TestbedConfig, fleet: int) -> List[VehicleTrack]:
    """``fleet`` clients in single file, entering from the road head."""
    road = Road(length_m=config.road_length_m())
    return [
        VehicleTrack(
            road,
            start_x=config.client_start_x_m - i * GATE_GAP_M,
            speed_mph=GATE_SPEED_MPH,
        )
        for i in range(fleet)
    ]


def run_schedule(
    seed: int,
    num_shards: int = 2,
    fleet: int = 1,
    duration_s: float = 8.0,
    num_aps: int = 8,
    ha: bool = False,
) -> Dict:
    """One sharded drive-by: a fleet crosses shard boundaries while the
    sharded invariant checker audits every handoff."""
    config = shard_corridor_config(
        num_shards=num_shards,
        num_aps=num_aps,
        seed=seed,
        shard=ShardConfig(num_shards=num_shards, ha_enabled=ha),
    )
    config.client_tracks = _fleet_tracks(config, fleet)
    testbed = Testbed(config)
    checker = testbed.install_invariant_checker()

    sinks = []
    for index in range(fleet):
        testbed.add_downlink_udp_flow(index, rate_bps=4e6)[0].start()
        source, sink = testbed.add_uplink_udp_flow(index, rate_bps=1e6)
        source.start()
        sinks.append(sink)

    testbed.run_seconds(duration_s)
    report = checker.finish()

    manager = testbed.shard_manager
    controllers = [shard.active_controller() for shard in manager.shards]
    uplink_delivered = [len(sink.arrivals) for sink in sinks]

    outcome = {
        "seed": seed,
        "num_shards": num_shards,
        "num_aps": num_aps,
        "fleet": fleet,
        "per_shard_ha": ha,
        "handoffs_initiated": manager.stats["handoffs_initiated"],
        "handoffs_completed": manager.stats["handoffs_completed"],
        "handoffs_abandoned": manager.stats["handoffs_abandoned"],
        "handoff_retries": manager.stats["handoff_retries"],
        "handoff_duplicates": manager.stats["handoff_duplicates"],
        "handoff_bytes": manager.stats["handoff_bytes"],
        "downlink_lost": manager.stats["downlink_lost"],
        "downlink_unowned": manager.stats["downlink_unowned"],
        "dedup_suppressed": sum(
            c.dedup.duplicates for c in controllers if c is not None
        ),
        "uplink_unowned": sum(
            c.stats["uplink_unowned"] for c in controllers if c is not None
        ),
        "switches": sum(
            len(c.coordinator.history) for c in controllers if c is not None
        ),
        "ap_index_queries": testbed.ap_index.queries,
        "ap_index_scanned": testbed.ap_index.scanned,
        "invariant_checks": report["checks"],
        "invariant_violations": report["counts"],
        "violations": report["violations"],
        "uplink_delivered": uplink_delivered,
    }
    outcome["ok"] = bool(
        report["ok"]
        and report["counts"]["no-duplicate-delivery"] == 0
        and manager.stats["handoffs_completed"] >= 1
        and manager.stats["handoffs_abandoned"] == 0
        and all(delivered > 0 for delivered in uplink_delivered)
    )
    return outcome


def outcome_digest(outcome: Dict) -> str:
    """Canonical digest of everything a deterministic rerun must repeat."""
    payload = json.dumps(outcome, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# candidate-set cost bench: grid index vs linear scan, 8 -> 400 APs
# ----------------------------------------------------------------------


def candidate_set_bench(
    num_aps_list: Sequence[int] = BENCH_NUM_APS, probes: int = BENCH_PROBES
) -> Dict:
    """Per-query candidate-set cost of nearest-AP lookup vs AP count.

    Builds the *production* :class:`ApGridIndex` (same mount positions
    the scenario builder registers) for each deployment size and probes
    it at ``probes`` evenly spaced road positions.  ``scanned`` counts
    candidates whose distance was actually computed — the legacy linear
    ``min()`` computes all N per query by construction.  Everything here
    is deterministic: no wall-clock timing, just operation counts.
    """
    rows = []
    for num_aps in num_aps_list:
        config = TestbedConfig(num_aps=num_aps)
        index = ApGridIndex()
        for i, x in enumerate(config.ap_xs()):
            index.add(
                f"ap{i}",
                Position(x, -config.ap_setback_m, config.ap_height_m),
            )
        length = config.road_length_m()
        for k in range(probes):
            index.nearest(Position(length * k / (probes - 1), 0.0, 1.5))
        rows.append(
            {
                "num_aps": num_aps,
                "probes": index.queries,
                "grid_scanned_per_query": round(
                    index.scanned / index.queries, 3
                ),
                "linear_scanned_per_query": float(num_aps),
            }
        )
    smallest, largest = rows[0], rows[-1]
    growth = (
        largest["grid_scanned_per_query"] / smallest["grid_scanned_per_query"]
    )
    return {
        "probes_per_size": probes,
        "rows": rows,
        "grid_cost_growth_8_to_max": round(growth, 3),
        # "Flat" claim: grid cost may not even double while the linear
        # cost grows with N (50x here).
        "flat": growth < 2.0,
    }


def bench(path: Optional[str] = None) -> Dict:
    """The committed PR artifact: candidate-set scaling plus one
    end-to-end sharded gate run per bracketed deployment size."""
    result = {
        "bench": "pr10-shard-candidate-set",
        "candidate_set": candidate_set_bench(),
        "gate_runs": [
            run_schedule(3, num_shards=2, fleet=2, num_aps=8),
            run_schedule(3, num_shards=4, fleet=2, num_aps=24),
        ],
    }
    result["ok"] = bool(
        result["candidate_set"]["flat"]
        and all(r["ok"] for r in result["gate_runs"])
    )
    if path is not None:
        with open(path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


@register_experiment(
    "ext_shard",
    "sharded control plane: inter-shard handoffs vs runtime invariants",
    smoke="run_smoke",
)
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    """Sweep shard count x fleet size; every cell must pass the gate."""
    if quick:
        grid = [
            (seed, shards, fleet, 8.0, aps)
            for seed in (3,)
            for shards, fleet, aps in (
                (2, 1, 8),
                (2, 4, 8),
                (3, 2, 12),
            )
        ]
    else:
        grid = [
            (seed, shards, fleet, 10.0, aps)
            for seed in (3, 4)
            for shards, fleet, aps in (
                (2, 1, 8),
                (2, 4, 8),
                (3, 2, 12),
                (4, 4, 24),
                (6, 8, 48),
            )
        ]
    outcomes = list(run_grid(run_schedule, grid, jobs=jobs))
    failed = [o for o in outcomes if not o["ok"]]
    return {
        "cells": len(outcomes),
        "ok": not failed,
        "failed": failed,
        "handoffs_completed": sum(o["handoffs_completed"] for o in outcomes),
        "handoffs_abandoned": sum(o["handoffs_abandoned"] for o in outcomes),
        "duplicate_deliveries": sum(
            o["invariant_violations"]["no-duplicate-delivery"]
            for o in outcomes
        ),
        "violations": [v for o in outcomes for v in o["violations"]],
        "candidate_set": candidate_set_bench(num_aps_list=(8, 50, 200)),
        "rows": outcomes,
    }


# ----------------------------------------------------------------------
# CI smoke: one fleet crossing per topology + double-run determinism,
# hard pass/fail
# ----------------------------------------------------------------------


def run_smoke(seed: int = 3, duration_s: float = 8.0) -> Dict:
    """Small gate: two topologies (flat shards, per-shard HA), schedule
    #1 run twice and required to produce the identical outcome digest."""
    first = run_schedule(
        seed, num_shards=2, fleet=2, duration_s=duration_s, num_aps=8
    )
    ha_run = run_schedule(
        seed + 1,
        num_shards=2,
        fleet=1,
        duration_s=duration_s,
        num_aps=8,
        ha=True,
    )
    rerun = run_schedule(
        seed, num_shards=2, fleet=2, duration_s=duration_s, num_aps=8
    )
    outcomes = [first, ha_run]
    deterministic = outcome_digest(rerun) == outcome_digest(first)
    candidate_set = candidate_set_bench(num_aps_list=(8, 200), probes=64)
    ok = (
        all(o["ok"] for o in outcomes)
        and deterministic
        and candidate_set["flat"]
    )
    return {
        "ok": ok,
        "cells": len(outcomes),
        "deterministic": deterministic,
        "digest": outcome_digest(first),
        "handoffs_completed": sum(o["handoffs_completed"] for o in outcomes),
        "duplicate_deliveries": sum(
            o["invariant_violations"]["no-duplicate-delivery"]
            for o in outcomes
        ),
        "candidate_set": candidate_set,
        "violations": [v for o in outcomes for v in o["violations"]],
        "rows": outcomes,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ext_shard",
        description="sharded control plane gate + candidate-set bench",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset + determinism check; exit 1 on breach")
    parser.add_argument("--bench", metavar="PATH", nargs="?",
                        const="BENCH_PR10.json", default=None,
                        help="write the candidate-set bench artifact "
                        "(default %(const)s) and exit")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    if args.bench is not None:
        result = bench(path=args.bench)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    if args.smoke:
        result = run_smoke(seed=args.seed)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    result = run(quick=not args.full, jobs=args.jobs)
    print(json.dumps(result, indent=2, default=str))
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
