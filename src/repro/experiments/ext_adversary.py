"""Extension experiment: seeded protocol-fuzz gate for the adversary.

The paper's protocol is argued correct over a *benign* backhaul — the
worst it imagines is loss and latency.  This gate turns the
message-level adversary (:mod:`repro.faults`: duplication, stale
replay, corruption, one-way partitions, gray failure) loose on full
drive-bys while the runtime invariant checker
(:mod:`repro.invariants`) audits every correctness claim the switching
protocol makes:

* no invariant violations — single serving AP, monotonic serving
  generations, terminating handshakes, one active controller, bounded
  retry storms, liveness agreement;
* zero duplicate deliveries past the server-side dedup, no matter how
  many copies the adversary injects;
* eventual delivery — admitted flows make forward progress despite the
  abuse;
* byte-determinism — the same ``(seed, schedule)`` twice produces the
  identical outcome digest.

Each schedule draws Poisson windows of every adversary class from the
seed's own named streams (no crashes or symmetric partitions: this
gate isolates *message-level* misbehaviour), runs it over the plain
WGTT testbed and over the warm-standby HA pair, and hard-fails on any
breach.  ``--smoke`` runs a CI-sized subset plus a double-run
determinism check; the full sweep fuzzes ``>= 20`` schedules.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List, Optional

from repro.core.config import WgttConfig
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_grid
from repro.faults.plan import FaultPlan
from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import SECOND
from repro.sim.rng import RngRegistry

#: Adversary window arrival rates (per second of sim time) at
#: ``intensity=1`` — every class lands multiple windows per run.
DUPLICATION_RATE_PER_S = 0.5
REPLAY_RATE_PER_S = 0.4
CORRUPTION_RATE_PER_S = 0.3
ONEWAY_RATE_PER_S = 0.4
GRAY_RATE_PER_S = 0.3

#: Schedules per scheme in the full gate (>= 20 total with two schemes).
FULL_SCHEDULES_PER_SCHEME = 10
#: Schedules per scheme in the CI smoke.
SMOKE_SCHEDULES_PER_SCHEME = 2


def adversary_plan(
    seed: int,
    ap_ids: List[str],
    duration_us: int,
    intensity: float = 1.0,
) -> FaultPlan:
    """One seeded, purely message-level adversary schedule.

    Crash/partition rates stay zero on purpose: process failures have
    their own gates (``ext_faults``, ``ext_ha``); this one must prove
    the protocol is idempotent and replay-proof while every process
    stays up, so any invariant breach indicts a *handler*, not a
    recovery path.
    """
    plan_rng = RngRegistry(seed).spawn("adversary-plan")
    return FaultPlan.random(
        plan_rng,
        ap_ids,
        duration_us,
        duplication_rate_per_s=DUPLICATION_RATE_PER_S * intensity,
        duplication_copies=2,
        replay_rate_per_s=REPLAY_RATE_PER_S * intensity,
        corruption_rate_per_s=CORRUPTION_RATE_PER_S * intensity,
        oneway_rate_per_s=ONEWAY_RATE_PER_S * intensity,
        gray_rate_per_s=GRAY_RATE_PER_S * intensity,
    )


def run_schedule(
    seed: int,
    ha: bool = False,
    duration_s: float = 6.0,
    intensity: float = 1.0,
) -> Dict:
    """One adversary schedule over one testbed, invariants armed."""
    duration_us = int(duration_s * SECOND)
    base = TestbedConfig()
    ap_ids = [f"ap{i}" for i in range(base.num_aps)]
    plan = adversary_plan(seed, ap_ids, duration_us, intensity)
    config = TestbedConfig(
        seed=seed,
        scheme="wgtt",
        wgtt=WgttConfig(ha_enabled=True) if ha else WgttConfig(),
        fault_plan=plan,
    )
    testbed = build_testbed(config)
    checker = testbed.install_invariant_checker()

    dl_sender, dl_receiver = testbed.add_downlink_tcp_flow(0)
    dl_sender.start()
    ul_source, ul_sink = testbed.add_uplink_udp_flow(0, rate_bps=2e6)
    ul_source.start()

    testbed.run_seconds(duration_s)
    report = checker.finish()

    backhaul = testbed.backhaul.stats
    controller = testbed.active_controller()
    dedup = controller.dedup
    adversary_executed = len(plan.adversary_events())
    dl_progress = dl_receiver.rcv_nxt > 0
    ul_progress = len(ul_sink.arrivals) > 0

    outcome = {
        "seed": seed,
        "scheme": "ha" if ha else "wgtt",
        "planned_adversary_events": adversary_executed,
        "injected_duplicates": backhaul.duplicated,
        "injected_replays": backhaul.replayed,
        "corrupt_dropped": backhaul.corrupt_dropped,
        "oneway_dropped": backhaul.oneway_dropped,
        "gray_dropped": backhaul.gray_dropped,
        "dedup_suppressed": dedup.duplicates,
        "stale_acks": controller.coordinator.stale_acks,
        "switches": len(controller.coordinator.history),
        "invariant_checks": report["checks"],
        "invariant_violations": report["counts"],
        "violations": report["violations"],
        "downlink_segments": dl_receiver.rcv_nxt,
        "uplink_delivered": len(ul_sink.arrivals),
    }
    outcome["ok"] = bool(
        report["ok"]
        and report["counts"]["no-duplicate-delivery"] == 0
        and dl_progress
        and ul_progress
    )
    return outcome


def outcome_digest(outcome: Dict) -> str:
    """Canonical digest of everything a deterministic rerun must repeat."""
    payload = json.dumps(outcome, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@register_experiment(
    "ext_adversary",
    "protocol fuzz: message-level adversary schedules vs runtime invariants",
    smoke="run_smoke",
)
def run(quick: bool = True, jobs: Optional[int] = None) -> Dict:
    per_scheme = (
        FULL_SCHEDULES_PER_SCHEME
        if not quick
        else max(3, FULL_SCHEDULES_PER_SCHEME // 2)
    )
    duration_s = 6.0 if quick else 8.0
    grid = [
        (seed, ha, duration_s)
        for ha in (False, True)
        for seed in range(1, per_scheme + 1)
    ]
    outcomes = list(run_grid(run_schedule, grid, jobs=jobs))
    failed = [o for o in outcomes if not o["ok"]]
    return {
        "schedules": len(outcomes),
        "ok": not failed,
        "failed": failed,
        "injected_duplicates": sum(
            o["injected_duplicates"] for o in outcomes
        ),
        "injected_replays": sum(o["injected_replays"] for o in outcomes),
        "dedup_suppressed": sum(o["dedup_suppressed"] for o in outcomes),
        "stale_acks": sum(o["stale_acks"] for o in outcomes),
        "violations": [v for o in outcomes for v in o["violations"]],
        "rows": outcomes,
    }


# ----------------------------------------------------------------------
# CI smoke: a handful of schedules over both schemes, plus a
# double-run determinism check, hard pass/fail
# ----------------------------------------------------------------------


def run_smoke(seed: int = 3, duration_s: float = 5.0) -> Dict:
    """Small fuzz gate: N schedules per scheme; schedule #1 runs twice
    and must produce the identical outcome digest."""
    outcomes: List[Dict] = []
    for ha in (False, True):
        for offset in range(SMOKE_SCHEDULES_PER_SCHEME):
            outcomes.append(
                run_schedule(seed + offset, ha=ha, duration_s=duration_s)
            )
    rerun = run_schedule(seed, ha=False, duration_s=duration_s)
    first = next(
        o for o in outcomes if o["scheme"] == "wgtt" and o["seed"] == seed
    )
    deterministic = outcome_digest(rerun) == outcome_digest(first)
    exercised = (
        sum(o["injected_duplicates"] for o in outcomes) > 0
        and sum(o["injected_replays"] for o in outcomes) > 0
    )
    ok = all(o["ok"] for o in outcomes) and deterministic and exercised
    return {
        "ok": ok,
        "schedules": len(outcomes),
        "deterministic": deterministic,
        "digest": outcome_digest(first),
        "adversary_exercised": exercised,
        "violations": [v for o in outcomes for v in o["violations"]],
        "rows": outcomes,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ext_adversary",
        description="message-level adversary fuzz gate with runtime invariants",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset + determinism check; exit 1 on breach")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        result = run_smoke(seed=args.seed)
        print(json.dumps(result, indent=2, default=str))
        return 0 if result["ok"] else 1
    result = run(quick=not args.full, jobs=args.jobs)
    print(json.dumps(result, indent=2, default=str))
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
