"""Figures 14 & 15: throughput timeseries and AP association timeline.

A single 15 mph drive under each scheme, logging per-250 ms goodput and
which AP the client is attached to. The paper's picture: WGTT switches
~5×/s and holds steady throughput; Enhanced 802.11r rides each AP past
its cell edge, collapses, and (for TCP) hits an RTO drought.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.scenarios.testbed import TestbedConfig, build_testbed
from repro.sim.engine import MS, SECOND, Timer
from repro.experiments.registry import register_experiment


def run_scheme(
    seed: int, scheme: str, protocol: str = "tcp", speed_mph: float = 15.0,
    duration_s: float = 10.0, udp_rate_bps: float = 50e6,
) -> Dict:
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    testbed = build_testbed(config)
    association_series: List[Tuple[int, str]] = []

    def sample_association():
        association_series.append(
            (testbed.sim.now, testbed.serving_ap_of(0) or "-")
        )
        sampler.start(50 * MS)

    sampler = Timer(testbed.sim, sample_association)
    sampler.start(50 * MS)

    if protocol == "tcp":
        sender, receiver = testbed.add_downlink_tcp_flow(0)
        sender.start()
        testbed.run_seconds(duration_s)
        series = receiver.goodput_series_mbps(
            testbed.sim.now, bin_us=250 * MS
        )
        timeouts = sender.timeout_log
        throughput = sender.throughput_mbps(testbed.sim.now)
    else:
        source, sink = testbed.add_downlink_udp_flow(0, rate_bps=udp_rate_bps)
        source.start()
        testbed.run_seconds(duration_s)
        series = sink.throughput_series_mbps(testbed.sim.now, bin_us=250 * MS)
        timeouts = []
        throughput = sink.bytes_received() * 8 / duration_s / 1e6

    if testbed.controller is not None:
        switches = len(testbed.controller.coordinator.history)
    else:
        switches = max(0, len(testbed.clients[0].agent.association_log) - 1)
    return {
        "scheme": scheme,
        "protocol": protocol,
        "throughput_mbps": throughput,
        "goodput_series_mbps": series,
        "association_series": association_series,
        "association_changes": switches,
        "switches_per_second": switches / duration_s,
        "tcp_timeout_times_s": [t / SECOND for t in timeouts],
    }


@register_experiment("fig14", "TCP timeseries + association timeline")
def run(seed: int = 3, protocol: str = "tcp", quick: bool = False) -> Dict:
    duration = 6.0 if quick else 10.0
    return {
        "wgtt": run_scheme(seed, "wgtt", protocol, duration_s=duration),
        "baseline": run_scheme(seed, "baseline", protocol, duration_s=duration),
    }
