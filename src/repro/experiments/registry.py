"""Experiment registry: decorator-based driver registration.

The CLI used to carry a hand-maintained ``EXPERIMENTS`` dict that had
to be edited in lockstep with every new driver module.  Now each driver
registers itself::

    @register_experiment("fig13", "throughput vs speed, both schemes")
    def run(quick=True, protocols=("tcp", "udp"), jobs=None):
        ...

and the CLI discovers ids from the registry (:func:`discover` imports
every ``repro.experiments`` submodule once so decorators have run).
Drivers keep their historical ``run`` signatures; the registry adapts
them to the uniform call ``experiment.run(cfg, jobs=..., smoke=...)``
by matching keyword names against each driver's signature — the same
adaptation the CLI previously inlined.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Experiment",
    "register_experiment",
    "discover",
    "get",
    "experiment_ids",
    "descriptions",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Uniform run parameters handed to every driver."""

    # Not a pytest test class despite living near test-adjacent code.
    __test__ = False

    seed: int = 3
    #: Quick sweep (CI-sized) vs the full paper sweep.
    quick: bool = True


@dataclass
class ExperimentResult:
    """Uniform wrapper around whatever a driver returns."""

    __test__ = False

    experiment_id: str
    #: The driver's raw return value (dict of rows/series, usually).
    data: Any
    #: Config the run used.
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    #: True when this was the smoke variant.
    smoke: bool = False

    def rows(self) -> Optional[List[dict]]:
        """The tabular rows, when the driver produced any."""
        if isinstance(self.data, dict):
            rows = self.data.get("rows")
            if isinstance(rows, list):
                return rows
        return None


class Experiment:
    """One registered driver: id, description, adapted entry points."""

    def __init__(
        self,
        experiment_id: str,
        description: str,
        fn: Callable[..., Any],
        smoke: Optional[str] = None,
    ):
        self.experiment_id = experiment_id
        self.description = description
        self._fn = fn
        self._module = fn.__module__
        #: Name of a module-level smoke function (resolved lazily: the
        #: attribute is usually defined *after* the decorated run).
        self._smoke_name = smoke

    def _adapt(self, fn: Callable[..., Any], cfg: ExperimentConfig, jobs: int):
        kwargs: Dict[str, Any] = {}
        parameters = inspect.signature(fn).parameters
        if "seed" in parameters:
            kwargs["seed"] = cfg.seed
        if "quick" in parameters:
            kwargs["quick"] = cfg.quick
        if "jobs" in parameters:
            kwargs["jobs"] = jobs
        return fn(**kwargs)

    def _smoke_fn(self) -> Optional[Callable[..., Any]]:
        if self._smoke_name is None:
            return None
        import importlib

        module = importlib.import_module(self._module)
        return getattr(module, self._smoke_name)

    def run(
        self,
        cfg: Optional[ExperimentConfig] = None,
        *,
        jobs: int = 1,
        smoke: bool = False,
    ) -> ExperimentResult:
        """Execute the driver under the uniform interface."""
        cfg = cfg if cfg is not None else ExperimentConfig()
        from repro.experiments.runner import available_jobs, set_default_jobs

        if jobs == 0:
            jobs = available_jobs()
        set_default_jobs(jobs)
        fn = self._fn
        if smoke:
            smoke_fn = self._smoke_fn()
            if smoke_fn is None:
                raise ValueError(
                    f"experiment {self.experiment_id!r} has no smoke variant"
                )
            fn = smoke_fn
        data = self._adapt(fn, cfg, jobs)
        return ExperimentResult(
            experiment_id=self.experiment_id,
            data=data,
            config=cfg,
            smoke=smoke,
        )

    @property
    def has_smoke(self) -> bool:
        return self._smoke_name is not None


_REGISTRY: Dict[str, Experiment] = {}
_DISCOVERED = False


def register_experiment(
    experiment_id: str,
    description: str,
    smoke: Optional[str] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class the decorated function as experiment ``experiment_id``.

    Returns the function unchanged, so legacy ``module.run(...)`` calls
    keep working.  ``smoke`` names a module-level smoke-variant function
    (looked up lazily — it may be defined below the decorated run).
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        existing = _REGISTRY.get(experiment_id)
        if existing is not None and existing._fn is not fn:
            raise ValueError(
                f"experiment id {experiment_id!r} registered twice "
                f"({existing._module} and {fn.__module__})"
            )
        _REGISTRY[experiment_id] = Experiment(
            experiment_id, description, fn, smoke=smoke
        )
        return fn

    return decorate


#: Submodules of repro.experiments that are infrastructure, not drivers.
_NON_DRIVER_MODULES = frozenset({"common", "runner", "registry"})


def discover() -> Dict[str, Experiment]:
    """Import every driver module once; return the filled registry."""
    global _DISCOVERED
    if not _DISCOVERED:
        import importlib
        import pkgutil

        import repro.experiments as package

        for info in sorted(
            pkgutil.iter_modules(package.__path__), key=lambda i: i.name
        ):
            if info.name in _NON_DRIVER_MODULES or info.name.startswith("_"):
                continue
            importlib.import_module(f"repro.experiments.{info.name}")
        _DISCOVERED = True
    return dict(_REGISTRY)


def get(experiment_id: str) -> Experiment:
    registry = discover()
    try:
        return registry[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}") from None


def experiment_ids() -> List[str]:
    return sorted(discover())


def descriptions() -> Dict[str, str]:
    """id -> description for every registered experiment (sorted)."""
    registry = discover()
    return {
        experiment_id: registry[experiment_id].description
        for experiment_id in sorted(registry)
    }
