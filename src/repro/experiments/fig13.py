"""Figure 13: TCP and UDP throughput vs driving speed, both schemes.

The headline result. The paper reports WGTT holding ~6.6 Mbit/s (TCP) /
~8.7 Mbit/s (UDP) across 5–35 mph while Enhanced 802.11r decays from
2.7/3.3 Mbit/s at 5 mph to 0.8/1.9 Mbit/s at 35 mph — a 2.4–4.7× TCP
and 2.6–4.0× UDP advantage. Absolute numbers differ on our simulated
substrate; the shape — WGTT roughly flat, the baseline decaying, the
ratio growing with speed and landing in the paper's band — is the
reproduction target.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.bulk import run_bulk_download
from repro.experiments.common import mean, seeds_for
from repro.experiments.runner import run_grid
from repro.scenarios.testbed import TestbedConfig
from repro.experiments.registry import register_experiment

FULL_SPEEDS = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 35.0)
QUICK_SPEEDS = (5.0, 15.0, 25.0)


def _cell(
    scheme: str,
    protocol: str,
    speed_mph: float,
    seed: int,
    udp_rate_bps: float = 50e6,
) -> float:
    """One independent simulation: a single (scheme, protocol, speed,
    seed) drive-by.  Module-level and primitive-argument so the grid
    runner can ship it to worker processes."""
    config = TestbedConfig(
        seed=seed, scheme=scheme, client_speeds_mph=[speed_mph]
    )
    result = run_bulk_download(
        config, protocol=protocol, udp_rate_bps=udp_rate_bps
    )
    return result.throughput_mbps


def run_cell(
    scheme: str,
    protocol: str,
    speed_mph: float,
    seeds: tuple,
    udp_rate_bps: float = 50e6,
) -> float:
    """Seed-averaged throughput of one (scheme, protocol, speed) cell."""
    return mean(
        _cell(scheme, protocol, speed_mph, seed, udp_rate_bps)
        for seed in seeds
    )


@register_experiment("fig13", "throughput vs speed, both schemes")
def run(
    quick: bool = True,
    protocols: tuple = ("tcp", "udp"),
    jobs: Optional[int] = None,
) -> Dict:
    speeds = QUICK_SPEEDS if quick else FULL_SPEEDS
    seeds = seeds_for(quick)
    # Flatten the full (speed, protocol, scheme, seed) grid so the
    # runner can keep every worker busy; aggregation below re-walks the
    # same loop order, so the output never depends on ``jobs``.
    grid = [
        (scheme, protocol, speed, seed)
        for speed in speeds
        for protocol in protocols
        for scheme in ("wgtt", "baseline")
        for seed in seeds
    ]
    values = iter(run_grid(_cell, grid, jobs=jobs))
    rows: List[Dict] = []
    for speed in speeds:
        row: Dict = {"speed_mph": speed}
        for protocol in protocols:
            for scheme in ("wgtt", "baseline"):
                row[f"{protocol}_{scheme}_mbps"] = mean(
                    next(values) for _ in seeds
                )
            baseline = row[f"{protocol}_baseline_mbps"]
            row[f"{protocol}_gain"] = (
                row[f"{protocol}_wgtt_mbps"] / baseline if baseline > 0 else float("inf")
            )
        rows.append(row)
    return {"rows": rows, "speeds": list(speeds), "seeds": list(seeds)}
