"""Wi-Fi Goes to Town (SIGCOMM 2017) — reproduction library.

A microsecond-resolution discrete-event reproduction of the paper's
roadside picocell testbed: the WGTT controller/AP protocol suite
(CSI-driven AP selection, cyclic-queue switching, block-ACK forwarding,
uplink de-duplication), the Enhanced 802.11r baseline, and the full
802.11n MAC/PHY + channel + transport substrate they run on.

Quickstart::

    from repro.scenarios import TestbedConfig, build_testbed
    from repro.apps import BulkFlow

    testbed = build_testbed(TestbedConfig(seed=1, scheme="wgtt",
                                          client_speeds_mph=[15.0]))
    flow = testbed.add_downlink_tcp_flow(client_index=0)
    testbed.run_seconds(10.0)
    print(flow.throughput_mbps())
"""

__version__ = "1.0.0"
