"""Invariant checking for the sharded control plane.

Reuses the :class:`~repro.invariants.checker.InvariantChecker`
machinery (trace subscription, probe cadence, episode bookkeeping,
metrics shape) with shard-aware probes:

``single-owner-shard``
    Every client is tracked by at most one shard's active controller,
    and when tracked, by the shard the manager's ownership map names.
    Brief untracked windows (a handoff in backhaul flight) are legal;
    double-tracking never is.
``single-active-controller``
    Checked per shard: each region's HA pair has at most one
    controller in an active role.
``single-serving-ap``
    The global serving-duty invariant, with shard-aware excuses: a
    handoff in flight, the owning shard's handshake in progress, or
    dead/unreachable holders (resolved against the holder's own
    region controller).
``switch-span-terminates``
    Aggregated over every shard's active controller.
``no-duplicate-delivery`` / ``bounded-retry-storm``
    Trace-fed, inherited unchanged — crucially, duplicate delivery is
    audited on the *merged* server ingress stream, so a copy delivered
    by two different shards is caught exactly like one that escaped a
    single controller's dedup window.

``monotonic-serving-gen`` is deliberately absent: serving generations
are scoped to one controller incarnation, and a client that hands off
legitimately restarts its generation sequence on the new shard.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.invariants.checker import InvariantChecker


class ShardInvariantChecker(InvariantChecker):
    """Trace-fed + probe-based checker for a sharded testbed."""

    INVARIANTS: Tuple[str, ...] = (
        "bounded-retry-storm",
        "no-duplicate-delivery",
        "single-active-controller",
        "single-owner-shard",
        "single-serving-ap",
        "switch-span-terminates",
    )

    TRACE_NAMES: Tuple[str, ...] = (
        "uplink-deliver",
        "switch-retry",
    )

    def __init__(self, testbed, **kwargs):
        super().__init__(testbed, **kwargs)
        if testbed.shard_manager is None:
            raise ValueError(
                "ShardInvariantChecker requires a sharded testbed"
            )
        self._manager = testbed.shard_manager
        self._ap_shard: Dict[str, int] = {
            ap_id: k
            for k, shard in enumerate(self._manager.shards)
            for ap_id in shard.aps
        }

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _probe(self) -> None:
        self.checks += 1
        self._probe_single_active_per_shard()
        self._probe_single_owner_shard()
        # active=None: the shard-aware _overlap_excused below ignores it.
        self._probe_single_serving(None)
        self._probe_switch_spans_sharded()

    def _probe_single_active_per_shard(self) -> None:
        violating: Set[str] = set()
        for k, shard in enumerate(self._manager.shards):
            actives = [
                c.controller_id
                for c in shard.controllers()
                if c.alive
                and getattr(c, "role", "primary") in ("primary", "active")
            ]
            if len(actives) > 1:
                subject = f"shard{k}"
                violating.add(subject)
                self._violate_once(
                    "single-active-controller",
                    subject,
                    (
                        f"shard {k} has {len(actives)} active "
                        f"controllers at once: {sorted(actives)}"
                    ),
                )
        self._flagged = {
            key
            for key in self._flagged
            if key[0] != "single-active-controller" or key[1] in violating
        }

    def _probe_single_owner_shard(self) -> None:
        manager = self._manager
        tracked: Dict[str, List[int]] = {}
        for k, shard in enumerate(manager.shards):
            ctrl = shard.active_controller()
            if ctrl is None or not ctrl.alive:
                continue
            for client in ctrl._clients:
                tracked.setdefault(client, []).append(k)
        violating: Set[str] = set()
        for client in sorted(tracked):
            holders = tracked[client]
            owner = manager.owner_of(client)
            if len(holders) > 1:
                violating.add(client)
                self._violate_once(
                    "single-owner-shard",
                    client,
                    (
                        f"{client} tracked by {len(holders)} shard "
                        f"controllers at once ({holders}); owner map "
                        f"says shard {owner}"
                    ),
                )
            elif owner is not None and holders[0] != owner:
                violating.add(client)
                self._violate_once(
                    "single-owner-shard",
                    client,
                    (
                        f"{client} tracked by shard {holders[0]} but "
                        f"the ownership map names shard {owner}"
                    ),
                )
        self._flagged = {
            key
            for key in self._flagged
            if key[0] != "single-owner-shard" or key[1] in violating
        }

    def _overlap_excused(
        self, active, client: str, holders: List[str]
    ) -> bool:
        manager = self._manager
        if manager.handoff_in_flight(client):
            return True  # duty is legitimately moving between shards
        owner = manager.owner_of(client)
        if owner is None:
            return True  # departing: teardown is racing the probe
        owner_ctrl = manager.shards[owner].active_controller()
        if owner_ctrl is None or not owner_ctrl.alive:
            return True  # no authority exists to reconcile the overlap
        if owner_ctrl.coordinator.busy(client):
            return True  # mid-handshake within the owning shard
        backhaul = self._testbed.backhaul
        for ap_id in holders:
            ctrl = manager.shards[self._ap_shard[ap_id]].active_controller()
            if ctrl is None or not ctrl.alive:
                return True
            if ap_id in ctrl.dead_aps():
                return True
            if backhaul.unreachable(
                ctrl.controller_id, ap_id
            ) or backhaul.unreachable(ap_id, ctrl.controller_id):
                return True
        return False

    def _probe_switch_spans_sharded(self) -> None:
        now = self._sim.now
        bound = self._switch_age_bound_us()
        live: Set[str] = set()
        for shard in self._manager.shards:
            active = shard.active_controller()
            if active is None or not active.alive:
                continue
            coordinator = active.coordinator
            for client_id in sorted(coordinator._pending):
                pending = coordinator._pending[client_id]
                subject = f"{client_id}/{pending.switch_id}"
                live.add(subject)
                started = max(pending.record.started_us, active.epoch_us)
                age = now - started
                if age > bound:
                    self._violate_once(
                        "switch-span-terminates",
                        subject,
                        (
                            f"switch {pending.switch_id} for {client_id} "
                            f"pending {age}us, past the {bound}us "
                            f"retransmission envelope"
                        ),
                    )
        self._flagged = {
            key
            for key in self._flagged
            if key[0] != "switch-span-terminates" or key[1] in live
        }
