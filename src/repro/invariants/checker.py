"""Runtime protocol-invariant checker (paper §3 correctness claims).

The checker watches one built testbed from the *outside*: it subscribes
to the observability trace stream for the protocol events it needs and
runs a periodic state probe over controller/AP structures.  It never
mutates protocol state and never draws randomness, so an armed checker
cannot change what a run does — only what the run can *prove*.

Checked invariants
------------------

``single-serving-ap``
    At any probe instant, at most one **alive** AP holds serving duty
    for a client.  Clients mid-handshake (coordinator slot busy) are
    exempt, as is any overlap the controller cannot yet observe or
    repair: an involved AP that is declared dead, or separated from
    the controller by a (possibly one-way) partition.  Overlap must
    clear within a reconvergence slack once the excuse lifts.
``monotonic-serving-gen``
    Serving-update publications for a client carry strictly increasing
    ``(epoch_us, seq)`` generations.  A regression means two controller
    incarnations are publishing concurrently (split brain) or an epoch
    went backwards.
``switch-span-terminates``
    Every switch/failover handshake leaves the pending table within the
    retransmission schedule's worst-case envelope — it completes, is
    aborted, or fails over; nothing hangs.  Ages are measured from the
    later of the handshake start and the current controller epoch, so
    an outage frozen by ``halt()`` is not charged to the handshake.
``no-duplicate-delivery``
    No datagram key is handed to the server twice within the dedup
    window — the server-side :class:`~repro.core.dedup.PacketDeduplicator`
    actually suppressed every adversary-injected copy.
``single-active-controller``
    At most one controller is alive in an active role ("primary" or
    promoted "active") at any probe instant.
``bounded-retry-storm``
    No handshake retransmits more than ``switch_retry_limit`` times —
    duplicated/replayed control traffic must not amplify into a storm.
``liveness-agreement``
    The controller's AP liveness verdict agrees with ground truth,
    except while the AP is genuinely unreachable (partition, one-way
    partition) and within the detection/recovery slack after a
    transition.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import metric_key
from repro.sim.engine import Timer


#: Default probe cadence: 20 probes per simulated second.
DEFAULT_INTERVAL_US = 50_000

#: How long an excused serving overlap may persist after the excuse
#: lifts before it counts as a violation (serving-update propagation
#: plus one probe period, with margin).
DEFAULT_RECONVERGE_SLACK_US = 250_000


@dataclass(frozen=True)
class InvariantViolation:
    """One observed invariant breach, machine-readable."""

    t_us: int
    invariant: str
    subject: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "t_us": self.t_us,
            "invariant": self.invariant,
            "subject": self.subject,
            "message": self.message,
        }


class InvariantChecker:
    """Trace-fed + probe-based runtime checker for one testbed.

    Construct it against a built (WGTT-scheme) testbed, call
    :meth:`start` before the run and :meth:`finish` after.  The
    :class:`~repro.scenarios.testbed.Testbed` convenience
    ``install_invariant_checker()`` does the wiring — including
    registering :meth:`collect_metrics` with the metrics registry, so
    violations surface in snapshots and soak telemetry.
    """

    INVARIANTS: Tuple[str, ...] = (
        "bounded-retry-storm",
        "liveness-agreement",
        "monotonic-serving-gen",
        "no-duplicate-delivery",
        "single-active-controller",
        "single-serving-ap",
        "switch-span-terminates",
    )

    #: Trace event names the checker consumes.
    TRACE_NAMES: Tuple[str, ...] = (
        "serving-update",
        "uplink-deliver",
        "switch-retry",
    )

    def __init__(
        self,
        testbed,
        *,
        interval_us: int = DEFAULT_INTERVAL_US,
        reconverge_slack_us: int = DEFAULT_RECONVERGE_SLACK_US,
        max_violations: int = 256,
    ):
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self._testbed = testbed
        self._sim = testbed.sim
        self._interval_us = interval_us
        self._reconverge_slack_us = reconverge_slack_us
        self._max_violations = max_violations
        self._timer = Timer(self._sim, self._probe_tick)
        self.started = False
        self.finished = False
        #: Probe rounds completed.
        self.checks = 0
        #: All recorded violations (capped at ``max_violations``;
        #: counters keep counting past the cap).
        self.violations: List[InvariantViolation] = []
        #: Per-invariant violation counts (every invariant present).
        self.counts: Dict[str, int] = {name: 0 for name in self.INVARIANTS}
        self._drained = 0

        # -- trace-fed state ------------------------------------------
        #: client -> highest serving generation observed on the stream.
        self._serving_gen: Dict[str, Tuple[int, int]] = {}
        #: Recently server-delivered dedup keys (mirrors the dedup
        #: window's FIFO policy and capacity so bounded-memory eviction
        #: in the protocol is never misread as duplicate delivery).
        self._delivered: "OrderedDict[int, None]" = OrderedDict()
        self._delivered_cap = self._dedup_capacity()

        # -- probe episode state --------------------------------------
        #: client -> first probe time an inexcusable overlap was seen.
        self._overlap_since: Dict[str, int] = {}
        #: ap -> first probe time an inexcusable disagreement was seen.
        self._disagree_since: Dict[str, int] = {}
        #: (invariant, subject) pairs already flagged for the current
        #: episode — a persisting condition is reported once, not once
        #: per probe.
        self._flagged: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Subscribe to the trace stream and start probing."""
        if self.started:
            raise RuntimeError("InvariantChecker.start() called twice")
        self.started = True
        self._sim.obs.trace.subscribe(self._on_event, names=self.TRACE_NAMES)
        self._timer.start(self._interval_us)

    def finish(self) -> Dict[str, object]:
        """Stop probing, run one final probe, return the report."""
        if not self.finished:
            self.finished = True
            self._timer.stop()
            self._probe()
        return {
            "checks": self.checks,
            "ok": not self.violations,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
        }

    def drain_new(self) -> List[InvariantViolation]:
        """Violations recorded since the previous drain (soak guard
        integration: each sample converts fresh breaches to SLO
        violations exactly once)."""
        fresh = self.violations[self._drained:]
        self._drained = len(self.violations)
        return fresh

    def total_violations(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def collect_metrics(self) -> Dict[str, object]:
        """Registry collector: deterministic, sorted, always-complete.

        Every invariant exports a labelled count even at zero — a soak
        fingerprint must not change shape the moment something breaks.
        """
        out: Dict[str, object] = {
            "invariant_checks": self.checks,
            "invariant_violations_total": self.total_violations(),
        }
        for name in sorted(self.counts):
            out[metric_key("invariant_violations", invariant=name)] = (
                self.counts[name]
            )
        return out

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _violate(self, invariant: str, subject: str, message: str) -> None:
        self.counts[invariant] += 1
        violation = InvariantViolation(
            t_us=self._sim.now,
            invariant=invariant,
            subject=subject,
            message=message,
        )
        if len(self.violations) < self._max_violations:
            self.violations.append(violation)
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "invariants",
                "invariant-violation",
                track="invariants",
                invariant=invariant,
                subject=subject,
                message=message,
            )

    def _violate_once(
        self, invariant: str, subject: str, message: str
    ) -> None:
        """Flag a *persisting* condition once per episode."""
        key = (invariant, subject)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self._violate(invariant, subject, message)

    def _clear_episode(self, invariant: str, subject: str) -> None:
        self._flagged.discard((invariant, subject))

    # ------------------------------------------------------------------
    # trace-fed invariants
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        name = event.name
        if name == "serving-update":
            self._check_serving_gen(event)
        elif name == "uplink-deliver":
            self._check_duplicate_delivery(event)
        elif name == "switch-retry":
            self._check_retry_storm(event)

    def _check_serving_gen(self, event) -> None:
        client = str(event.tags.get("client"))
        gen = event.tags.get("gen")
        if not isinstance(gen, tuple):
            return  # pre-generation publisher (non-wgtt schemes)
        last = self._serving_gen.get(client)
        if last is not None and tuple(gen) <= last:
            self._violate(
                "monotonic-serving-gen",
                client,
                (
                    f"serving-update generation {gen} for {client} does "
                    f"not exceed previously published {last} — two "
                    f"controller incarnations are publishing"
                ),
            )
            return
        self._serving_gen[client] = tuple(gen)

    def _check_duplicate_delivery(self, event) -> None:
        key = event.tags.get("key")
        if key is None:
            return
        if event.tags.get("protocol") == "arp":
            return  # headerless traffic legitimately bypasses dedup
        key = int(key)
        if key in self._delivered:
            self._violate(
                "no-duplicate-delivery",
                str(event.tags.get("src")),
                (
                    f"datagram key {key:#x} (src={event.tags.get('src')} "
                    f"ip_id={event.tags.get('ip_id')}) delivered to the "
                    f"server twice — a duplicate escaped dedup"
                ),
            )
            return
        self._delivered[key] = None
        if len(self._delivered) > self._delivered_cap:
            self._delivered.popitem(last=False)

    def _check_retry_storm(self, event) -> None:
        retries = int(event.tags.get("retries", 0))
        limit = self._wgtt_config().switch_retry_limit
        if retries > limit:
            client = str(event.tags.get("client"))
            self._violate(
                "bounded-retry-storm",
                client,
                (
                    f"switch {event.tags.get('switch_id')} for {client} "
                    f"retransmitted {retries} times, past the "
                    f"{limit}-retry cap"
                ),
            )

    # ------------------------------------------------------------------
    # periodic state probes
    # ------------------------------------------------------------------

    def _probe_tick(self) -> None:
        self._probe()
        self._timer.start(self._interval_us)

    def _probe(self) -> None:
        self.checks += 1
        active = self._active_controller()
        self._probe_single_active_controller()
        self._probe_single_serving(active)
        if active is not None and active.alive:
            self._probe_switch_spans(active)
            self._probe_liveness_agreement(active)

    def _probe_single_active_controller(self) -> None:
        testbed = self._testbed
        actives = [
            c.controller_id
            for c in (testbed.controller, testbed.standby)
            if c is not None
            and c.alive
            and getattr(c, "role", "primary") in ("primary", "active")
        ]
        if len(actives) > 1:
            self._violate_once(
                "single-active-controller",
                ",".join(sorted(actives)),
                f"{len(actives)} controllers active at once: "
                f"{sorted(actives)}",
            )
        else:
            self._flagged = {
                key
                for key in self._flagged
                if key[0] != "single-active-controller"
            }

    def _probe_single_serving(self, active) -> None:
        testbed = self._testbed
        now = self._sim.now
        serving: Dict[str, List[str]] = {}
        for ap_id in sorted(testbed.wgtt_aps):
            ap = testbed.wgtt_aps[ap_id]
            if not ap.alive:
                continue
            for client in ap._serving:
                serving.setdefault(client, []).append(ap_id)
        overlapping = set()
        for client, holders in serving.items():
            if len(holders) <= 1:
                continue
            if self._overlap_excused(active, client, holders):
                continue
            overlapping.add(client)
            since = self._overlap_since.setdefault(client, now)
            if now - since >= self._reconverge_slack_us:
                self._violate_once(
                    "single-serving-ap",
                    client,
                    (
                        f"{client} held by {len(holders)} alive APs "
                        f"({holders}) for {now - since}us with no "
                        f"handshake in flight and no partition excuse"
                    ),
                )
        for client in list(self._overlap_since):
            if client not in overlapping:
                del self._overlap_since[client]
                self._clear_episode("single-serving-ap", client)

    def _overlap_excused(
        self, active, client: str, holders: List[str]
    ) -> bool:
        if active is None or not active.alive:
            return True  # no authority exists to reconcile the overlap
        if active.coordinator.busy(client):
            return True  # mid-handshake: duty is legitimately moving
        backhaul = self._testbed.backhaul
        controller_id = active.controller_id
        dead = active.dead_aps()
        for ap_id in holders:
            if ap_id in dead:
                return True  # controller already quarantined this AP
            if backhaul.unreachable(
                controller_id, ap_id
            ) or backhaul.unreachable(ap_id, controller_id):
                return True  # repair traffic cannot reach it (yet)
        return False

    def _probe_switch_spans(self, active) -> None:
        now = self._sim.now
        bound = self._switch_age_bound_us()
        coordinator = active.coordinator
        live = set()
        for client_id in sorted(coordinator._pending):
            pending = coordinator._pending[client_id]
            subject = f"{client_id}/{pending.switch_id}"
            live.add(subject)
            # Charge the handshake only for time under a live
            # controller: halt() freezes retransmission clocks, and a
            # restore resumes them at the new epoch.
            started = max(pending.record.started_us, active.epoch_us)
            age = now - started
            if age > bound:
                self._violate_once(
                    "switch-span-terminates",
                    subject,
                    (
                        f"switch {pending.switch_id} for {client_id} "
                        f"pending {age}us, past the {bound}us "
                        f"retransmission envelope"
                    ),
                )
        self._flagged = {
            key
            for key in self._flagged
            if key[0] != "switch-span-terminates" or key[1] in live
        }

    def _probe_liveness_agreement(self, active) -> None:
        testbed = self._testbed
        backhaul = testbed.backhaul
        now = self._sim.now
        slack = self._liveness_slack_us()
        declared_dead = active.dead_aps()
        controller_id = active.controller_id
        disagreeing = set()
        for ap_id in sorted(testbed.wgtt_aps):
            ap = testbed.wgtt_aps[ap_id]
            declared = ap_id in declared_dead
            actual = not ap.alive
            if declared == actual:
                continue
            if backhaul.unreachable(
                ap_id, controller_id
            ) or backhaul.unreachable(controller_id, ap_id):
                # Genuinely unreachable: the verdict is the best any
                # failure detector could do.  The episode clock resets
                # so detection gets a full window after the heal.
                self._disagree_since.pop(ap_id, None)
                continue
            disagreeing.add(ap_id)
            since = self._disagree_since.setdefault(ap_id, now)
            if now - since >= slack:
                verdict = "dead" if declared else "alive"
                truth = "dead" if actual else "alive"
                self._violate_once(
                    "liveness-agreement",
                    ap_id,
                    (
                        f"controller says {ap_id} is {verdict} but it "
                        f"is {truth}, and has been for {now - since}us "
                        f"(> {slack}us detection slack) with the "
                        f"backhaul reachable"
                    ),
                )
        for ap_id in list(self._disagree_since):
            if ap_id not in disagreeing:
                del self._disagree_since[ap_id]
                self._clear_episode("liveness-agreement", ap_id)

    # ------------------------------------------------------------------
    # derived bounds
    # ------------------------------------------------------------------

    def _active_controller(self):
        return self._testbed.active_controller()

    def _wgtt_config(self):
        return self._testbed.config.wgtt

    def _dedup_capacity(self) -> int:
        controller = getattr(self._testbed, "controller", None)
        if controller is not None and hasattr(controller, "dedup"):
            return int(controller.dedup.capacity)
        from repro.core.dedup import DEFAULT_CAPACITY

        return DEFAULT_CAPACITY

    def _switch_age_bound_us(self) -> int:
        """Worst-case pending lifetime from the retransmission schedule.

        The coordinator times out after ``switch_timeout_us`` with
        bounded exponential backoff capped at ``switch_backoff_max_us``
        and abandons after ``switch_retry_limit`` retries — summing the
        per-round caps (every round bounded by the backoff cap) plus
        two extra rounds of margin for in-flight backhaul latency and
        probe quantisation.
        """
        cfg = self._wgtt_config()
        per_round = max(cfg.switch_timeout_us, cfg.switch_backoff_max_us)
        rounds = cfg.switch_retry_limit + 1
        return per_round * (rounds + 2)

    def _liveness_slack_us(self) -> int:
        """Detection-lag allowance for the liveness table.

        Death detection lags by up to ``(miss_limit + 1)`` heartbeat
        periods; recovery by one period plus backhaul latency.  Allow
        one extra period for probe quantisation.
        """
        cfg = self._wgtt_config()
        return (cfg.heartbeat_miss_limit + 2) * cfg.heartbeat_interval_us
