"""Runtime protocol-invariant checking (``repro.invariants``).

An :class:`InvariantChecker` attaches to a built testbed, consumes the
observability trace stream, and probes protocol state on a fixed
sim-time cadence, asserting the correctness claims the switching
protocol is supposed to uphold under any message-level adversary:
single serving AP, monotonic serving generations, terminating switch
handshakes, no duplicate server delivery, a single active controller,
bounded retry storms, and liveness-table agreement.

See :mod:`repro.invariants.checker` for the invariant definitions and
``docs/robustness.md`` for the operator-facing guide.
"""

from repro.invariants.checker import (
    DEFAULT_INTERVAL_US,
    DEFAULT_RECONVERGE_SLACK_US,
    InvariantChecker,
    InvariantViolation,
)
from repro.invariants.shard import ShardInvariantChecker

__all__ = [
    "DEFAULT_INTERVAL_US",
    "DEFAULT_RECONVERGE_SLACK_US",
    "InvariantChecker",
    "InvariantViolation",
    "ShardInvariantChecker",
]
