"""Controller high availability: checkpoint/restore, warm standby,
and the in-process cluster glue (this repo's extension beyond the
paper — §6 names the central controller as the single point of
failure a deployment would have to engineer around).
"""

from repro.ha.checkpoint import (
    CHECKPOINT_VERSION,
    ControllerCheckpoint,
    checkpoint_controller,
    restore_controller,
)
from repro.ha.cluster import HaCluster
from repro.ha.standby import StandbyController

__all__ = [
    "CHECKPOINT_VERSION",
    "ControllerCheckpoint",
    "checkpoint_controller",
    "restore_controller",
    "HaCluster",
    "StandbyController",
]
