"""Deterministic, versioned controller checkpoints.

A checkpoint captures **all** of the controller's volatile protocol
state — the selection windows, the per-client serving map, the 12-bit
index cursors, every in-flight switch handshake (with its absolute
retransmission deadline), the dedup key window, and the AP liveness
table — as a plain JSON-able dict.  ``to_bytes`` renders it in
canonical form (sorted keys, no whitespace), so equal checkpoints have
equal bytes and a content digest identifies one uniquely.

Two consumers:

* the **warm standby** keeps the latest checkpoint and restores it at
  promotion time;
* a **restarted controller** can restore its own pre-crash checkpoint
  and continue; the bit-identical-continuation property test holds
  restore to producing the same subsequent event trace the uncrashed
  controller would have produced.

Restore is *state-only*: it sends no messages.  Timers are re-armed at
their checkpointed absolute deadlines (clamped to now), in a fixed
order — selection loops sorted by client, then the liveness check,
then pending switch retransmissions, then failover retries — so two
restores of the same checkpoint schedule identically.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict

from repro.core.assoc_sync import AssociationDirectory, StaInfo

#: Bump when the checkpoint layout changes; restore refuses mismatches.
#: v2: added "departed_at" (the departed-client replay guard — without
#: it a promoted standby would re-admit replayed sta-syncs for clients
#: that left before the failover; found by repro.analysis CKP001).
CHECKPOINT_VERSION = 2

#: Layout version of the *per-client* state slice that rides an
#: inter-shard handoff message; merge refuses mismatches.
CLIENT_STATE_VERSION = 1


@dataclass
class ControllerCheckpoint:
    """One serialized controller state, with provenance."""

    version: int
    taken_at_us: int
    controller_id: str
    state: Dict = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Canonical JSON: sorted keys, minimal separators.

        Canonical form makes equality structural (equal checkpoints ⇒
        equal bytes ⇒ equal digest) and round-trip lossless:
        ``from_bytes(cp.to_bytes()) == cp`` exactly.
        """
        return json.dumps(
            {
                "version": self.version,
                "taken_at_us": self.taken_at_us,
                "controller_id": self.controller_id,
                "state": self.state,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ControllerCheckpoint":
        decoded = json.loads(data.decode("utf-8"))
        return cls(
            version=int(decoded["version"]),
            taken_at_us=int(decoded["taken_at_us"]),
            controller_id=decoded["controller_id"],
            state=decoded["state"],
        )

    def digest(self) -> str:
        """Content digest of the canonical bytes."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @property
    def wire_size_bytes(self) -> int:
        return len(self.to_bytes())


def _sta_to_state(info: StaInfo) -> dict:
    return {
        "client": info.client,
        "associated_at_us": info.associated_at_us,
        "first_ap": info.first_ap,
        "authorized": info.authorized,
    }


def _sta_from_state(state: dict) -> StaInfo:
    return StaInfo(
        client=state["client"],
        associated_at_us=int(state["associated_at_us"]),
        first_ap=state["first_ap"],
        authorized=bool(state["authorized"]),
    )


def checkpoint_controller(controller) -> ControllerCheckpoint:
    """Snapshot a live controller into a checkpoint (read-only).

    Everything is copied into JSON-native shapes (lists, not tuples),
    so the in-memory checkpoint equals its own serialize/parse round
    trip element for element.
    """
    selector_state = {
        client_id: {
            ap_id: [[int(t), float(v)] for t, v in entries]
            for ap_id, entries in per_client.items()
        }
        for client_id, per_client in controller.selector.snapshot().items()
    }
    last_heard = {
        client_id: {
            ap_id: [int(t), float(v)]
            for ap_id, (t, v) in heard.items()
        }
        for client_id, heard in controller._last_heard.items()
    }
    state = {
        "clients": {
            client_id: client.to_state()
            for client_id, client in controller._clients.items()
        },
        "selection_deadlines": {
            client_id: timer.deadline_us
            for client_id, timer in controller._selection_timers.items()
        },
        "retry_deadlines": {
            client_id: timer.deadline_us
            for client_id, timer in controller._retry_timers.items()
        },
        "selector": selector_state,
        "coordinator": controller.coordinator.snapshot(),
        "liveness": controller.liveness.snapshot(),
        "dedup": controller.dedup.snapshot(),
        "directory": {
            client_id: _sta_to_state(controller.directory.get(client_id))
            for client_id in sorted(controller.directory.clients())
        },
        "index_cursors": controller._index_alloc.snapshot(),
        "ap_ids": sorted(controller._ap_ids),
        "dead_aps": sorted(controller._dead_aps),
        "last_heard": last_heard,
        "pending_claims": dict(controller._pending_claims),
        # List-of-pairs, not a dict: _departed_at is a bounded FIFO
        # (eviction order = insertion order) and JSON objects would
        # lose that order under canonical sorted-keys rendering.
        "departed_at": [
            [client_id, int(t)]
            for client_id, t in controller._departed_at.items()
        ],
    }
    return ControllerCheckpoint(
        version=CHECKPOINT_VERSION,
        taken_at_us=controller._sim.now,
        controller_id=controller.controller_id,
        state=state,
    )


def restore_controller(controller, checkpoint: ControllerCheckpoint) -> None:
    """Load a checkpoint into ``controller``, replacing its state.

    State-only — no backhaul messages.  Timer re-arming order is fixed
    (selection by client, liveness check, coordinator pending, retries
    by client) so same-microsecond event ties resolve identically on
    every restore of the same checkpoint.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {checkpoint.version} != "
            f"supported {CHECKPOINT_VERSION}"
        )
    state = checkpoint.state

    # Quiesce whatever the target controller was doing.  Sorted keys:
    # Timer.stop() is order-independent today, but restore is on the
    # bit-identical-continuation path and must not let dict insertion
    # history leak into event order (repro.analysis DET005).
    for client_id in sorted(controller._selection_timers):
        controller._selection_timers[client_id].stop()
    controller._selection_timers.clear()
    for client_id in sorted(controller._retry_timers):
        controller._retry_timers[client_id].stop()
    controller._retry_timers.clear()

    # Plain stores first.
    controller._ap_ids = set(state["ap_ids"])
    controller._dead_aps = set(state["dead_aps"])
    controller.selector.restore(state["selector"])
    controller.dedup.restore(state["dedup"])
    controller._index_alloc.restore(state["index_cursors"])
    directory = AssociationDirectory()
    for client_id in sorted(state["directory"]):
        directory.admit(_sta_from_state(state["directory"][client_id]))
    controller.directory = directory
    from repro.core.controller import ClientState  # cycle-free at runtime

    controller._clients = {
        client_id: ClientState.from_state(client_state)
        for client_id, client_state in state["clients"].items()
    }
    controller._last_heard = {
        client_id: {
            ap_id: (int(t), float(v))
            for ap_id, (t, v) in heard.items()
        }
        for client_id, heard in state["last_heard"].items()
    }
    controller._pending_claims = dict(state["pending_claims"])
    controller._departed_at = OrderedDict(
        (client_id, int(t)) for client_id, t in state["departed_at"]
    )

    # Timers, in the canonical order.
    for client_id in sorted(state["selection_deadlines"]):
        deadline = state["selection_deadlines"][client_id]
        if client_id in controller._clients and deadline is not None:
            controller._start_selection_loop(
                client_id, first_deadline_us=int(deadline)
            )
    controller.liveness.restore(state["liveness"])
    controller.coordinator.restore(state["coordinator"])
    for client_id in sorted(state["retry_deadlines"]):
        deadline = state["retry_deadlines"][client_id]
        if client_id in controller._clients and deadline is not None:
            controller._schedule_failover_retry(
                client_id, deadline_us=int(deadline)
            )


# -- per-client state transfer (inter-shard handoff) ------------------
#
# A whole-controller checkpoint moves one controller's state to its own
# warm standby.  An inter-shard handoff moves exactly *one client's*
# slice of that state to a different controller: the selection windows
# accumulated for the client, its serving-map entry, its index cursor,
# its slice of the dedup window, and the last-heard table — everything
# the receiving shard needs to continue the client's session without a
# fresh association or a duplicate upstream delivery.


def extract_client_state(controller, client_id: str) -> dict:
    """One client's controller-side state, in JSON-native shapes.

    Read-only, and must run *before* ``deregister_client`` on the
    sending side: deregistration aborts any in-flight switch and drops
    the very state being captured.  The in-flight switch record (if
    any) is carried for audit — the receiving shard does not resume it,
    because the handshake's target APs belong to the sending shard.
    """
    client = controller._clients[client_id]
    sta = None
    if controller.directory.is_associated(client_id):
        sta = _sta_to_state(controller.directory.get(client_id))
    selection_timer = controller._selection_timers.get(client_id)
    retry_timer = controller._retry_timers.get(client_id)
    heard = controller._last_heard.get(client_id, {})
    src_bits = hash(client_id) & 0xFFFFFFFF
    return {
        "version": CLIENT_STATE_VERSION,
        "client": client_id,
        "extracted_at_us": controller._sim.now,
        "from_controller": controller.controller_id,
        "state": client.to_state(),
        "sta": sta,
        "selector": {
            ap_id: [[int(t), float(v)] for t, v in entries]
            for ap_id, entries in controller.selector.client_snapshot(
                client_id
            ).items()
        },
        "dedup_keys": controller.dedup.keys_for_src(src_bits),
        "index_cursor": controller._index_alloc.peek(client_id),
        "last_heard": {
            ap_id: [int(t), float(v)] for ap_id, (t, v) in heard.items()
        },
        "selection_deadline_us": (
            selection_timer.deadline_us
            if selection_timer is not None and selection_timer.armed
            else None
        ),
        "retry_deadline_us": (
            retry_timer.deadline_us
            if retry_timer is not None and retry_timer.armed
            else None
        ),
        "pending_switch": controller.coordinator.snapshot()["pending"].get(
            client_id
        ),
    }


def client_state_to_bytes(state: dict) -> bytes:
    """Canonical JSON bytes of a per-client slice (wire payload)."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def client_state_from_bytes(data: bytes) -> dict:
    return json.loads(data.decode("utf-8"))


def merge_client_state(controller, state: dict, serving_ap=None) -> bool:
    """Graft a transferred client slice into ``controller``.

    Returns False (a no-op) if the controller already tracks the
    client — handoff retransmissions make duplicate arrivals routine,
    and merging twice would double state.  ``serving_ap`` overrides the
    transferred serving AP with one the receiving shard actually owns.

    State the receiving controller accumulated on its own — CSI windows
    and last-heard entries its APs overheard while the client
    approached the boundary — wins over the transferred copies (see
    :meth:`ApSelector.restore_client`).  The transferred retry deadline
    and pending switch are *not* re-armed: both reference the sending
    shard's APs.
    """
    if state["version"] != CLIENT_STATE_VERSION:
        raise ValueError(
            f"client state version {state['version']} != "
            f"supported {CLIENT_STATE_VERSION}"
        )
    client_id = state["client"]
    if client_id in controller._clients:
        return False
    from repro.core.controller import ClientState  # cycle-free at runtime

    client = ClientState.from_state(state["state"])
    if serving_ap is not None:
        client.serving_ap = serving_ap
    if state["sta"] is not None:
        controller.directory.admit(_sta_from_state(state["sta"]))
    controller.selector.restore_client(
        client_id,
        {
            ap_id: [(int(t), float(v)) for t, v in entries]
            for ap_id, entries in state["selector"].items()
        },
    )
    controller.dedup.merge_keys(state["dedup_keys"])
    controller._index_alloc.set_cursor(client_id, int(state["index_cursor"]))
    heard = controller._last_heard.setdefault(client_id, {})
    for ap_id in sorted(state["last_heard"]):
        t, v = state["last_heard"][ap_id]
        heard.setdefault(ap_id, (int(t), float(v)))
    if not heard:
        del controller._last_heard[client_id]
    # A client handed back after departing elsewhere is live again.
    controller._departed_at.pop(client_id, None)
    controller._clients[client_id] = client
    controller._publish_serving(client_id, client.serving_ap)
    deadline = state["selection_deadline_us"]
    if deadline is not None:
        controller._start_selection_loop(
            client_id, first_deadline_us=int(deadline)
        )
    else:
        controller._start_selection_loop(client_id)
    return True
