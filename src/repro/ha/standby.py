"""The warm-standby controller.

A second controller process sits on the backhaul, **inert**: before
promotion it ignores the data plane entirely and consumes only its warm
feed —

* ``ha-checkpoint`` — the primary's periodic state snapshot (canonical
  bytes; the standby keeps the latest);
* ``ctrl-heartbeat`` — the primary's liveness signal (the standby runs
  the same miss-counting detector the APs do);
* ``sta-sync`` broadcasts and mirrored ``serving-update``s — the
  between-checkpoints event feed, so promotion state is never staler
  than one backhaul latency for the serving map.

When the primary goes silent past the miss limit, the standby
**promotes** itself:

1. restore the latest checkpoint (state-only);
2. overlay warm-feed serving updates received after the checkpoint;
3. grant the AP liveness table a grace period (``reset_clock``) so a
   healthy array is not mass-declared dead from stale beat times;
4. broadcast ``ctrl-takeover`` so every AP re-homes, flushes its hold
   buffer, and heartbeats here;
5. re-publish the serving map and start controller heartbeats.

From then on it *is* the controller — the full inherited WgttController
machinery runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.ha.checkpoint import ControllerCheckpoint, restore_controller
from repro.net.backhaul import EthernetBackhaul
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry


class StandbyController(WgttController):
    """A WgttController that boots inert and activates on promotion."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        rng: RngRegistry,
        config: Optional[WgttConfig] = None,
        controller_id: str = "controller-b",
        primary_id: str = "controller",
    ):
        super().__init__(sim, backhaul, rng, config, controller_id)
        self.role = "standby"
        self.primary_id = primary_id
        self.promoted = False
        self.promoted_at_us: Optional[int] = None
        self.last_checkpoint: Optional[ControllerCheckpoint] = None
        #: client -> (received_at_us, ap): mirrored serving updates.
        self._warm_serving: Dict[str, Tuple[int, str]] = {}
        #: client -> highest serving generation seen in the warm feed;
        #: duplicated/replayed mirrors lose to it (same monotonic-
        #: generation rule the APs apply).
        self._warm_serving_gen: Dict[str, Tuple[int, int]] = {}
        self._primary_last_beat: Optional[int] = None
        self._primary_watch_timer = Timer(sim, self._primary_watch_tick)
        #: Fired right after promotion completes (HA cluster hook).
        self.on_promote = lambda: None
        self.stats["checkpoints_received"] = 0
        self.stats["promotions"] = 0
        self.stats["stale_warm_updates"] = 0

    # ------------------------------------------------------------------
    # warm feed (pre-promotion) vs full dispatch (post-promotion)
    # ------------------------------------------------------------------

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if not self.alive:
            return
        if kind == "ha-checkpoint":
            self._checkpoint_received(payload)
            return
        if kind == "ctrl-heartbeat":
            self._primary_beat()
            return
        if self.promoted:
            super()._on_backhaul(src, kind, payload)
            return
        # Inert: only the passive warm feed is consumed.
        if kind == "sta-sync":
            self.directory.admit(payload)
        elif kind == "serving-update":
            client_id, ap_id, gen = payload
            last = self._warm_serving_gen.get(client_id)
            if last is not None and gen <= last:
                # Duplicate or replayed mirror: the feed already holds
                # a same-or-newer generation for this client.
                self.stats["stale_warm_updates"] += 1
                return
            self._warm_serving_gen[client_id] = gen
            self._warm_serving[client_id] = (self._sim.now, ap_id)

    def _checkpoint_received(self, payload: object) -> None:
        data = payload if isinstance(payload, bytes) else bytes(payload)
        self.last_checkpoint = ControllerCheckpoint.from_bytes(data)
        self.stats["checkpoints_received"] += 1

    # ------------------------------------------------------------------
    # primary liveness
    # ------------------------------------------------------------------

    def _primary_beat(self) -> None:
        self._primary_last_beat = self._sim.now
        if not self.promoted and not self._primary_watch_timer.armed:
            interval = self._config.controller_heartbeat_interval_us
            if interval > 0:
                self._primary_watch_timer.start(interval)

    def _primary_watch_tick(self) -> None:
        if self.promoted:
            return  # promoted: the watch is moot
        interval = self._config.controller_heartbeat_interval_us
        deadline = self._config.controller_miss_limit * interval
        if (
            self._primary_last_beat is not None
            and self._sim.now - self._primary_last_beat > deadline
        ):
            self.promote()
            return
        self._primary_watch_timer.start(interval)

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------

    def promote(self) -> None:
        """Become the controller (idempotent)."""
        if self.promoted or not self.alive:
            return
        self.promoted = True
        self.role = "active"
        self.promoted_at_us = self._sim.now
        # Promotion starts a new controller epoch: serving generations
        # and the takeover announcement all carry it, so anything the
        # dead primary published (or an adversary replays of it) loses.
        self.epoch_us = self._sim.now
        self._serving_seq = 0
        self.stats["promotions"] += 1
        self._primary_watch_timer.stop()
        tracer = self._sim.obs.trace
        span = (
            tracer.begin(
                "ha", "promotion", track="ha", node=self.controller_id
            )
            if tracer.active
            else None
        )

        checkpoint = self.last_checkpoint
        restore_span = (
            tracer.begin(
                "ha",
                "checkpoint-restore",
                track="ha",
                from_checkpoint=checkpoint is not None,
            )
            if tracer.active
            else None
        )
        if checkpoint is not None:
            restore_controller(self, checkpoint)
            # The checkpoint is up to one shipping interval stale: the
            # dead primary kept allocating cyclic indices past the
            # checkpointed cursors.  Skid every cursor forward so none
            # is re-used (readers skip the gap); the APs' edge-reports
            # true the cursors up exactly as they re-home.
            self._index_alloc.skid(self._config.ha_index_skid)
        else:
            # Never received a checkpoint: bootstrap from the warm feed
            # alone.  Claims seed the serving map before registration so
            # register_association lands each client on the AP actually
            # serving it, not its first AP.
            for client_id in sorted(self._warm_serving):
                self._pending_claims.setdefault(
                    client_id, self._warm_serving[client_id][1]
                )
            for client_id in sorted(self.directory.clients()):
                self._register_from_directory(client_id)

        # Overlay serving updates mirrored after the checkpoint was cut.
        if checkpoint is not None:
            for client_id in sorted(self._warm_serving):
                received_at, ap_id = self._warm_serving[client_id]
                if received_at <= checkpoint.taken_at_us:
                    continue
                state = self._clients.get(client_id)
                if (
                    state is not None
                    and ap_id in self._ap_ids
                    and state.serving_ap != ap_id
                ):
                    state.serving_ap = ap_id
        self._warm_serving.clear()
        self._warm_serving_gen.clear()
        if restore_span is not None:
            tracer.end(restore_span, clients=len(self._clients))

        # Innocent-until-silent: checkpointed beat times are up to a
        # checkpoint interval + an outage old; judging them against the
        # post-promotion clock would mass-declare the array dead.
        self.liveness.reset_clock(self._sim.now)

        # Announce, re-publish, heartbeat.
        announce_span = (
            tracer.begin(
                "ha", "takeover-announce", track="ha", aps=len(self._ap_ids)
            )
            if tracer.active
            else None
        )
        for ap_id in sorted(self._ap_ids):
            self._backhaul.send_control(
                self.controller_id, ap_id, "ctrl-takeover", self.epoch_us
            )
        for client_id in sorted(self._clients):
            self._publish_serving(
                client_id, self._clients[client_id].serving_ap
            )
        if announce_span is not None:
            tracer.end(announce_span)
        self.start_ctrl_heartbeats()
        self.on_promote()
        if span is not None:
            tracer.end(span, clients=len(self._clients))

    def _register_from_directory(self, client_id: str) -> None:
        """register_association for a directory record already admitted
        pre-promotion (the admit inside is then a no-op)."""
        self.register_association(self.directory.get(client_id))
