"""In-process HA cluster glue: ingress routing + checkpoint shipping.

The cluster owns the pieces neither controller can own alone:

* **checkpoint shipping** — every ``checkpoint_interval_us`` the
  primary's state is serialized (canonical bytes) and shipped to the
  standby over the backhaul data path, so the wire cost is modelled;
* **ingress routing** — server-side downlink traffic enters through
  :meth:`accept_downlink`, which steers to whichever controller is
  currently active; packets arriving while *neither* is active (the
  detection gap) are counted in ``lost_downlink``, never silently
  dropped;
* **role flipping** — a primary that restarts after the standby
  promoted comes back *demoted*: no ``ctrl-hello`` resync (the cluster
  clears ``hello_on_restart``), standby role, inert.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.ha.checkpoint import checkpoint_controller
from repro.ha.standby import StandbyController
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.sim.engine import Simulator, Timer


class HaCluster:
    """One primary + one warm standby, wired for failover."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        primary: WgttController,
        standby: StandbyController,
        config: WgttConfig,
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config
        self.primary = primary
        self.standby = standby
        primary.ha_peer = standby.controller_id
        primary.on_restart = self._primary_restarted
        standby.on_promote = self._standby_promoted
        self._ship_timer = Timer(sim, self._ship_tick)
        self.checkpoints_shipped = 0
        self.checkpoint_bytes = 0
        #: Downlink packets that arrived while no controller was active.
        self.lost_downlink = 0
        #: (time_us, event) — cluster-level event trace for the audit.
        self.events: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeating and checkpoint shipping (primary side)."""
        self.primary.start_ctrl_heartbeats()
        interval = self._config.checkpoint_interval_us
        if interval > 0:
            self._ship_timer.start(interval)

    def active_controller(self) -> Optional[WgttController]:
        """Whoever currently owns the control plane, or None mid-gap."""
        if self.primary.alive and self.primary.role == "primary":
            return self.primary
        if self.standby.promoted and self.standby.alive:
            return self.standby
        return None

    def accept_downlink(self, packet: Packet) -> None:
        active = self.active_controller()
        if active is None:
            self.lost_downlink += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ha",
                    "downlink-lost",
                    track="ha",
                    detail=True,
                    client=packet.dst,
                )
            return
        active.accept_downlink(packet)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _ship_tick(self) -> None:
        if self.standby.promoted:
            # Failed over: nothing to ship (reverse shipping from the
            # promoted standby to a repaired primary is future work).
            return
        if self.primary.alive:
            data = checkpoint_controller(self.primary).to_bytes()
            self.checkpoints_shipped += 1
            self.checkpoint_bytes += len(data)
            self._backhaul.send(
                self.primary.controller_id,
                self.standby.controller_id,
                "ha-checkpoint",
                data,
                size_bytes=len(data),
            )
            self.events.append((self._sim.now, "checkpoint-shipped"))
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ha",
                    "checkpoint-ship",
                    track="ha",
                    detail=True,
                    bytes=len(data),
                )
        self._ship_timer.start(self._config.checkpoint_interval_us)

    def _standby_promoted(self) -> None:
        """The instant the standby takes over, the (dead) primary is
        pre-demoted: if it ever restarts it must not broadcast
        ``ctrl-hello`` and steal the AP array back."""
        self.primary.hello_on_restart = False
        self.events.append((self._sim.now, "standby-promoted"))

    def _primary_restarted(self) -> None:
        if self.standby.promoted:
            # The standby owns the control plane now: the ex-primary
            # comes back demoted and inert (hello_on_restart was
            # cleared at promotion time, and the standby role keeps
            # ingress routing away from it).
            self.primary.role = "standby"
            self.events.append((self._sim.now, "primary-demoted"))
        else:
            self.events.append((self._sim.now, "primary-restarted"))
