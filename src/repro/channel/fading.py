"""Small-scale frequency-selective fading.

Each AP↔client link carries a tapped-delay-line Rayleigh channel: a
handful of taps with an exponential power-delay profile (the paper
notes WGTT's small cells keep delay spread indoor-like, well within the
standard cyclic prefix). Every tap is a complex Gauss-Markov (AR(1))
process whose correlation over a lag ``dt`` is ``exp(-dt / tau)``;
``tau`` is tied to the Doppler frequency ``v / lambda`` so that the
coherence time lands in the 2–3 ms range the paper quotes for vehicular
speeds at 2.4 GHz. The 56 OFDM subcarrier gains (HT20: 52 data + 4
pilot subcarriers) are the DFT of the taps, which is exactly the CSI a
commodity Atheros NIC reports.

Evolution is lazy: the channel state advances only when sampled, in a
single exact AR(1) step per tap, so idle links cost nothing.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.sim.engine import SECOND

#: Number of OFDM subcarriers the Atheros CSI tool reports for HT20.
NUM_SUBCARRIERS = 56
#: FFT length for a 20 MHz 802.11n channel.
FFT_SIZE = 64
#: Sample period of a 20 MHz channel (50 ns) — tap spacing.
TAP_SPACING_S = 50e-9


def doppler_hz(speed_mps: float, wavelength_m: float, floor_hz: float = 2.0) -> float:
    """Maximum Doppler shift, floored for static scenes.

    Even a parked client sees a slowly varying channel (people, other
    traffic), so the Doppler never falls below ``floor_hz``.
    """
    return max(speed_mps / wavelength_m, floor_hz)


def coherence_time_us(doppler: float, factor: float = 0.25) -> float:
    """Coherence time in microseconds for a given Doppler frequency.

    ``factor = 0.25`` puts coherence at ~2.8 ms for 15 mph at 2.4 GHz,
    within the 2–3 ms band the paper cites from Tse & Viswanath.
    """
    return factor / doppler * SECOND


class TappedRayleighChannel:
    """A lazily-evolving multi-tap Rayleigh (optionally Rician) channel.

    Parameters
    ----------
    rng:
        Private random stream for this link.
    num_taps:
        Taps in the delay line; 6 gives visibly frequency-selective CSI.
    delay_spread_taps:
        Exponential PDP decay constant, in units of tap spacing.
    rician_k_db:
        Ratio of specular to scattered power. ``None`` (default) means
        pure Rayleigh — the paper's street shows deep fast fades.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_taps: int = 6,
        delay_spread_taps: float = 1.5,
        rician_k_db: Optional[float] = None,
    ):
        if num_taps < 1:
            raise ValueError("need at least one tap")
        self._rng = rng
        self.num_taps = num_taps
        powers = np.exp(-np.arange(num_taps) / delay_spread_taps)
        self._tap_powers = powers / powers.sum()
        if rician_k_db is None:
            self._k_linear = 0.0
        else:
            self._k_linear = 10.0 ** (rician_k_db / 10.0)
        # Scattered (Rayleigh) component per tap; LOS rides on tap 0.
        self._scatter_scale = np.sqrt(
            self._tap_powers / (2.0 * (1.0 + self._k_linear))
        )
        self._taps = self._draw_stationary()
        self._last_time_us: Optional[int] = None
        # DFT matrix mapping taps -> subcarrier gains.  A scenario has
        # O(APs x clients) links, each with its own channel instance,
        # but the matrix depends only on the tap count — share one copy
        # per tap count across the whole process.
        self._dft = _dft_matrix(num_taps)

    def _draw_stationary(self) -> np.ndarray:
        real = self._rng.standard_normal(self.num_taps)
        imag = self._rng.standard_normal(self.num_taps)
        taps = (real + 1j * imag) * self._scatter_scale
        if self._k_linear > 0.0:
            los_power = self._tap_powers[0] * self._k_linear / (1.0 + self._k_linear)
            taps[0] += math.sqrt(los_power)
        return taps

    def evolve_to(self, time_us: int, coherence_us: float) -> None:
        """Advance the AR(1) tap processes to ``time_us``.

        ``coherence_us`` may change between calls (the client speeds up
        or slows down); the step uses the value in force now.
        """
        if self._last_time_us is None:
            self._last_time_us = time_us
            return
        dt = time_us - self._last_time_us
        if dt <= 0:
            return
        rho = math.exp(-dt / coherence_us)
        n = self.num_taps
        # One RNG call for both quadratures: standard_normal(2n) yields
        # the same stream of values as two standard_normal(n) calls, so
        # seeded runs are unchanged.
        draws = self._rng.standard_normal(2 * n)
        innovation = (draws[:n] + 1j * draws[n:]) * self._scatter_scale
        if self._k_linear > 0.0:
            los = math.sqrt(
                self._tap_powers[0] * self._k_linear / (1.0 + self._k_linear)
            )
            scattered = self._taps.copy()
            scattered[0] -= los
            scattered = rho * scattered + math.sqrt(1.0 - rho * rho) * innovation
            scattered[0] += los
            self._taps = scattered
        else:
            # Pure Rayleigh (the default): no LOS bookkeeping, no copy.
            self._taps = rho * self._taps + math.sqrt(1.0 - rho * rho) * innovation
        self._last_time_us = time_us

    def power_at(self, time_us: int, coherence_us: float) -> np.ndarray:
        """Fused evolve + per-subcarrier power in one step.

        Equivalent to ``evolve_to`` followed by ``subcarrier_power``
        (same RNG draws, same state updates) but avoids the complex
        conjugate-multiply temporary — this is the per-frame path.
        """
        self.evolve_to(time_us, coherence_us)
        return subcarrier_power_from_taps(self._dft, self._taps)

    def peek_power_at(self, time_us: int, coherence_us: float) -> np.ndarray:
        """Subcarrier power at ``time_us`` *without* perturbing the
        process: state and RNG are restored afterwards, so oracle
        metrics can probe the channel without changing the run."""
        saved_taps = self._taps.copy()
        saved_time = self._last_time_us
        saved_rng_state = self._rng.bit_generator.state
        try:
            return self.power_at(time_us, coherence_us)
        finally:
            self._taps = saved_taps
            self._last_time_us = saved_time
            self._rng.bit_generator.state = saved_rng_state

    def subcarrier_gains(self) -> np.ndarray:
        """Complex gain on each of the 56 subcarriers (unit mean power)."""
        return np.add.reduce(self._dft * self._taps, axis=-1)

    def subcarrier_power(self) -> np.ndarray:
        """|h_k|^2 per subcarrier — multiplies the mean link SNR."""
        return subcarrier_power_from_taps(self._dft, self._taps)


def subcarrier_power_from_taps(dft: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """|DFT · taps|² via broadcast-multiply + ``add.reduce``.

    This formulation — *not* ``dft @ taps`` — is shared by the scalar
    per-link path and the fused multi-link path in
    :mod:`repro.channel.link_batch`: numpy's matmul routes 1-D and 2-D
    operands to different BLAS kernels (gemv vs gemm) whose summation
    orders differ in the last ulp, while an elementwise multiply
    followed by ``add.reduce(axis=-1)`` produces identical bits whether
    ``taps`` is one tap vector ``(T,)`` or a stack ``(L, 1, T)``.  That
    shared ordering is what makes batched fading evolution bit-identical
    to sequential :meth:`TappedRayleighChannel.evolve_to` calls.
    """
    gains = np.add.reduce(dft * taps, axis=-1)
    re = gains.real
    im = gains.imag
    return re * re + im * im


def _ht20_subcarrier_indices() -> np.ndarray:
    """The 56 occupied subcarrier indices of an HT20 channel (-28..28, no DC)."""
    indices = [k for k in range(-28, 29) if k != 0]
    return np.array(indices)


@lru_cache(maxsize=None)
def _dft_matrix(num_taps: int) -> np.ndarray:
    """Shared taps -> subcarrier-gains DFT matrix for ``num_taps`` taps.

    Built once per process and shared by every
    :class:`TappedRayleighChannel`; treated as frozen by all users.
    """
    subcarrier_indices = _ht20_subcarrier_indices()
    k = subcarrier_indices[:, None] * np.arange(num_taps)[None, :]
    return np.exp(-2j * np.pi * k / FFT_SIZE)
