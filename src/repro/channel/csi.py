"""Channel state information reports.

On real WGTT hardware the Atheros CSI tool measures the complex gain of
all 56 HT20 subcarriers on every received uplink frame; the AP wraps
the measurement in a UDP packet and ships it to the controller over the
Ethernet backhaul. This module is the simulated equivalent: a
:class:`CsiReport` is produced by the link model whenever an AP decodes
(or overhears) a client transmission, and consumed by the controller's
AP-selection algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.per import effective_snr_db_memoized


@dataclass
class CsiReport:
    """One CSI measurement of a client→AP uplink frame.

    Attributes
    ----------
    time_us:
        When the AP measured the frame.
    ap_id / client_id:
        Identifiers of the measuring AP and the transmitting client.
    subcarrier_snr_db:
        Per-subcarrier SNR in dB (56 entries for HT20).
    rssi_dbm:
        Wideband received power, the quantity legacy 802.11k/r roaming
        uses. Kept alongside the CSI so baselines share measurements.
    """

    time_us: int
    ap_id: str
    client_id: str
    subcarrier_snr_db: np.ndarray
    rssi_dbm: float
    _esnr_cache: float = field(default=None, repr=False, compare=False)

    @property
    def esnr_db(self) -> float:
        """Effective SNR of this measurement (computed once, cached)."""
        if self._esnr_cache is None:
            self._esnr_cache = effective_snr_db_memoized(self.subcarrier_snr_db)
        return self._esnr_cache

    def wire_size_bytes(self) -> int:
        """Size of the CSI report UDP payload on the backhaul.

        56 subcarriers x 2 bytes, plus identifiers and timestamp —
        matches the compact encapsulation the paper describes.
        """
        return 56 * 2 + 24
