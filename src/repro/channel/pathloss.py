"""Large-scale path loss for the 2.4 GHz roadside link.

A log-distance model anchored to the free-space loss at a 1 m
reference, with an excess-loss term that folds in everything the
paper's link budget hides: the 3-way RF splitter, window penetration,
cable losses. The defaults are calibrated (see ``repro.scenarios``)
so a client on an AP's antenna boresight sees roughly 25 dB of SNR —
enough for the top single-stream MCS — decaying to ~0 dB near the cell
edge, matching the ESNR ranges in the paper's Figure 2 and Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0
#: Carrier frequency of 2.4 GHz channel 11.
CHANNEL_11_HZ = 2.462e9


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB; distance is floored at 1 m."""
    distance_m = max(distance_m, 1.0)
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path loss with a calibrated excess-loss offset.

    loss(d) = FSPL(d0) + 10 * n * log10(d / d0) + excess_loss_db
    """

    exponent: float = 2.7
    reference_distance_m: float = 1.0
    frequency_hz: float = CHANNEL_11_HZ
    excess_loss_db: float = 30.0

    def __post_init__(self) -> None:
        # ``loss_db`` sits on the per-link geometry hot path; the
        # reference FSPL and the 10·n slope never change after
        # construction.  (object.__setattr__ because frozen=True.)
        # The summation order below mirrors the original expression
        # term for term, so the hoisting cannot move a single bit.
        object.__setattr__(
            self,
            "_reference_db",
            free_space_path_loss_db(self.reference_distance_m, self.frequency_hz),
        )
        object.__setattr__(self, "_slope_db", 10.0 * self.exponent)

    def loss_db(self, distance_m: float) -> float:
        """Total large-scale loss in dB at ``distance_m``."""
        distance_m = max(distance_m, self.reference_distance_m)
        return (
            self._reference_db
            + self._slope_db * math.log10(distance_m / self.reference_distance_m)
            + self.excess_loss_db
        )

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength — 12.2 cm at channel 11, as the paper notes."""
        return SPEED_OF_LIGHT / self.frequency_hz
