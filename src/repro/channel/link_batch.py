"""Fused same-timestamp evolution for a set of links (snapshot batching).

When a frame completes, the medium needs the channel snapshot of every
receiver *at the same instant*; when an oracle metric samples the
scenario, it probes every AP↔client link at one timestamp.  The scalar
path walks those links one Python call at a time — per-link AR(1)
steps, per-link 56-point DFTs, per-link ``log10`` — even though the
heavy math is identical in shape across the set.

:class:`LinkBatch` collects the links that share a timestamp and runs
one fused numpy pipeline over the whole stack:

1. per-link AR(1) coefficients (``rho``, ``sqrt(1 - rho²)``) and one
   ``standard_normal(2·taps)`` draw from each link's *private* stream —
   the draws must stay per-link so seeded runs are unchanged, and
   because every stream is private, drawing them back-to-back instead
   of interleaved with the math cannot change any stream's values;
2. one broadcast AR(1) update over the ``(n_links, taps)`` stack;
3. one ``(n_links, 56, taps)`` multiply + ``add.reduce`` DFT
   (:func:`repro.channel.fading.subcarrier_power_from_taps` — the same
   formulation the scalar path uses, see its docstring for why matmul
   is *not* usable here);
4. one ``(n_links, 56)`` ``linear_to_db`` + mean-SNR broadcast add.

Every elementwise kernel is shared with the scalar path, so a fused
evolution is **bit-identical** to sequential per-link
:meth:`~repro.channel.fading.TappedRayleighChannel.evolve_to` calls —
``tests/test_phy_batch.py`` asserts this property directly and the
batched-vs-scalar drive test in ``tests/test_perf_equivalence.py``
asserts it end-to-end.

Rician links (``k > 0``) and links that need no evolution fall back to
the exact scalar code for the state update and join the batch only for
the (state-independent) DFT/power/log stage.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.fading import _dft_matrix, subcarrier_power_from_taps
from repro.channel.link import Link
from repro.phy.ber import linear_to_db


class LinkBatch:
    """Plan and execute one fused multi-link snapshot at a timestamp.

    Entries are ``(link, tx_id)`` pairs — ``tx_id`` resolves the
    transmit power (either endpoint of the link may be the sender).
    Each link may appear at most once per batch.
    """

    __slots__ = ("time_us", "_entries")

    def __init__(self, time_us: int):
        self.time_us = time_us
        self._entries: List[Tuple[Link, str]] = []

    def add(self, link: Link, tx_id: str) -> None:
        self._entries.append((link, tx_id))

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # evolving snapshot (the medium path)
    # ------------------------------------------------------------------

    def snapshots(self) -> List[np.ndarray]:
        """Evolve every link to ``time_us`` and return the SNR snapshots.

        Side effects match the scalar path exactly: fading state and
        RNG streams advance, and each link's power/snapshot caches are
        seeded, so a subsequent ``link.subcarrier_snr_db(time_us, ...)``
        is a cache hit returning the same array object.
        """
        t = self.time_us
        entries = self._entries
        if len(entries) < 2:  # nothing to fuse — scalar path is cheaper
            return [
                link.subcarrier_snr_db(t, tx_id=tx_id)
                for link, tx_id in entries
            ]

        results: List[Optional[np.ndarray]] = [None] * len(entries)
        # (slot, link, tx_dbm, mean_db, cached_power_or_None)
        pending: List[tuple] = []
        evolve: List[tuple] = []  # Rayleigh links needing an AR(1) step
        for slot, (link, tx_id) in enumerate(entries):
            tx_dbm = link._tx_power_dbm(True, tx_id)
            cached = link._snr_cache
            if cached is not None and link._snr_key == (t, tx_dbm):
                results[slot] = cached
                continue
            mean_db = link.mean_snr_db(t, tx_id=tx_id)
            if link._cache_time == t:
                pending.append((slot, link, tx_dbm, mean_db, link._cache_power))
                continue
            ch = link._fading
            if ch._last_time_us is None:
                # First sample: the stationary draw is the state.
                ch._last_time_us = t
            elif t > ch._last_time_us:
                if ch._k_linear > 0.0:
                    # Rician: LOS bookkeeping stays on the scalar path.
                    ch.evolve_to(t, link._coherence_us())
                else:
                    evolve.append((link, ch))
            pending.append((slot, link, tx_dbm, mean_db, None))

        if evolve:
            self._fused_evolve(t, evolve)
        if not pending:
            return results  # type: ignore[return-value]

        # One DFT/power/log pipeline per tap count (all 6 in practice).
        by_taps: dict = {}
        for item in pending:
            ch = item[1]._fading
            by_taps.setdefault(ch.num_taps, []).append(item)
        for num_taps, group in by_taps.items():
            dft = _dft_matrix(num_taps)
            powers: List[np.ndarray] = []
            fresh = [item for item in group if item[4] is None]
            if fresh:
                taps_stack = np.empty(
                    (len(fresh), 1, num_taps), dtype=complex
                )
                for j, item in enumerate(fresh):
                    taps_stack[j, 0] = item[1]._fading._taps
                power_matrix = subcarrier_power_from_taps(dft, taps_stack)
            fresh_i = 0
            for item in group:
                if item[4] is None:
                    powers.append(power_matrix[fresh_i])
                    fresh_i += 1
                else:
                    powers.append(item[4])
            stacked = (
                power_matrix if fresh_i == len(group) else np.stack(powers)
            )
            fading_db = linear_to_db(stacked)
            mean_col = np.array(
                [item[3] for item in group], dtype=float
            )[:, None]
            snap_matrix = mean_col + fading_db
            for i, (slot, link, tx_dbm, _mean, cached_power) in enumerate(
                group
            ):
                power = powers[i]
                snapshot = snap_matrix[i]
                link._seed_snapshot(t, tx_dbm, power, snapshot)
                results[slot] = snapshot
        return results  # type: ignore[return-value]

    @staticmethod
    def _fused_evolve(t: int, evolve: List[tuple]) -> None:
        """One broadcast AR(1) step over all Rayleigh links needing one.

        Mirrors :meth:`TappedRayleighChannel.evolve_to` operation for
        operation; per-link draws come from each link's private stream.
        """
        by_taps: dict = {}
        for link, ch in evolve:
            by_taps.setdefault(ch.num_taps, []).append((link, ch))
        for num_taps, group in by_taps.items():
            n = num_taps
            count = len(group)
            # Preallocated buffers filled row by row — np.stack costs
            # more than the whole AR(1) update at these batch sizes.
            rhos = np.empty((count, 1))
            stds = np.empty((count, 1))
            draws = np.empty((count, 2 * n))
            scales = np.empty((count, n))
            taps_stack = np.empty((count, n), dtype=complex)
            for i, (link, ch) in enumerate(group):
                dt = t - ch._last_time_us
                rho = math.exp(-dt / link._coherence_us())
                rhos[i, 0] = rho
                stds[i, 0] = math.sqrt(1.0 - rho * rho)
                # Same stream, same bits as ``standard_normal(2n)``.
                ch._rng.standard_normal(2 * n, out=draws[i])
                scales[i] = ch._scatter_scale
                taps_stack[i] = ch._taps
            innovation = (draws[:, :n] + 1j * draws[:, n:]) * scales
            new_taps = rhos * taps_stack + stds * innovation
            for i, (_link, ch) in enumerate(group):
                # Row views: the scalar path never mutates taps in
                # place (every update rebinds), so sharing the backing
                # matrix is safe.
                ch._taps = new_taps[i]
                ch._last_time_us = t

    # ------------------------------------------------------------------
    # non-evolving probe (oracle metrics / figure drivers)
    # ------------------------------------------------------------------

    def probe_snapshots(self) -> List[np.ndarray]:
        """Side-effect-free batch counterpart of
        :meth:`Link.probe_subcarrier_snr_db`.

        Fading state, RNG streams and link caches are all left exactly
        as found; the returned snapshots are bit-identical to per-link
        scalar probes at the same instant.
        """
        t = self.time_us
        entries = self._entries
        if len(entries) < 2:
            return [
                link.probe_subcarrier_snr_db(t, tx_id=tx_id)
                for link, tx_id in entries
            ]
        saved = []  # (ch, taps_ref, last_time, rng_state) for evolved
        try:
            pending: List[tuple] = []
            evolve: List[tuple] = []
            for slot, (link, tx_id) in enumerate(entries):
                tx_dbm = link._tx_power_dbm(True, tx_id)
                mean_db = link.mean_snr_db(t, tx_id=tx_id)
                if link._cache_time == t:
                    pending.append(
                        (slot, link, tx_dbm, mean_db, link._cache_power)
                    )
                    continue
                ch = link._fading
                needs_step = (
                    ch._last_time_us is not None and t > ch._last_time_us
                )
                if needs_step:
                    # Taps are never mutated in place (updates rebind),
                    # so a reference — not a copy — restores exactly.
                    saved.append(
                        (
                            ch,
                            ch._taps,
                            ch._last_time_us,
                            ch._rng.bit_generator.state,
                        )
                    )
                    if ch._k_linear > 0.0:
                        ch.evolve_to(t, link._coherence_us())
                    else:
                        evolve.append((link, ch))
                elif ch._last_time_us is None:
                    saved.append((ch, ch._taps, None, None))
                    ch._last_time_us = t
                pending.append((slot, link, tx_dbm, mean_db, None))
            if evolve:
                self._fused_evolve(t, evolve)

            results: List[Optional[np.ndarray]] = [None] * len(entries)
            by_taps: dict = {}
            for item in pending:
                ch = item[1]._fading
                by_taps.setdefault(ch.num_taps, []).append(item)
            for num_taps, group in by_taps.items():
                dft = _dft_matrix(num_taps)
                powers: List[np.ndarray] = []
                fresh = [item for item in group if item[4] is None]
                if fresh:
                    taps_stack = np.empty(
                        (len(fresh), 1, num_taps), dtype=complex
                    )
                    for j, item in enumerate(fresh):
                        taps_stack[j, 0] = item[1]._fading._taps
                    power_matrix = subcarrier_power_from_taps(dft, taps_stack)
                fresh_i = 0
                for item in group:
                    if item[4] is None:
                        powers.append(power_matrix[fresh_i])
                        fresh_i += 1
                    else:
                        powers.append(item[4])
                stacked = (
                    power_matrix
                    if fresh_i == len(group)
                    else np.stack(powers)
                )
                fading_db = linear_to_db(stacked)
                mean_col = np.array(
                    [item[3] for item in group], dtype=float
                )[:, None]
                snap_matrix = mean_col + fading_db
                for i, item in enumerate(group):
                    results[item[0]] = snap_matrix[i]
            return results  # type: ignore[return-value]
        finally:
            for ch, taps, last_time, rng_state in saved:
                ch._taps = taps
                ch._last_time_us = last_time
                if rng_state is not None:
                    ch._rng.bit_generator.state = rng_state


def warm_snapshots(
    time_us: int, entries: List[Tuple[Link, str]]
) -> List[np.ndarray]:
    """Convenience wrapper: fused evolve + cache-seed for ``entries``."""
    batch = LinkBatch(time_us)
    for link, tx_id in entries:
        batch.add(link, tx_id)
    return batch.snapshots()


def probe_snapshots(
    time_us: int, entries: List[Tuple[Link, str]]
) -> List[np.ndarray]:
    """Convenience wrapper: side-effect-free fused probe for ``entries``."""
    batch = LinkBatch(time_us)
    for link, tx_id in entries:
        batch.add(link, tx_id)
    return batch.probe_snapshots()
