"""Per-pair radio links: geometry + antennas + path loss + fading.

A :class:`Link` answers the question every other layer asks of the
channel: *if node A transmits to node B at time t, what per-subcarrier
SNR does B see?* It combines

* the transmit power of the sender,
* both antenna gains along the current geometry (the client moves,
  so gains are re-evaluated from the mobility model at every sample),
* log-distance path loss, and
* the tapped Rayleigh fading process, evolved lazily to ``t``.

The fading taps are shared between the two directions of a pair —
TDD channel reciprocity — which is precisely the property WGTT relies
on when it predicts *downlink* deliverability from *uplink* CSI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.channel.antenna import Antenna
from repro.channel.fading import (
    NUM_SUBCARRIERS,
    TappedRayleighChannel,
    coherence_time_us,
    doppler_hz,
)
from repro.channel.pathloss import LogDistancePathLoss
from repro.mobility.road import Position
from repro.phy.ber import linear_to_db
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Thermal noise over 20 MHz plus a 7 dB receiver noise figure.
NOISE_FLOOR_DBM = -94.0


@dataclass
class RadioPort:
    """One radio endpoint (an AP's antenna port or a client device).

    ``position_fn`` maps absolute simulation time to a position, so a
    static AP passes a constant and a vehicle passes its track's
    ``position_at``. ``speed_mps_fn`` feeds the Doppler model.
    """

    node_id: str
    antenna: Antenna
    tx_power_dbm: float
    position_fn: Callable[[int], Position]
    speed_mps_fn: Callable[[], float] = field(default=lambda: 0.0)
    #: One-slot position memo.  A client port is shared by every link
    #: that involves the client, so when a frame completes, the mobility
    #: model is evaluated once per timestamp instead of once per link.
    _pos_time: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pos_cache: Optional[Position] = field(
        default=None, init=False, repr=False, compare=False
    )

    def position_at(self, time_us: int) -> Position:
        if self._pos_time == time_us:
            return self._pos_cache
        pos = self.position_fn(time_us)
        self._pos_time = time_us
        self._pos_cache = pos
        return pos


class Link:
    """The radio channel between one AP port and one client port."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        ap: RadioPort,
        client: RadioPort,
        pathloss: Optional[LogDistancePathLoss] = None,
        coherence_factor: float = 0.25,
        rician_k_db: Optional[float] = None,
    ):
        self._sim = sim
        self.ap = ap
        self.client = client
        self.pathloss = pathloss or LogDistancePathLoss()
        self._coherence_factor = coherence_factor
        self._fading = TappedRayleighChannel(
            rng.stream(f"fading/{ap.node_id}/{client.node_id}"),
            rician_k_db=rician_k_db,
        )
        self._cache_time: Optional[int] = None
        self._cache_power: Optional[np.ndarray] = None
        # Per-(time, tx power) cache of the assembled SNR snapshot.  A
        # completion asks for the same snapshot from several layers
        # (medium, CSI path, PHY memos); returning one stable array
        # object lets the identity memos in repro.phy.per hit, and is
        # the hand-off point the fused batch path
        # (repro.channel.link_batch) seeds.
        self._snr_key: Optional[Tuple[int, float]] = None
        self._snr_cache: Optional[np.ndarray] = None
        # scalar memos keyed on (time_us, tx_power_dbm): geometry terms
        # and the derived effective SNR, both re-asked several times per
        # event (medium decode check, interference terms, CSI path).
        # The mean-SNR memo holds a handful of entries rather than one:
        # the interference scan samples the *start* times of every
        # overlapping transmission, and those keys recur across the
        # completions in a busy window — a single slot thrashes.
        self._mean_snr_cache: Dict[Tuple[int, float], float] = {}
        self._esnr_key: Optional[Tuple[int, float]] = None
        self._esnr_db: float = 0.0
        self._coh_speed: Optional[float] = None
        self._coh_us: float = 0.0

    def invalidate_geometry(self) -> None:
        """Drop the scalar geometry memos.

        The memos key on simulation time, which assumes positions are a
        pure function of time.  Drivers that *mutate* geometry at a
        fixed time (fig10 walks a probe client across a grid) must call
        :meth:`ChannelMap.invalidate_geometry` after each mutation.
        """
        self._mean_snr_cache.clear()
        self._esnr_key = None
        self._snr_key = None

    # ------------------------------------------------------------------
    # large-scale terms
    # ------------------------------------------------------------------

    def distance_m(self, time_us: int) -> float:
        return self.ap.position_at(time_us).distance_to(
            self.client.position_at(time_us)
        )

    def _combined_gain_db(self, time_us: int) -> float:
        ap_pos = self.ap.position_at(time_us)
        client_pos = self.client.position_at(time_us)
        return self.ap.antenna.gain_dbi(client_pos) + self.client.antenna.gain_dbi(
            ap_pos
        )

    def _tx_power_dbm(self, downlink: bool, tx_id: Optional[str]) -> float:
        if tx_id is not None:
            if tx_id == self.ap.node_id:
                return self.ap.tx_power_dbm
            if tx_id == self.client.node_id:
                return self.client.tx_power_dbm
            raise ValueError(f"{tx_id!r} is not an endpoint of this link")
        return self.ap.tx_power_dbm if downlink else self.client.tx_power_dbm

    def mean_snr_db(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> float:
        """Average (fading-free) SNR of the link at ``time_us``.

        The transmitter is named by ``tx_id`` (either endpoint), or by
        the ``downlink`` flag for the common AP→client / client→AP case.

        The geometry terms (positions, antenna gains, path loss) are
        memoized per ``(time_us, tx_power)`` — the medium asks for this
        several times per frame (decode check, interference, RSSI).
        """
        tx_dbm = self._tx_power_dbm(downlink, tx_id)
        key = (time_us, tx_dbm)
        cache = self._mean_snr_cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        ap_pos = self.ap.position_at(time_us)
        client_pos = self.client.position_at(time_us)
        value = (
            tx_dbm
            + self.ap.antenna.gain_dbi(client_pos)
            + self.client.antenna.gain_dbi(ap_pos)
            - self.pathloss.loss_db(ap_pos.distance_to(client_pos))
            - NOISE_FLOOR_DBM
        )
        if len(cache) >= 32:
            cache.clear()
        cache[key] = value
        return value

    def mean_rx_power_dbm(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> float:
        """Average received power — the RSSI legacy roaming decides on."""
        return self.mean_snr_db(time_us, downlink, tx_id) + NOISE_FLOOR_DBM

    # ------------------------------------------------------------------
    # small-scale terms
    # ------------------------------------------------------------------

    def _coherence_us(self) -> float:
        speed = max(self.ap.speed_mps_fn(), self.client.speed_mps_fn())
        # Speeds are constant for most of a run; memoize the Doppler /
        # coherence math on the speed value itself.
        if speed != self._coh_speed:
            doppler = doppler_hz(speed, self.pathloss.wavelength_m)
            self._coh_speed = speed
            self._coh_us = coherence_time_us(doppler, self._coherence_factor)
        return self._coh_us

    def _subcarrier_power(self, time_us: int) -> np.ndarray:
        """Fading power per subcarrier, evolved (and cached) for ``time_us``."""
        if self._cache_time != time_us:
            self._cache_power = self._fading.power_at(time_us, self._coherence_us())
            self._cache_time = time_us
        return self._cache_power

    def subcarrier_snr_db(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> np.ndarray:
        """Per-subcarrier SNR (dB): the CSI-equivalent channel snapshot.

        Cached per ``(time_us, tx power)`` — repeated queries within one
        frame completion return the *same* array object, which the
        identity memos in :mod:`repro.phy.per` key on.  Treated as
        immutable by every consumer.
        """
        tx_dbm = self._tx_power_dbm(downlink, tx_id)
        key = (time_us, tx_dbm)
        cached = self._snr_cache
        if cached is not None and self._snr_key == key:
            return cached
        mean_db = self.mean_snr_db(time_us, downlink, tx_id)
        snapshot = mean_db + linear_to_db(self._subcarrier_power(time_us))
        self._snr_key = key
        self._snr_cache = snapshot
        return snapshot

    def _seed_snapshot(
        self,
        time_us: int,
        tx_dbm: float,
        power: np.ndarray,
        snapshot: np.ndarray,
    ) -> None:
        """Install a batch-computed snapshot into the per-link caches.

        Called by :mod:`repro.channel.link_batch` after a fused
        multi-link evolution; the arrays must be exactly what the
        scalar path would have produced (the fused path computes them
        with bit-identical kernels).
        """
        self._cache_time = time_us
        self._cache_power = power
        self._snr_key = (time_us, tx_dbm)
        self._snr_cache = snapshot

    def esnr_db(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> float:
        """Effective SNR of the link at ``time_us``, memoized.

        The memo key pairs the timestamp with the resolved transmit
        power, so the two directions of the link cache independently;
        it sits alongside the subcarrier-power cache and makes repeated
        per-frame ESNR queries (controller metrics, figure drivers)
        O(1) after the first evaluation.
        """
        from repro.phy.esnr import effective_snr_db

        tx_dbm = self._tx_power_dbm(downlink, tx_id)
        key = (time_us, tx_dbm)
        if self._esnr_key == key:
            return self._esnr_db
        value = effective_snr_db(self.subcarrier_snr_db(time_us, downlink, tx_id))
        self._esnr_key = key
        self._esnr_db = value
        return value

    def rssi_dbm(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> float:
        """Instantaneous wideband received power including fading."""
        power = self._subcarrier_power(time_us)
        fading_db = float(
            linear_to_db(float(np.add.reduce(power)) / power.shape[0])
        )
        return self.mean_rx_power_dbm(time_us, downlink, tx_id) + fading_db

    def probe_subcarrier_snr_db(
        self, time_us: int, downlink: bool = True, tx_id: Optional[str] = None
    ) -> np.ndarray:
        """Side-effect-free channel probe for oracle metrics.

        Unlike :meth:`subcarrier_snr_db`, this does not advance the
        fading process or consume randomness — measuring ground truth
        never changes the experiment.
        """
        if self._cache_time == time_us:
            power = self._cache_power
        else:
            power = self._fading.peek_power_at(time_us, self._coherence_us())
        mean_db = self.mean_snr_db(time_us, downlink, tx_id)
        return mean_db + linear_to_db(power)

    def snapshot(self, time_us: Optional[int] = None, downlink: bool = True):
        """Convenience: subcarrier SNRs at 'now' (or an explicit time)."""
        if time_us is None:
            time_us = self._sim.now
        return self.subcarrier_snr_db(time_us, downlink)


class ChannelMap:
    """Registry of every AP↔client link in a scenario.

    The MAC-layer medium pulls links from here to decide decode success
    and interference; the WGTT controller never touches it (it only
    sees CSI reports, like the real system).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        pathloss: Optional[LogDistancePathLoss] = None,
        coherence_factor: float = 0.25,
        rician_k_db: Optional[float] = None,
    ):
        self._sim = sim
        self._rng = rng
        self._pathloss = pathloss or LogDistancePathLoss()
        self._coherence_factor = coherence_factor
        self._rician_k_db = rician_k_db
        self._links: Dict[Tuple[str, str], Link] = {}
        self._ports: Dict[str, RadioPort] = {}
        #: per-endpoint index of instantiated links, maintained on link
        #: creation so ``links_for_client`` never scans the full map.
        self._links_by_port: Dict[str, List[Link]] = {}

    def register_port(self, port: RadioPort) -> None:
        if port.node_id in self._ports:
            raise ValueError(f"duplicate radio port id {port.node_id!r}")
        self._ports[port.node_id] = port

    def port(self, node_id: str) -> RadioPort:
        return self._ports[node_id]

    def port_ids(self):
        return self._ports.keys()

    def link(self, a_id: str, b_id: str) -> Link:
        """The (lazily created) link between any two radio ports.

        The pair key is order-normalized so ``link(a, b)`` and
        ``link(b, a)`` return the same object — the channel itself is
        reciprocal; only transmit power depends on direction.
        """
        if a_id == b_id:
            raise ValueError("a link needs two distinct endpoints")
        key = (a_id, b_id) if a_id <= b_id else (b_id, a_id)
        existing = self._links.get(key)
        if existing is None:
            existing = Link(
                self._sim,
                self._rng,
                self._ports[key[0]],
                self._ports[key[1]],
                pathloss=self._pathloss,
                coherence_factor=self._coherence_factor,
                rician_k_db=self._rician_k_db,
            )
            self._links[key] = existing
            self._links_by_port.setdefault(key[0], []).append(existing)
            self._links_by_port.setdefault(key[1], []).append(existing)
        return existing

    def invalidate_geometry(self) -> None:
        """Drop every position/geometry memo in the scenario.

        Required after mutating a mobility model in place at a fixed
        simulation time (see :meth:`Link.invalidate_geometry`).
        """
        for port in self._ports.values():
            port._pos_time = None
            port._pos_cache = None
        for link in self._links.values():
            link.invalidate_geometry()

    def links_for_client(self, client_id: str):
        """All instantiated links that involve ``client_id``.

        Served from the per-endpoint index (O(links of this client))
        rather than a scan of every link in the scenario.
        """
        return list(self._links_by_port.get(client_id, ()))

    def forget_port(self, node_id: str) -> None:
        """Tear down one endpoint and every link touching it.

        Client churn needs this: a retired vehicle's RadioPort and its
        per-AP Links (fading streams, SNR memos) would otherwise pin
        memory forever — the same unbounded-growth class as
        ``IndexAllocator.forget_client``.  Callers must wait until the
        medium holds no in-flight transmission history naming the port
        (the testbed defers retirement past the interference-history
        horizon) or ``link()`` lookups on stale history would fail.
        """
        if node_id not in self._ports:
            return
        del self._ports[node_id]
        gone = self._links_by_port.pop(node_id, [])
        for link in gone:
            peer = (
                link.ap.node_id
                if link.client.node_id == node_id
                else link.client.node_id
            )
            key = (
                (node_id, peer) if node_id <= peer else (peer, node_id)
            )
            self._links.pop(key, None)
            peer_links = self._links_by_port.get(peer)
            if peer_links is not None:
                peer_links[:] = [ln for ln in peer_links if ln is not link]
                if not peer_links:
                    del self._links_by_port[peer]


def subcarrier_count() -> int:
    """Number of subcarriers in every CSI snapshot (56 for HT20)."""
    return NUM_SUBCARRIERS
