"""Antenna gain patterns.

Each WGTT AP uses a 14 dBi Laird parabolic antenna with a 21-degree
half-power beamwidth, aimed at the road from a third-floor window. The
main lobe is the usual Gaussian (quadratic-in-dB) approximation; off
the main lobe the gain floors at a side-lobe level. The paper leans on
those side lobes twice: they give adjacent APs their 6–10 m coverage
overlap, and they weaken simultaneous client→AP ACKs enough that
link-layer ACK collisions are rare (Table 3).

Clients use low-gain omnidirectional antennas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mobility.road import Position


class Antenna:
    """Interface: gain in dBi towards a target position."""

    def gain_dbi(self, target: Position) -> float:
        raise NotImplementedError


@dataclass
class OmniAntenna(Antenna):
    """Uniform gain in all directions (client device antenna)."""

    peak_gain_dbi: float = 2.0

    def gain_dbi(self, target: Position) -> float:
        return self.peak_gain_dbi


@dataclass
class ParabolicAntenna(Antenna):
    """Directional antenna with Gaussian main lobe and side-lobe floor.

    Parameters
    ----------
    mount:
        Where the antenna is installed.
    boresight:
        The point the antenna is aimed at (a spot on the road below).
    beamwidth_deg:
        Full half-power beamwidth; the Laird GD24BP is 21 degrees.
    side_lobe_suppression_db:
        How far below the peak the side lobes sit.
    """

    mount: Position
    boresight: Position
    peak_gain_dbi: float = 14.0
    beamwidth_deg: float = 21.0
    side_lobe_suppression_db: float = 18.0

    def __post_init__(self) -> None:
        # The boresight ray never changes; computing it per gain query
        # was a measurable slice of the channel hot path.  Treat mount
        # and boresight as frozen after construction.
        self._bore = _unit_vector(self.mount, self.boresight)

    def off_axis_angle_rad(self, target: Position) -> float:
        """Angle between the boresight ray and the ray to ``target``."""
        bx, by, bz = self._bore
        mount = self.mount
        dx = target.x - mount.x
        dy = target.y - mount.y
        dz = target.z - mount.z
        norm = math.sqrt(dx * dx + dy * dy + dz * dz)
        if norm == 0.0:
            dot = bx
        else:
            dot = bx * (dx / norm) + by * (dy / norm) + bz * (dz / norm)
        dot = max(-1.0, min(1.0, dot))
        return math.acos(dot)

    def gain_dbi(self, target: Position) -> float:
        """Gain towards ``target``: quadratic main-lobe rolloff, floored."""
        theta_deg = math.degrees(self.off_axis_angle_rad(target))
        half_power_half_angle = self.beamwidth_deg / 2.0
        rolloff_db = 3.0 * (theta_deg / half_power_half_angle) ** 2
        rolloff_db = min(rolloff_db, self.side_lobe_suppression_db)
        return self.peak_gain_dbi - rolloff_db


def _unit_vector(origin: Position, target: Position) -> tuple:
    dx = target.x - origin.x
    dy = target.y - origin.y
    dz = target.z - origin.z
    norm = math.sqrt(dx * dx + dy * dy + dz * dz)
    if norm == 0.0:
        return (1.0, 0.0, 0.0)
    return (dx / norm, dy / norm, dz / norm)
