"""Radio channel models: path loss, antennas, fading, CSI, links."""

from repro.channel.antenna import Antenna, OmniAntenna, ParabolicAntenna
from repro.channel.csi import CsiReport
from repro.channel.fading import (
    NUM_SUBCARRIERS,
    TappedRayleighChannel,
    coherence_time_us,
    doppler_hz,
)
from repro.channel.link import NOISE_FLOOR_DBM, ChannelMap, Link, RadioPort
from repro.channel.pathloss import (
    CHANNEL_11_HZ,
    LogDistancePathLoss,
    free_space_path_loss_db,
)

__all__ = [
    "Antenna",
    "OmniAntenna",
    "ParabolicAntenna",
    "CsiReport",
    "NUM_SUBCARRIERS",
    "TappedRayleighChannel",
    "coherence_time_us",
    "doppler_hz",
    "NOISE_FLOOR_DBM",
    "ChannelMap",
    "Link",
    "RadioPort",
    "CHANNEL_11_HZ",
    "LogDistancePathLoss",
    "free_space_path_loss_db",
]
