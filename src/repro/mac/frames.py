"""802.11 frame types and air-time arithmetic.

Timing constants follow 2.4 GHz 802.11n (ERP, short slot): SIFS 10 us,
slot 9 us, DIFS 28 us, HT-mixed preamble 36 us. Data rides in A-MPDU
aggregates acknowledged by block ACKs; control responses use legacy
OFDM preambles. Addresses are *logical* (WGTT's APs share one BSSID)
while ``tx_device`` names the physical transmitter, which is what the
channel model needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.net.packet import Packet
from repro.phy.mcs import BASIC_RATE, CONTROL_RATE, Mcs

# ----------------------------------------------------------------------
# IEEE 802.11 timing (2.4 GHz, short slot)
# ----------------------------------------------------------------------

SIFS_US = 10
SLOT_US = 9
DIFS_US = SIFS_US + 2 * SLOT_US  # 28 us
CW_MIN = 15
CW_MAX = 1023
#: HT-mixed-mode PLCP preamble + headers.
HT_PREAMBLE_US = 36
#: Legacy OFDM preamble (control/management frames).
LEGACY_PREAMBLE_US = 20

# ----------------------------------------------------------------------
# frame size bookkeeping
# ----------------------------------------------------------------------

#: 802.11 data MAC header + FCS.
MAC_OVERHEAD_BYTES = 30
#: A-MPDU subframe delimiter (+ implicit padding allowance).
AMPDU_DELIMITER_BYTES = 4
#: Compressed block ACK frame body.
BLOCK_ACK_BYTES = 32
#: Management frame nominal body (assoc/auth/reassoc).
MGMT_FRAME_BYTES = 120
#: Beacon frame with typical IEs.
BEACON_FRAME_BYTES = 220

#: Block-ACK window (compressed bitmap covers 64 MSDUs).
BA_WINDOW = 64
#: Aggregation limits: subframes per A-MPDU and PPDU airtime budget.
MAX_AMPDU_SUBFRAMES = 64
MAX_AMPDU_AIRTIME_US = 4_000
#: 12-bit MAC sequence-number space.
SEQ_MODULO = 4096

#: Per-MPDU transmit attempts before the MAC gives up on a subframe.
MPDU_RETRY_LIMIT = 10

_frame_ids = itertools.count(1)


@dataclass
class Mpdu:
    """One aggregated subframe: a packet plus MAC framing."""

    seq: int
    packet: Packet
    retries: int = 0

    @property
    def size_bytes(self) -> int:
        return self.packet.size_bytes + MAC_OVERHEAD_BYTES

    @property
    def wire_bytes(self) -> int:
        return self.size_bytes + AMPDU_DELIMITER_BYTES


@dataclass
class Frame:
    """Base class for everything that occupies the medium.

    ``tx_device`` is the physical radio (channel-model endpoint);
    ``ta`` / ``ra`` are the logical 802.11 addresses — under WGTT every
    AP transmits with the shared BSSID as its ``ta``.
    """

    tx_device: str
    ta: str
    ra: str
    frame_id: int = field(default_factory=lambda: next(_frame_ids), init=False)

    def duration_us(self) -> int:
        raise NotImplementedError

    @property
    def is_broadcast(self) -> bool:
        return self.ra == "*"


@dataclass
class DataAmpdu(Frame):
    """An aggregate of data MPDUs sent at one HT MCS."""

    mpdus: List[Mpdu] = field(default_factory=list)
    mcs: Optional[Mcs] = None
    #: Block-ACK window start the receiver should align to.
    window_start: int = 0

    def payload_bits(self) -> int:
        return 8 * sum(m.wire_bytes for m in self.mpdus)

    def duration_us(self) -> int:
        assert self.mcs is not None
        return HT_PREAMBLE_US + int(round(self.mcs.airtime_us(self.payload_bits())))

    def seqs(self) -> List[int]:
        return [m.seq for m in self.mpdus]


@dataclass
class BlockAckFrame(Frame):
    """Compressed block ACK: start sequence + 64-bit bitmap.

    ``resp_to`` carries the frame-id of the aggregate being answered.
    A real BA has no such field — the sender correlates by timing
    (SIFS). The simulator makes that correlation explicit; forwarded
    BA *information* (paper §3.2.1) never uses it, only the bitmap.
    """

    start_seq: int = 0
    acked: FrozenSet[int] = frozenset()
    resp_to: int = -1

    def duration_us(self) -> int:
        return LEGACY_PREAMBLE_US + int(
            round(CONTROL_RATE.airtime_us(8 * BLOCK_ACK_BYTES))
        )


@dataclass
class BeaconFrame(Frame):
    """Periodic AP beacon at the most robust basic rate."""

    def duration_us(self) -> int:
        return LEGACY_PREAMBLE_US + int(
            round(BASIC_RATE.airtime_us(8 * BEACON_FRAME_BYTES))
        )


@dataclass
class MgmtFrame(Frame):
    """Authentication / (re)association exchange frames."""

    subtype: str = "assoc-req"
    payload: dict = field(default_factory=dict)

    def duration_us(self) -> int:
        return LEGACY_PREAMBLE_US + int(
            round(BASIC_RATE.airtime_us(8 * MGMT_FRAME_BYTES))
        )


@dataclass
class AckFrame(Frame):
    """Legacy ACK, used to acknowledge management frames."""

    def duration_us(self) -> int:
        return LEGACY_PREAMBLE_US + int(round(CONTROL_RATE.airtime_us(8 * 14)))


def seq_distance(from_seq: int, to_seq: int) -> int:
    """Forward distance in 12-bit sequence space (0..4095)."""
    return (to_seq - from_seq) % SEQ_MODULO


def seq_in_window(seq: int, window_start: int, window_size: int = BA_WINDOW) -> bool:
    """Whether ``seq`` falls inside [window_start, window_start+size)."""
    return seq_distance(window_start, seq) < window_size
