"""The shared 2.4 GHz wireless medium (channel 11).

The medium is where transmissions physically overlap: it tracks every
frame on the air, answers carrier-sense queries for the DCF, and — when
a frame's airtime ends — hands each potential receiver a per-subcarrier
SINR snapshot with co-channel interference folded in. Capture is
implicit: a strong frame keeps a usable SINR through a weak overlap,
a near-tie destroys both. Half-duplex radios never receive while they
transmit.

All eight testbed APs and every client share this one channel, exactly
as deployed in the paper (§4: "channel 11 ... without modification").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.channel.link import ChannelMap, NOISE_FLOOR_DBM
from repro.channel.link_batch import warm_snapshots
from repro.mac.frames import Frame, SIFS_US
from repro.phy.batch import prewarm_receivers
from repro.sim.engine import Simulator

#: Energy level above which a station defers (carrier sense).
CS_THRESHOLD_DBM = -82.0
#: A transmission is only *sensed* after this many microseconds on air;
#: two stations firing within this window collide instead of deferring.
SENSE_DELAY_US = 4
#: How long finished transmissions are kept for interference accounting.
HISTORY_US = 20_000


@dataclass
class Transmission:
    """A frame occupying the medium for [start_us, end_us)."""

    sender: str
    frame: Frame
    start_us: int
    end_us: int
    channel: int = 11

    def overlaps(self, start_us: int, end_us: int) -> int:
        """Microseconds of overlap with [start_us, end_us)."""
        return max(0, min(self.end_us, end_us) - max(self.start_us, start_us))


class MacEntity:
    """Interface the medium expects from a registered radio device."""

    node_id: str
    #: Wi-Fi channel the radio is tuned to. Radios on different
    #: channels neither interfere with nor hear one another (adjacent-
    #: channel leakage is neglected). The paper's testbed is single-
    #: channel; the multi-channel ablation of §7 retunes APs.
    channel: int = 11

    def on_air_frame(
        self, frame: Frame, snr_db: Optional[np.ndarray], decodable: bool
    ) -> None:
        """Called at the end of every other station's transmission.

        ``snr_db`` is the per-subcarrier SINR snapshot at this receiver
        (None when the frame was completely below the noise floor or
        the receiver was itself transmitting); ``decodable`` is False
        when reception was physically impossible (half-duplex clash).
        """
        raise NotImplementedError

    def cares_about(self, frame: Frame) -> bool:
        """Cheap pre-filter: should the medium bother computing this
        receiver's SINR for ``frame``? Devices that can never use the
        frame (e.g. a client hearing another client's data) return
        False and skip the channel-model work entirely."""
        return True


class WirelessMedium:
    """Arbiter for one Wi-Fi channel."""

    def __init__(
        self,
        sim: Simulator,
        channel_map: ChannelMap,
        batch_phy: bool = True,
    ):
        self._sim = sim
        self._channel = channel_map
        self._devices: Dict[str, MacEntity] = {}
        self._transmissions: List[Transmission] = []
        self.frames_sent = 0
        self.airtime_us = 0
        #: Coalesce each frame completion's receiver set into one fused
        #: channel-evolution + PHY-kernel batch (bit-identical to the
        #: per-receiver scalar path; ``False`` keeps the scalar loop).
        self.batch_phy = batch_phy

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, device: MacEntity) -> None:
        if device.node_id in self._devices:
            raise ValueError(f"duplicate device {device.node_id!r}")
        self._devices[device.node_id] = device

    def unregister(self, node_id: str) -> None:
        """Remove a retired device from the medium.

        Churn support: a departed vehicle must stop being a candidate
        receiver (and stop pinning its MacEntity).  Callers must defer
        this past the interference-history horizon — ``busy_until`` and
        ``_interference_mw`` replay recent ``_transmissions`` through
        the channel map, which fails once the port is forgotten.
        """
        self._devices.pop(node_id, None)

    def devices(self):
        return self._devices.values()

    # ------------------------------------------------------------------
    # carrier sense
    # ------------------------------------------------------------------

    def _rx_power_dbm(self, tx_id: str, rx_id: str, time_us: int) -> float:
        link = self._channel.link(tx_id, rx_id)
        return link.mean_rx_power_dbm(time_us, tx_id=tx_id)

    def busy_until(self, node_id: str, now: Optional[int] = None) -> int:
        """Latest end time of any transmission this node can sense.

        Returns a time <= now when the medium appears idle. Frames that
        started less than :data:`SENSE_DELAY_US` ago are invisible —
        that blind spot is what produces genuine collisions.
        """
        now = self._sim.now if now is None else now
        own_channel = self._channel_of(node_id)
        latest = 0
        for tx in self._transmissions:
            if tx.end_us <= now:
                continue
            if tx.sender == node_id:
                latest = max(latest, tx.end_us)
                continue
            if tx.channel != own_channel:
                continue
            if tx.start_us > now - SENSE_DELAY_US:
                continue
            if self._rx_power_dbm(tx.sender, node_id, tx.start_us) >= CS_THRESHOLD_DBM:
                latest = max(latest, tx.end_us)
        return latest

    def _channel_of(self, node_id: str) -> int:
        device = self._devices.get(node_id)
        return getattr(device, "channel", 11)

    def is_idle(self, node_id: str) -> bool:
        return self.busy_until(node_id) <= self._sim.now

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def transmit(self, frame: Frame) -> Transmission:
        """Put ``frame`` on the air now; reception resolves at its end."""
        now = self._sim.now
        duration = frame.duration_us()
        tx = Transmission(
            frame.tx_device, frame, now, now + duration,
            channel=self._channel_of(frame.tx_device),
        )
        self._transmissions.append(tx)
        self.frames_sent += 1
        self.airtime_us += duration
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "medium",
                "air-tx",
                track=f"air/{tx.channel}",
                detail=True,
                sender=tx.sender,
                frame=type(frame).__name__,
                duration_us=duration,
            )
        self._sim.schedule(duration, lambda: self._complete(tx))
        self._prune(now)
        return tx

    def transmit_response(
        self, frame: Frame, delay_us: int = SIFS_US,
        abort_if_busy: bool = True,
    ) -> None:
        """Send a SIFS-separated response (BA/ACK) without DCF contention.

        When ``abort_if_busy`` the responder performs a last-instant
        sense and silently drops its response if another station beat it
        to the air — this is how near-simultaneous block ACKs from
        multiple WGTT APs usually avoid colliding (paper §5.3.2).
        """

        def fire():
            if abort_if_busy and not self.is_idle(frame.tx_device):
                return
            self.transmit(frame)

        self._sim.schedule(delay_us, fire)

    def _prune(self, now: int) -> None:
        cutoff = now - HISTORY_US
        self._transmissions = [
            t for t in self._transmissions if t.end_us >= cutoff
        ]

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------

    def _interference_mw(self, tx: Transmission, rx_id: str) -> float:
        """Overlap-weighted co-channel interference power at ``rx_id``."""
        total_mw = 0.0
        duration = max(tx.end_us - tx.start_us, 1)
        for other in self._transmissions:
            if other is tx or other.sender == rx_id:
                continue
            if other.channel != tx.channel:
                continue
            overlap = other.overlaps(tx.start_us, tx.end_us)
            if overlap == 0:
                continue
            power_dbm = self._rx_power_dbm(other.sender, rx_id, other.start_us)
            total_mw += (overlap / duration) * 10.0 ** (power_dbm / 10.0)
        return total_mw

    def _was_transmitting(self, node_id: str, tx: Transmission) -> bool:
        for other in self._transmissions:
            if other.sender == node_id and other.overlaps(tx.start_us, tx.end_us):
                return True
        return False

    def _complete(self, tx: Transmission) -> None:
        noise_mw = 10.0 ** (NOISE_FLOOR_DBM / 10.0)
        # The overlap geometry of every co-channel transmission against
        # ``tx`` is receiver-independent, so it is computed ONCE here
        # rather than inside the per-receiver interference loop — with
        # a dozen radios and a 20 ms history that scan used to dominate
        # frame completion.  ``interferers`` keeps the transmission-list
        # order, so the per-receiver float sums below are bit-identical
        # to the old per-receiver scan.
        tx_start, tx_end = tx.start_us, tx.end_us
        duration = max(tx_end - tx_start, 1)
        interferers = []  # (sender, start_us, overlap_fraction)
        active_senders = set()  # anyone on air during [start, end)
        for other in self._transmissions:
            overlap = (
                min(other.end_us, tx_end) - max(other.start_us, tx_start)
            )
            if overlap <= 0:
                continue
            active_senders.add(other.sender)
            if other is tx or other.channel != tx.channel:
                continue
            interferers.append(
                (other.sender, other.start_us, overlap / duration)
            )
        if not self.batch_phy:
            self._deliver_scalar(tx, noise_mw, interferers, active_senders)
            return

        # ---- plan pass: apply the cheap per-receiver filters first, so
        # the receivers that need a full SINR snapshot are known before
        # any channel math runs.  They form this completion's
        # contention-domain batch: one fused multi-link fading step and
        # one stacked PHY prewarm instead of per-receiver scalar calls.
        # Every per-link computation is independent (private RNG
        # streams, per-link caches) and ``on_air_frame`` dispatch keeps
        # the original device order below, so the restructuring is
        # bit-identical to the scalar loop.
        receivers: List[tuple] = []  # (node_id, device, link_or_None)
        for node_id, device in self._devices.items():
            if node_id == tx.sender:
                continue
            if getattr(device, "channel", 11) != tx.channel:
                continue  # tuned elsewhere: hears nothing
            if not device.cares_about(tx.frame):
                continue
            if node_id in active_senders:
                # Half-duplex: it was transmitting itself.
                receivers.append((node_id, device, None))
                continue
            link = self._channel.link(tx.sender, node_id)
            if link.mean_rx_power_dbm(tx_start, tx_id=tx.sender) < NOISE_FLOOR_DBM - 10:
                # Far below the noise floor: not even energy-detectable.
                receivers.append((node_id, device, None))
                continue
            receivers.append((node_id, device, link))

        live = [
            (i, entry[2])
            for i, entry in enumerate(receivers)
            if entry[2] is not None
        ]
        rows: List[Optional[np.ndarray]] = [None] * len(receivers)
        snaps = warm_snapshots(
            tx_start, [(link, tx.sender) for _i, link in live]
        )
        for (i, _link), snr_db in zip(live, snaps):
            node_id = receivers[i][0]
            interference_mw = 0.0
            for sender, start_us, weight in interferers:
                if sender == node_id:
                    continue
                power_dbm = self._rx_power_dbm(sender, node_id, start_us)
                interference_mw += weight * 10.0 ** (power_dbm / 10.0)
            if interference_mw > 0.0:
                penalty_db = 10.0 * math.log10(1.0 + interference_mw / noise_mw)
                snr_db = snr_db - penalty_db
            rows[i] = snr_db
        if len(live) >= 2:
            self._prewarm_phy(live, rows)
        for i, (node_id, device, link) in enumerate(receivers):
            if link is None:
                device.on_air_frame(tx.frame, None, False)
            else:
                device.on_air_frame(tx.frame, rows[i], True)

    def _prewarm_phy(
        self,
        live: List[tuple],
        rows: List[Optional[np.ndarray]],
    ) -> None:
        """Seed the preamble memo for every live receiver at once.

        The rows handed over are the exact array objects the dispatch
        loop passes to ``on_air_frame``, so each receiver's preamble
        check collapses to a memo hit on a value bit-identical to the
        scalar computation.

        Only the preamble term is prewarmed.  It is the one PHY
        quantity *every* receiver in the contention domain evaluates
        unconditionally, so one stacked kernel call amortizes across
        the whole domain.  Data / CSI follow-ups are gated on a
        per-device preamble draw — seeding their ESNR / coded-BER /
        RSSI eagerly costs about as much per row as the lazy memoized
        scalar path and is wasted whenever the draw fails, which
        measured as a net end-to-end loss (see docs/performance.md).
        """
        prewarm_receivers([rows[i] for i, _link in live])

    def _deliver_scalar(
        self,
        tx: Transmission,
        noise_mw: float,
        interferers: List[tuple],
        active_senders: set,
    ) -> None:
        """The original per-receiver loop (``batch_phy=False``)."""
        for node_id, device in self._devices.items():
            if node_id == tx.sender:
                continue
            if getattr(device, "channel", 11) != tx.channel:
                continue  # tuned elsewhere: hears nothing
            if not device.cares_about(tx.frame):
                continue
            if node_id in active_senders:
                # Half-duplex: it was transmitting itself.
                device.on_air_frame(tx.frame, None, False)
                continue
            link = self._channel.link(tx.sender, node_id)
            if link.mean_rx_power_dbm(tx.start_us, tx_id=tx.sender) < NOISE_FLOOR_DBM - 10:
                # Far below the noise floor: not even energy-detectable.
                device.on_air_frame(tx.frame, None, False)
                continue
            snr_db = link.subcarrier_snr_db(tx.start_us, tx_id=tx.sender)
            interference_mw = 0.0
            for sender, start_us, weight in interferers:
                if sender == node_id:
                    continue
                power_dbm = self._rx_power_dbm(sender, node_id, start_us)
                interference_mw += weight * 10.0 ** (power_dbm / 10.0)
            if interference_mw > 0.0:
                penalty_db = 10.0 * math.log10(1.0 + interference_mw / noise_mw)
                snr_db = snr_db - penalty_db
            device.on_air_frame(tx.frame, snr_db, True)
