"""A-MPDU construction.

Frame aggregation is what makes modern 802.11 efficient — and what
makes naive AP switching expensive, because an AP with a deep queue
keeps building big aggregates for a client that has already driven
away. The builder pulls retransmission-pending MPDUs first (they gate
the block-ACK window), then issues fresh sequence numbers from the
service queue, subject to the window, subframe-count, and airtime
limits.
"""

from __future__ import annotations

from typing import List

from repro.mac.blockack import BlockAckScoreboard
from repro.mac.frames import (
    HT_PREAMBLE_US,
    MAX_AMPDU_AIRTIME_US,
    MAX_AMPDU_SUBFRAMES,
    Mpdu,
)
from repro.net.queues import DropTailQueue
from repro.phy.mcs import Mcs


def build_ampdu_mpdus(
    scoreboard: BlockAckScoreboard,
    service_queue: DropTailQueue,
    mcs: Mcs,
    max_subframes: int = MAX_AMPDU_SUBFRAMES,
    max_airtime_us: int = MAX_AMPDU_AIRTIME_US,
) -> List[Mpdu]:
    """Assemble the MPDU list for the next aggregate to one peer.

    Retransmissions come first; new packets are drawn from the service
    queue while the block-ACK window, subframe budget, and airtime
    budget allow. Returns an empty list when nothing is eligible.
    """
    mpdus: List[Mpdu] = list(scoreboard.take_retransmits(max_subframes))
    airtime = float(HT_PREAMBLE_US)
    for mpdu in mpdus:
        airtime += mcs.airtime_us(8 * mpdu.wire_bytes)

    while (
        len(mpdus) < max_subframes
        and scoreboard.window_room() > 0
        and not service_queue.empty
    ):
        head = service_queue.peek()
        head_airtime = mcs.airtime_us(8 * (head.size_bytes + 34))
        if mpdus and airtime + head_airtime > max_airtime_us:
            break
        packet = service_queue.dequeue()
        mpdu = scoreboard.issue(packet)
        mpdus.append(mpdu)
        airtime += mcs.airtime_us(8 * mpdu.wire_bytes)
    return mpdus
