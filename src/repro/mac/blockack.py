"""Block-acknowledgement state machines (802.11e/n).

The sender side keeps a *scoreboard*: which MPDU sequence numbers are
in flight, which need retransmission, and where the 64-frame window
starts. The receiver side keeps a *reorder buffer* that releases
packets to the network layer in sequence order and answers each
aggregate with the compressed-bitmap acknowledgement set.

Everything here is per (transmitter, peer) — under WGTT the peer is
the shared BSSID, so a client's scoreboard survives AP switches, which
is exactly why the incoming AP must learn the outgoing AP's queue
position (the start(c, k) message) rather than restart from scratch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Set, Tuple

from repro.mac.frames import (
    BA_WINDOW,
    MPDU_RETRY_LIMIT,
    SEQ_MODULO,
    Mpdu,
    seq_distance,
)
from repro.net.packet import Packet


class BlockAckScoreboard:
    """Sender-side transmit window for one peer."""

    def __init__(self, retry_limit: int = MPDU_RETRY_LIMIT):
        self._retry_limit = retry_limit
        self._next_seq = 0
        self._window_start = 0
        #: seq -> Mpdu awaiting acknowledgement (insertion = seq order).
        self._outstanding: "OrderedDict[int, Mpdu]" = OrderedDict()
        #: MPDUs that must be retransmitted, oldest first.
        self._retransmit: "OrderedDict[int, Mpdu]" = OrderedDict()
        self.delivered = 0
        self.dropped = 0
        self.retransmissions = 0

    # -- window bookkeeping -------------------------------------------

    @property
    def window_start(self) -> int:
        return self._window_start

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def in_flight(self) -> int:
        return len(self._outstanding) + len(self._retransmit)

    @property
    def has_retransmits(self) -> bool:
        return bool(self._retransmit)

    def window_room(self) -> int:
        """How many *new* sequence numbers may be issued right now."""
        used = seq_distance(self._window_start, self._next_seq)
        return max(0, BA_WINDOW - used)

    def reset_to(self, seq: int) -> None:
        """Fast-forward this scoreboard to continue another AP's
        sequence space (WGTT's shared block-ACK state: the start(c, k)
        index is both the cyclic-queue slot and the MAC sequence
        number, so the incoming AP picks up numbering exactly where the
        outgoing AP stopped and the client's reorder/BA state stays
        valid across the switch)."""
        self._outstanding.clear()
        self._retransmit.clear()
        self._window_start = seq % SEQ_MODULO
        self._next_seq = seq % SEQ_MODULO

    def issue(self, packet: Packet) -> Mpdu:
        """Assign the next sequence number to a fresh packet."""
        if self.window_room() == 0:
            raise RuntimeError("block-ack window full")
        mpdu = Mpdu(seq=self._next_seq, packet=packet)
        self._next_seq = (self._next_seq + 1) % SEQ_MODULO
        return mpdu

    def take_retransmits(self, limit: int) -> List[Mpdu]:
        """Pop up to ``limit`` MPDUs awaiting retransmission."""
        taken: List[Mpdu] = []
        while self._retransmit and len(taken) < limit:
            _seq, mpdu = self._retransmit.popitem(last=False)
            taken.append(mpdu)
        return taken

    def record_transmit(self, mpdus: Iterable[Mpdu]) -> None:
        """Mark MPDUs as on the air, awaiting a block ACK."""
        for mpdu in mpdus:
            self._outstanding[mpdu.seq] = mpdu
        # Keep insertion ordered by sequence distance from window start.
        self._outstanding = OrderedDict(
            sorted(
                self._outstanding.items(),
                key=lambda kv: seq_distance(self._window_start, kv[0]),
            )
        )

    # -- acknowledgement processing -----------------------------------

    def process_block_ack(
        self, acked: Set[int]
    ) -> Tuple[List[Packet], List[Packet]]:
        """Apply a (possibly forwarded) block ACK.

        Returns ``(delivered_packets, dropped_packets)``. Unacked MPDUs
        go to the retransmit list until their retry limit, after which
        they are dropped and the window advances past them.
        """
        delivered: List[Packet] = []
        dropped: List[Packet] = []
        for seq in list(self._outstanding):
            mpdu = self._outstanding[seq]
            if seq in acked:
                del self._outstanding[seq]
                self._retransmit.pop(seq, None)
                self.delivered += 1
                delivered.append(mpdu.packet)
            else:
                mpdu.retries += 1
                if mpdu.retries > self._retry_limit:
                    del self._outstanding[seq]
                    self._retransmit.pop(seq, None)
                    self.dropped += 1
                    dropped.append(mpdu.packet)
                else:
                    del self._outstanding[seq]
                    self._retransmit[seq] = mpdu
                    self.retransmissions += 1
        # A forwarded BA may also cover seqs already in the retransmit
        # list from an earlier timeout: cancel those retransmissions.
        for seq in list(self._retransmit):
            if seq in acked:
                mpdu = self._retransmit.pop(seq)
                self.delivered += 1
                delivered.append(mpdu.packet)
        self._advance_window()
        return delivered, dropped

    def abandon_all(self) -> int:
        """Give up every pending MPDU (end of a bounded drain window).

        The window advances to next_seq so the sequence space stays
        clean; returns how many MPDUs were abandoned.
        """
        count = len(self._outstanding) + len(self._retransmit)
        self.dropped += count
        self._outstanding.clear()
        self._retransmit.clear()
        self._window_start = self._next_seq
        return count

    def apply_external_ack(self, acked: Set[int]) -> List[Packet]:
        """Positively acknowledge seqs learned out of band (a forwarded
        block ACK). Never penalizes unacked seqs — the forwarded bitmap
        describes a different AP's exchange, so absence means nothing.
        """
        delivered: List[Packet] = []
        for seq in list(self._outstanding):
            if seq in acked:
                mpdu = self._outstanding.pop(seq)
                self.delivered += 1
                delivered.append(mpdu.packet)
        for seq in list(self._retransmit):
            if seq in acked:
                mpdu = self._retransmit.pop(seq)
                self.delivered += 1
                delivered.append(mpdu.packet)
        self._advance_window()
        return delivered

    def process_timeout(self, seqs: Iterable[int]) -> None:
        """No BA arrived for an aggregate: queue every MPDU for retry."""
        for seq in seqs:
            mpdu = self._outstanding.pop(seq, None)
            if mpdu is None:
                continue
            mpdu.retries += 1
            if mpdu.retries > self._retry_limit:
                self.dropped += 1
            else:
                self._retransmit[seq] = mpdu
                self.retransmissions += 1
        self._advance_window()

    def acked_before(self, seqs: Iterable[int]) -> Set[int]:
        """Which of ``seqs`` are no longer outstanding (already acked)."""
        outstanding = set(self._outstanding) | set(self._retransmit)
        return {s for s in seqs if s not in outstanding}

    def _advance_window(self) -> None:
        pending = set(self._outstanding) | set(self._retransmit)
        if not pending:
            self._window_start = self._next_seq
            return
        self._window_start = min(
            pending, key=lambda s: seq_distance(self._window_start, s)
        )


class ReorderBuffer:
    """Receiver-side in-order release of aggregated MPDUs."""

    def __init__(self):
        self._next_expected = 0
        self._buffered: Dict[int, Packet] = {}
        self._received_history: Set[int] = set()
        self.duplicates = 0
        self.delivered = 0

    @property
    def next_expected(self) -> int:
        return self._next_expected

    def receive(self, seq: int, packet: Packet) -> List[Packet]:
        """Accept one decoded MPDU; return packets releasable in order."""
        behind = seq_distance(seq, self._next_expected)
        if 0 < behind <= SEQ_MODULO // 2:
            # Retransmission of something already delivered.
            self.duplicates += 1
            self._received_history.add(seq)
            return []
        if seq in self._buffered:
            self.duplicates += 1
            return []
        self._buffered[seq] = packet
        self._received_history.add(seq)
        released: List[Packet] = []
        while self._next_expected in self._buffered:
            released.append(self._buffered.pop(self._next_expected))
            self._next_expected = (self._next_expected + 1) % SEQ_MODULO
        self.delivered += len(released)
        return released

    def advance_to(self, window_start: int) -> List[Packet]:
        """Sender moved its window (gave up on a gap): flush up to it."""
        if seq_distance(self._next_expected, window_start) > SEQ_MODULO // 2:
            return []
        released: List[Packet] = []
        # Skip to the new window start, salvaging anything buffered.
        while self._next_expected != window_start:
            packet = self._buffered.pop(self._next_expected, None)
            if packet is not None:
                released.append(packet)
            self._next_expected = (self._next_expected + 1) % SEQ_MODULO
        # Then release the contiguous run from the new start.
        while self._next_expected in self._buffered:
            released.append(self._buffered.pop(self._next_expected))
            self._next_expected = (self._next_expected + 1) % SEQ_MODULO
        self.delivered += len(released)
        return released

    def ack_set(self, seqs: Iterable[int]) -> Set[int]:
        """Bitmap contents for a BA answering an aggregate: every seq of
        the aggregate we have ever received (current or earlier copy)."""
        return {s for s in seqs if s in self._received_history}

    def forget_old_history(self, keep_window: int = 4 * BA_WINDOW) -> None:
        """Bound the received-history set (called opportunistically)."""
        if len(self._received_history) <= 8 * keep_window:
            return
        cutoff = self._next_expected
        self._received_history = {
            s
            for s in self._received_history
            if seq_distance(s, cutoff) <= keep_window
            or seq_distance(cutoff, s) <= keep_window
        }
