"""802.11n MAC: medium, DCF, aggregation, block ACK, rate control."""

from repro.mac.aggregation import build_ampdu_mpdus
from repro.mac.blockack import BlockAckScoreboard, ReorderBuffer
from repro.mac.dcf import Dcf
from repro.mac.frames import (
    BA_WINDOW,
    CW_MAX,
    CW_MIN,
    DIFS_US,
    MAX_AMPDU_SUBFRAMES,
    SEQ_MODULO,
    SIFS_US,
    SLOT_US,
    AckFrame,
    BeaconFrame,
    BlockAckFrame,
    DataAmpdu,
    Frame,
    MgmtFrame,
    Mpdu,
    seq_distance,
    seq_in_window,
)
from repro.mac.medium import (
    CS_THRESHOLD_DBM,
    MacEntity,
    Transmission,
    WirelessMedium,
)
from repro.mac.rate_control import MinstrelRateController
from repro.mac.wifi_device import (
    BEACON_INTERVAL_US,
    SERVICE_QUEUE_CAPACITY,
    TxSession,
    WifiDevice,
)

__all__ = [
    "build_ampdu_mpdus",
    "BlockAckScoreboard",
    "ReorderBuffer",
    "Dcf",
    "BA_WINDOW",
    "CW_MAX",
    "CW_MIN",
    "DIFS_US",
    "MAX_AMPDU_SUBFRAMES",
    "SEQ_MODULO",
    "SIFS_US",
    "SLOT_US",
    "AckFrame",
    "BeaconFrame",
    "BlockAckFrame",
    "DataAmpdu",
    "Frame",
    "MgmtFrame",
    "Mpdu",
    "seq_distance",
    "seq_in_window",
    "CS_THRESHOLD_DBM",
    "MacEntity",
    "Transmission",
    "WirelessMedium",
    "MinstrelRateController",
    "BEACON_INTERVAL_US",
    "SERVICE_QUEUE_CAPACITY",
    "TxSession",
    "WifiDevice",
]
