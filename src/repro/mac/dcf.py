"""Distributed Coordination Function: CSMA/CA channel access.

A simplified but faithful DCF: one outstanding access request per
station, DIFS sensing, slotted binary-exponential backoff that freezes
while the medium is busy, and contention-window doubling driven by the
station's transmit feedback. Stations that pick the same slot (or fire
inside each other's sense blind spot) collide on the medium.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.mac.frames import CW_MAX, CW_MIN, DIFS_US, SLOT_US
from repro.mac.medium import WirelessMedium
from repro.sim.engine import EventHandle, Simulator


class Dcf:
    """Channel-access state machine for one station."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        node_id: str,
        rng: np.random.Generator,
    ):
        self._sim = sim
        self._medium = medium
        self._node_id = node_id
        self._rng = rng
        self._cw = CW_MIN
        self._pending: Optional[Callable[[], None]] = None
        self._attempt_handle: Optional[EventHandle] = None
        self._backoff_slots_left = 0
        self.accesses_granted = 0
        self.collisions_backed_off = 0

    @property
    def busy(self) -> bool:
        """True while an access request is outstanding."""
        return self._pending is not None

    @property
    def contention_window(self) -> int:
        return self._cw

    def request_access(self, on_grant: Callable[[], None]) -> None:
        """Ask for the medium; ``on_grant`` fires when we may transmit.

        The callback must start its transmission synchronously — the
        grant is only valid at the instant it is delivered.
        """
        if self._pending is not None:
            raise RuntimeError(f"{self._node_id}: access already requested")
        self._pending = on_grant
        self._backoff_slots_left = int(self._rng.integers(0, self._cw + 1))
        self._schedule_attempt()

    def cancel(self) -> None:
        """Withdraw an outstanding request (e.g. queue became empty)."""
        self._pending = None
        if self._attempt_handle is not None:
            self._attempt_handle.cancel()
            self._attempt_handle = None

    def notify_success(self) -> None:
        """Transmission acknowledged: reset the contention window."""
        self._cw = CW_MIN

    def notify_failure(self) -> None:
        """Transmission failed: double the contention window."""
        self._cw = min(2 * self._cw + 1, CW_MAX)
        self.collisions_backed_off += 1

    # ------------------------------------------------------------------

    def _schedule_attempt(self) -> None:
        busy_until = self._medium.busy_until(self._node_id)
        start = max(self._sim.now, busy_until)
        fire_at = start + DIFS_US + self._backoff_slots_left * SLOT_US
        self._attempt_handle = self._sim.schedule_at(fire_at, self._attempt)

    def _attempt(self) -> None:
        self._attempt_handle = None
        if self._pending is None:
            return
        busy_until = self._medium.busy_until(self._node_id)
        if busy_until > self._sim.now:
            # Medium got busy during our countdown: freeze what is left
            # of the backoff (approximated by re-running the remaining
            # slots after the medium clears).
            self._backoff_slots_left = max(0, self._backoff_slots_left - 1)
            self._schedule_attempt()
            return
        grant, self._pending = self._pending, None
        self.accesses_granted += 1
        grant()
