"""The 802.11 station: queues, aggregation, block ACK, and callbacks.

:class:`WifiDevice` is the MAC entity used for every radio in the
system — WGTT APs, baseline APs, and vehicular clients. Behavioural
differences live in thin wrappers (``repro.core.access_point``,
``repro.baselines``); the MAC mechanics here are shared:

* per-peer transmit sessions (service queue + block-ACK scoreboard +
  Minstrel rate state),
* DCF channel access with one in-flight exchange at a time,
* A-MPDU transmission, BA response generation, BA timeout handling,
* receive-side reorder buffers with in-order delivery,
* management frames with ACK + retry, periodic beacons,
* hooks: packet delivery, CSI measurement, overheard block ACKs,
  rate-usage logging, queue refill.

Logical vs physical addressing matters throughout: WGTT's APs share a
single BSSID, so a client-transmitted frame addressed to the BSSID is
*addressed to every AP at once* — that one property gives WGTT its
uplink diversity, its everyone-answers block ACKs (paper Table 3), and
its BA-overhearing forwarding path, with no monitor interface needed
in the model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

import numpy as np

from repro.mac.aggregation import build_ampdu_mpdus
from repro.mac.blockack import BlockAckScoreboard, ReorderBuffer
from repro.mac.dcf import Dcf
from repro.mac.frames import (
    AckFrame,
    BeaconFrame,
    BlockAckFrame,
    DataAmpdu,
    Frame,
    MgmtFrame,
    SIFS_US,
)
from repro.mac.medium import MacEntity, WirelessMedium
from repro.mac.rate_control import MinstrelRateController
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.phy.mcs import BASIC_RATE
from repro.phy.per import (
    mpdu_payload_success_probability,
    preamble_success_probability,
    wideband_rssi_offset_db,
)
from repro.channel.link import NOISE_FLOOR_DBM
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry

#: Service ("lower stack") queue: mac80211 + driver + NIC, ~100 packets
#: of buffering as the paper describes (§1: "ca. 20 ms or 100 packets").
SERVICE_QUEUE_CAPACITY = 128
#: Extra wait for the BA beyond the response SIFS before declaring loss.
BA_TIMEOUT_MARGIN_US = 60
#: Management-frame retry limit.
MGMT_RETRY_LIMIT = 7
#: Beacon period (both WGTT and the baseline beacon at 100 ms).
BEACON_INTERVAL_US = 100_000


class TxSession:
    """Per-peer transmit state."""

    def __init__(self, device: "WifiDevice", peer: str):
        self.peer = peer
        self.scoreboard = BlockAckScoreboard()
        self.queue = DropTailQueue(SERVICE_QUEUE_CAPACITY, name=f"svc:{peer}")
        self.rate = MinstrelRateController(
            device._sim, device._rng.stream(f"minstrel/{device.node_id}/{peer}")
        )
        self.awaiting: Optional[DataAmpdu] = None
        self.ba_timer = Timer(device._sim, lambda: device._ba_timeout(self))
        #: "active": normal operation. "drain": finish what is already
        #: on the scoreboard but pull nothing new (a WGTT AP that got a
        #: stop(c) — the paper's NIC-hardware-queue drain). "off": do
        #: not transmit at all.
        self.mode = "active"
        #: Consecutive fully-failed exchanges: drives the multi-rate
        #: retry chain (each failure falls back one MCS, like ath9k's
        #: Minstrel retry stages).
        self.consecutive_failures = 0

    @property
    def enabled(self) -> bool:
        return self.mode == "active"

    def has_work(self) -> bool:
        if self.mode == "off" or self.awaiting is not None:
            return False
        if self.scoreboard.has_retransmits:
            return True
        if self.mode == "drain":
            return False
        return not self.queue.empty and self.scoreboard.window_room() > 0


class WifiDevice(MacEntity):
    """One physical 802.11 radio."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        rng: RngRegistry,
        node_id: str,
        role: str = "ap",
        addresses: Optional[Set[str]] = None,
        monitor: bool = False,
        response_jitter_us: int = 0,
    ):
        if role not in ("ap", "client"):
            raise ValueError("role must be 'ap' or 'client'")
        self._sim = sim
        self._medium = medium
        self._rng = rng
        self.node_id = node_id
        self.role = role
        self.monitor = monitor
        #: Wi-Fi channel this radio is tuned to (single-radio devices
        #: hear nothing on other channels). Default: channel 11, the
        #: testbed's single operating channel.
        self.channel = 11
        #: Logical addresses this radio answers to (own id + BSSID aliases).
        self.addresses: Set[str] = set(addresses or ()) | {node_id}
        #: Address written into the TA field of transmitted frames.
        self.ta_address = node_id
        self.response_jitter_us = response_jitter_us
        self._draw = rng.stream(f"mac/{node_id}")
        self.dcf = Dcf(sim, medium, node_id, rng.stream(f"dcf/{node_id}"))
        self._sessions: Dict[str, TxSession] = {}
        self._reorder: Dict[str, ReorderBuffer] = {}
        self._rr_order: Deque[str] = deque()
        self._control_jobs: Deque[dict] = deque()
        self._mgmt_inflight: Optional[dict] = None
        self._mgmt_timer = Timer(sim, self._mgmt_timeout)
        self._beacon_timer: Optional[Timer] = None

        # hooks
        self.on_packet: Callable[[Packet, str], None] = lambda p, src: None
        self.on_csi: Callable[[str, np.ndarray, float], None] = (
            lambda client, snr, rssi: None
        )
        self.on_overheard_block_ack: Callable[[BlockAckFrame], None] = (
            lambda f: None
        )
        self.on_beacon: Callable[[BeaconFrame, float], None] = lambda f, rssi: None
        self.on_mgmt: Callable[[MgmtFrame], None] = lambda f: None
        self.on_refill_needed: Callable[[str, int], None] = lambda peer, room: None
        self.on_mpdus_dropped: Callable[[str, List[Packet]], None] = (
            lambda peer, pkts: None
        )
        self.on_ampdu_result: Callable[[str, int, int], None] = (
            lambda peer, attempted, acked: None
        )
        self.on_ba_processed: Callable[[BlockAckFrame], None] = lambda f: None
        #: Gate on incoming data by transmitter address: a roaming
        #: client drops (and never acknowledges) frames from a BSS it
        #: has de-associated from.
        self.accept_data_from: Callable[[str], bool] = lambda ta: True

        #: Time of this radio's last transmission (any frame type);
        #: clients use it to decide when a NULL-frame keepalive is due.
        self.last_tx_us = 0

        #: Fault-injection power switch: a powered-off radio neither
        #: transmits nor receives (no RX draws, no timers, no airtime).
        self.powered = True

        # stats
        self.stats = {
            "mpdus_sent": 0,
            "mpdus_acked": 0,
            "mpdus_dropped": 0,
            "ampdus_sent": 0,
            "ba_sent": 0,
            "ba_received": 0,
            "ba_timeouts": 0,
            "beacons_sent": 0,
            "duplicates": 0,
            "uplink_retransmissions": 0,
        }
        medium.register(self)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def session(self, peer: str) -> TxSession:
        existing = self._sessions.get(peer)
        if existing is None:
            existing = TxSession(self, peer)
            self._sessions[peer] = existing
            self._rr_order.append(peer)
        return existing

    def reorder_buffer(self, peer: str) -> ReorderBuffer:
        buffer = self._reorder.get(peer)
        if buffer is None:
            buffer = ReorderBuffer()
            self._reorder[peer] = buffer
        return buffer

    def enqueue(self, packet: Packet, peer: str) -> bool:
        """Queue a packet for transmission to ``peer`` (logical addr)."""
        if not self.powered:
            return False
        accepted = self.session(peer).queue.enqueue(packet)
        self._kick()
        return accepted

    def power_off(self) -> None:
        """Crash the radio: silence every session, cancel every timer.

        In-flight airtime already handed to the medium finishes (the RF
        energy is out there), but nothing new leaves, nothing is heard,
        and all MAC state that a rebooting device would lose is lost.
        """
        if not self.powered:
            return
        self.powered = False
        for session in self._sessions.values():
            session.ba_timer.stop()
            session.awaiting = None
            session.queue.flush()
            session.scoreboard.abandon_all()
            session.consecutive_failures = 0
            session.mode = "off"
        self._control_jobs.clear()
        self._mgmt_inflight = None
        self._mgmt_timer.stop()
        if self._beacon_timer is not None:
            self._beacon_timer.stop()
        self.dcf.cancel()

    def power_on(self) -> None:
        """Boot the radio back up (sessions stay "off" until re-armed —
        a rebooted AP serves nobody until told to)."""
        self.powered = True

    def queue_len(self, peer: str) -> int:
        return len(self.session(peer).queue)

    def queue_room(self, peer: str) -> int:
        session = self.session(peer)
        return session.queue.capacity - len(session.queue)

    def set_session_mode(self, peer: str, mode: str) -> None:
        """Gate transmission to one peer (WGTT's stop/start switching).

        Modes: "active" (normal), "drain" (finish in-flight/retry MPDUs
        only — the post-stop NIC drain), "off" (silent).
        """
        if mode not in ("active", "drain", "off"):
            raise ValueError(f"unknown session mode {mode!r}")
        self.session(peer).mode = mode
        if mode != "off":
            self._kick()

    def flush_session(self, peer: str) -> int:
        """Drop everything queued for ``peer`` (not yet on the air)."""
        return self.session(peer).queue.flush()

    def reset_tx_state(self, peer: str, seq: int) -> None:
        """Adopt transmission duty mid-stream: continue the shared
        per-client sequence space from ``seq`` with a clean slate."""
        session = self.session(peer)
        session.ba_timer.stop()
        session.awaiting = None
        session.queue.flush()
        session.consecutive_failures = 0
        session.scoreboard.reset_to(seq)

    def send_mgmt(
        self,
        subtype: str,
        ra: str,
        payload: Optional[dict] = None,
        on_result: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Send a management frame with ACK-based retries."""
        frame = MgmtFrame(
            tx_device=self.node_id,
            ta=self.ta_address,
            ra=ra,
            subtype=subtype,
            payload=payload or {},
        )
        self._control_jobs.append(
            {"kind": "mgmt", "frame": frame, "retries": 0, "on_result": on_result}
        )
        self._kick()

    def start_beaconing(self, interval_us: int = BEACON_INTERVAL_US) -> None:
        """Begin periodic beacon transmission (APs only)."""
        if self.role != "ap":
            raise RuntimeError("only APs beacon")

        def tick():
            self._control_jobs.append({"kind": "beacon"})
            self._kick()
            self._beacon_timer.start(interval_us)

        self._beacon_timer = Timer(self._sim, tick)
        # Stagger the first beacon per AP so arrays don't synchronize.
        self._beacon_timer.start(int(self._draw.integers(0, interval_us)))

    def apply_block_ack_info(self, peer: str, acked: Set[int]) -> dict:
        """Apply externally learned BA information (WGTT forwarding).

        Returns accounting of what the information changed.
        """
        session = self.session(peer)
        delivered = session.scoreboard.apply_external_ack(set(acked))
        self.stats["mpdus_acked"] += len(delivered)
        self._kick()
        return {"delivered": len(delivered)}

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def _sessions_with_work(self) -> List[str]:
        return [p for p in self._rr_order if self._sessions[p].has_work()]

    def _kick(self) -> None:
        if not self.powered:
            return
        if self.dcf.busy:
            return
        if self._mgmt_inflight is not None:
            return
        if self._control_jobs or self._sessions_with_work():
            self.dcf.request_access(self._granted)
        self._request_refills()

    def _request_refills(self) -> None:
        for peer, session in self._sessions.items():
            if session.enabled:
                room = session.queue.capacity - len(session.queue)
                if room > session.queue.capacity // 2:
                    self.on_refill_needed(peer, room)

    def _granted(self) -> None:
        if self._control_jobs:
            self._send_control_job(self._control_jobs.popleft())
            return
        ready = self._sessions_with_work()
        if not ready:
            return
        # Round-robin: rotate the order so every peer gets airtime.
        peer = ready[0]
        self._rr_order.remove(peer)
        self._rr_order.append(peer)
        self._send_ampdu(self._sessions[peer])

    def _send_control_job(self, job: dict) -> None:
        if job["kind"] == "beacon":
            frame = BeaconFrame(tx_device=self.node_id, ta=self.ta_address, ra="*")
            self._medium.transmit(frame)
            self.stats["beacons_sent"] += 1
            # No response expected; re-kick right after airtime.
            self._sim.schedule(frame.duration_us() + 1, self._kick)
            return
        if job["kind"] == "mgmt":
            frame = job["frame"]
            self._medium.transmit(frame)
            self._mgmt_inflight = job
            self._mgmt_timer.start(
                frame.duration_us() + SIFS_US + 40 + BA_TIMEOUT_MARGIN_US
            )
            return
        raise ValueError(f"unknown control job {job['kind']!r}")

    def _send_ampdu(self, session: TxSession) -> None:
        mcs = session.rate.select_mcs()
        if session.consecutive_failures:
            # Multi-rate retry chain: every consecutive all-failed
            # exchange steps one MCS down until something gets through.
            from repro.phy.mcs import MCS_TABLE

            fallback = max(0, mcs.index - session.consecutive_failures)
            mcs = MCS_TABLE[fallback]
        mpdus = build_ampdu_mpdus(session.scoreboard, session.queue, mcs)
        if not mpdus:
            self._kick()
            return
        frame = DataAmpdu(
            tx_device=self.node_id,
            ta=self.ta_address,
            ra=session.peer,
            mpdus=mpdus,
            mcs=mcs,
            window_start=session.scoreboard.window_start,
        )
        session.scoreboard.record_transmit(mpdus)
        session.awaiting = frame
        self.last_tx_us = self._sim.now
        self._medium.transmit(frame)
        self.stats["ampdus_sent"] += 1
        self.stats["mpdus_sent"] += len(mpdus)
        tracer = self._sim.obs.trace
        if tracer.active:
            # Replaces the old monkey-patched on_rate_used device hook:
            # RateUsageLog subscribes to this event by name.
            tracer.emit(
                "mac",
                "ampdu-tx",
                track=f"mac/{self.node_id}",
                detail=True,
                node=self.node_id,
                peer=session.peer,
                mcs=mcs.index,
                rate_bps=mcs.data_rate_bps,
                count=len(mpdus),
            )
        ba_round_trip = (
            frame.duration_us()
            + SIFS_US
            + self.response_jitter_us
            + 52  # BA airtime
            + BA_TIMEOUT_MARGIN_US
        )
        session.ba_timer.start(ba_round_trip)
        self._request_refills()

    def _ba_timeout(self, session: TxSession) -> None:
        frame = session.awaiting
        if frame is None:
            return
        session.awaiting = None
        session.scoreboard.process_timeout(frame.seqs())
        session.rate.feedback(frame.mcs, attempted=len(frame.mpdus), acked=0)
        session.consecutive_failures += 1
        self.on_ampdu_result(session.peer, len(frame.mpdus), 0)
        self.dcf.notify_failure()
        self.stats["ba_timeouts"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "mac",
                "ba-timeout",
                track=f"mac/{self.node_id}",
                node=self.node_id,
                peer=session.peer,
                mpdus=len(frame.mpdus),
            )
        self._kick()

    def _mgmt_timeout(self) -> None:
        job = self._mgmt_inflight
        if job is None:
            return
        self._mgmt_inflight = None
        job["retries"] += 1
        if job["retries"] > MGMT_RETRY_LIMIT:
            if job["on_result"] is not None:
                job["on_result"](False)
        else:
            self.dcf.notify_failure()
            self._control_jobs.appendleft(job)
        self._kick()

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def cares_about(self, frame: Frame) -> bool:
        if not self.powered:
            return False
        if frame.is_broadcast or frame.ra in self.addresses:
            return True
        if self.role == "ap" and self.monitor:
            # Overhear client transmissions (CSI + BA forwarding).
            sender = self._medium_device_role(frame.tx_device)
            return sender == "client"
        return False

    def _medium_device_role(self, node_id: str) -> Optional[str]:
        device = self._medium._devices.get(node_id)
        return getattr(device, "role", None)

    def on_air_frame(
        self, frame: Frame, snr_db: Optional[np.ndarray], decodable: bool
    ) -> None:
        if snr_db is None or not decodable:
            return
        if isinstance(frame, DataAmpdu):
            self._receive_data(frame, snr_db)
        elif isinstance(frame, BlockAckFrame):
            self._receive_block_ack(frame, snr_db)
        elif isinstance(frame, BeaconFrame):
            self._receive_beacon(frame, snr_db)
        elif isinstance(frame, MgmtFrame):
            self._receive_mgmt(frame, snr_db)
        elif isinstance(frame, AckFrame):
            self._receive_ack(frame, snr_db)

    def _rssi_from_snr(self, snr_db: np.ndarray) -> float:
        # Served through the bounded identity memo so the batched
        # medium's CSI prewarm turns this into a dictionary hit.
        return NOISE_FLOOR_DBM + wideband_rssi_offset_db(snr_db)

    def _maybe_csi(self, frame: Frame, snr_db: np.ndarray) -> None:
        """APs measure CSI on every decodable client transmission."""
        if self.role != "ap":
            return
        if self._medium_device_role(frame.tx_device) != "client":
            return
        if self._draw.random() >= preamble_success_probability(snr_db):
            return
        self.on_csi(frame.tx_device, snr_db, self._rssi_from_snr(snr_db))

    def _receive_data(self, frame: DataAmpdu, snr_db: np.ndarray) -> None:
        self._maybe_csi(frame, snr_db)
        addressed = frame.ra in self.addresses
        if not addressed:
            return
        if not self.accept_data_from(frame.ta):
            return
        if self._draw.random() >= preamble_success_probability(snr_db):
            return
        # One RNG call for the whole aggregate: ``random(n)`` yields the
        # same value stream as n successive ``random()`` calls, and the
        # success probabilities involve no randomness, so drawing up
        # front is bit-identical to the old per-MPDU interleaving.
        mpdus = frame.mpdus
        draws = self._draw.random(len(mpdus))
        decoded: List = []
        # The success probability depends only on the MPDU length, and
        # aggregates are overwhelmingly uniform-size — evaluate once
        # per distinct length instead of once per subframe.
        p_by_size: Dict[int, float] = {}
        for i, mpdu in enumerate(mpdus):
            p = p_by_size.get(mpdu.size_bytes)
            if p is None:
                p = mpdu_payload_success_probability(
                    snr_db, frame.mcs, mpdu.size_bytes
                )
                p_by_size[mpdu.size_bytes] = p
            if draws[i] < p:
                decoded.append(mpdu)
        reorder = self.reorder_buffer(frame.ta)
        for packet in reorder.advance_to(frame.window_start):
            self.on_packet(packet, frame.ta)
        for mpdu in decoded:
            for packet in reorder.receive(mpdu.seq, mpdu.packet):
                self.on_packet(packet, frame.ta)
        reorder.forget_old_history()
        ack_set = reorder.ack_set(frame.seqs())
        if not decoded and not ack_set:
            # Nothing decoded now or previously: no MAC header was ever
            # parsed, so the receiver does not know the aggregate was
            # addressed to it — it cannot respond. (This also keeps a
            # weak overhearing AP from stealing the response slot from
            # the AP that actually decoded the frame.)
            return
        ba = BlockAckFrame(
            tx_device=self.node_id,
            ta=self.ta_address,
            ra=frame.ta,
            start_seq=frame.window_start,
            acked=frozenset(ack_set),
            resp_to=frame.frame_id,
        )
        jitter = (
            int(self._draw.integers(0, self.response_jitter_us + 1))
            if self.response_jitter_us
            else 0
        )
        self._medium.transmit_response(ba, delay_us=SIFS_US + jitter)
        self.last_tx_us = self._sim.now
        self.stats["ba_sent"] += 1

    def _receive_block_ack(self, frame: BlockAckFrame, snr_db: np.ndarray) -> None:
        self._maybe_csi(frame, snr_db)
        if frame.ra not in self.addresses:
            return
        if self._draw.random() >= preamble_success_probability(snr_db):
            return
        session = self._sessions.get(frame.ta)
        if (
            session is None
            or session.awaiting is None
            or session.awaiting.frame_id != frame.resp_to
        ):
            # A BA answering an exchange we did not send: under WGTT's
            # shared BSSID this is another AP's acknowledgement — hand
            # it to the forwarding hook (paper §3.2.1).
            self.on_overheard_block_ack(frame)
            return
        pending = session.awaiting
        session.ba_timer.stop()
        session.awaiting = None
        self.stats["ba_received"] += 1
        self.on_ba_processed(frame)
        attempted = set(pending.seqs())
        acked_now = set(frame.acked) & attempted
        delivered, dropped = session.scoreboard.process_block_ack(set(frame.acked))
        session.rate.feedback(pending.mcs, len(attempted), len(acked_now))
        self.on_ampdu_result(session.peer, len(attempted), len(acked_now))
        self.stats["mpdus_acked"] += len(delivered)
        self.stats["mpdus_dropped"] += len(dropped)
        if dropped:
            self.on_mpdus_dropped(session.peer, dropped)
        if acked_now:
            self.dcf.notify_success()
            session.consecutive_failures = 0
        else:
            self.dcf.notify_failure()
            session.consecutive_failures += 1
        self._kick()

    def _receive_beacon(self, frame: BeaconFrame, snr_db: np.ndarray) -> None:
        if self._draw.random() >= preamble_success_probability(snr_db):
            return
        self.on_beacon(frame, self._rssi_from_snr(snr_db))

    def _receive_mgmt(self, frame: MgmtFrame, snr_db: np.ndarray) -> None:
        self._maybe_csi(frame, snr_db)
        if frame.ra not in self.addresses:
            return
        p = mpdu_payload_success_probability(snr_db, BASIC_RATE, 120)
        if self._draw.random() >= p * preamble_success_probability(snr_db):
            return
        ack = AckFrame(tx_device=self.node_id, ta=self.ta_address, ra=frame.ta)
        self._medium.transmit_response(ack, delay_us=SIFS_US)
        self.on_mgmt(frame)

    def _receive_ack(self, frame: AckFrame, snr_db: np.ndarray) -> None:
        if frame.ra not in self.addresses:
            return
        if self._draw.random() >= preamble_success_probability(snr_db):
            return
        job = self._mgmt_inflight
        if job is None:
            return
        self._mgmt_inflight = None
        self._mgmt_timer.stop()
        self.dcf.notify_success()
        if job["on_result"] is not None:
            job["on_result"](True)
        self._kick()
