"""Minstrel-style rate control.

The testbed runs the stock ath9k rate controller (paper §4: "without
modification of the default rate control algorithm"), i.e. Minstrel HT:
per-rate delivery probability is tracked with an EWMA over periodic
update intervals, the data rate with the best probability-weighted
throughput is used, and a fraction of frames sample other rates to keep
the statistics alive.

One controller instance exists per (transmitter, peer) pair, so after a
WGTT switch the incoming AP starts from whatever statistics it last had
for that client — the same staleness a real AP array exhibits.
"""

from __future__ import annotations


import numpy as np

from repro.phy.mcs import MCS_TABLE, Mcs
from repro.sim.engine import Simulator

#: Statistics refresh interval (Minstrel default is 100 ms).
UPDATE_INTERVAL_US = 100_000
#: EWMA weight for old data at each update (Minstrel default 75%).
EWMA_LEVEL = 0.75
#: Fraction of transmissions used to sample non-optimal rates.
SAMPLE_FRACTION = 0.1
#: Optimistic initial delivery probability for untried rates.
INITIAL_PROBABILITY = 0.5


class MinstrelRateController:
    """Per-peer transmit rate selection from block-ACK feedback."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 initial_mcs_index: int = 4):
        self._sim = sim
        self._rng = rng
        self._probability = np.full(len(MCS_TABLE), INITIAL_PROBABILITY)
        self._attempts = np.zeros(len(MCS_TABLE), dtype=np.int64)
        self._successes = np.zeros(len(MCS_TABLE), dtype=np.int64)
        self._tried = np.zeros(len(MCS_TABLE), dtype=bool)
        self._last_update_us = 0
        self._frames_since_sample = 0
        self._current_index = initial_mcs_index
        self._tried[initial_mcs_index] = True

    def select_mcs(self) -> Mcs:
        """Rate for the next aggregate: best throughput, with sampling."""
        self._maybe_update()
        self._frames_since_sample += 1
        if (
            self._frames_since_sample * SAMPLE_FRACTION >= 1.0
            and self._rng.random() < SAMPLE_FRACTION
        ):
            self._frames_since_sample = 0
            return MCS_TABLE[self._sample_index()]
        return MCS_TABLE[self._current_index]

    def feedback(self, mcs: Mcs, attempted: int, acked: int) -> None:
        """Record per-MPDU outcomes of one aggregate at ``mcs``."""
        if mcs.index < 0:
            return  # control/basic rates are not managed
        self._attempts[mcs.index] += attempted
        self._successes[mcs.index] += acked
        self._tried[mcs.index] = True
        self._maybe_update()

    def expected_throughput_bps(self, index: int) -> float:
        return MCS_TABLE[index].data_rate_bps * float(self._probability[index])

    def probability(self, index: int) -> float:
        return float(self._probability[index])

    @property
    def current_mcs(self) -> Mcs:
        return MCS_TABLE[self._current_index]

    # ------------------------------------------------------------------

    def _sample_index(self) -> int:
        """Pick a lookaround rate.

        Half the samples probe the immediate neighbours of the current
        rate (cheap refinement); the other half probe a uniformly
        random other rate, so the controller can escape to a far-away
        operating point when the channel moves a lot — which in the
        vehicular picocell regime it constantly does.
        """
        if self._rng.random() < 0.5:
            low = max(0, self._current_index - 1)
            high = min(len(MCS_TABLE) - 1, self._current_index + 2)
            choices = [
                i for i in range(low, high + 1) if i != self._current_index
            ]
        else:
            choices = [
                i for i in range(len(MCS_TABLE)) if i != self._current_index
            ]
        if not choices:
            return self._current_index
        return int(self._rng.choice(choices))

    def _maybe_update(self) -> None:
        now = self._sim.now
        if now - self._last_update_us < UPDATE_INTERVAL_US:
            return
        self._last_update_us = now
        fresh = np.divide(
            self._successes,
            self._attempts,
            out=np.full(len(MCS_TABLE), np.nan),
            where=self._attempts > 0,
        )
        tried = ~np.isnan(fresh)
        self._probability[tried] = (
            EWMA_LEVEL * self._probability[tried]
            + (1.0 - EWMA_LEVEL) * fresh[tried]
        )
        self._attempts[:] = 0
        self._successes[:] = 0
        throughput = np.array(
            [self.expected_throughput_bps(i) for i in range(len(MCS_TABLE))]
        )
        # Only rates we have real statistics for may become the primary
        # rate; untried ones must earn their place via sampling first.
        throughput[~self._tried] = -1.0
        self._current_index = int(np.argmax(throughput))
