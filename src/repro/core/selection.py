"""WGTT AP selection: maximal median ESNR over a sliding window.

Every CSI report an AP forwards becomes one (time, ESNR) reading for
that client↔AP link. The controller keeps the last W = 10 ms of
readings per link and, when asked, picks the AP whose *median* reading
is highest (paper §3.1.1, Figure 6). The median — not the mean or the
latest sample — is what rides out single-frame fading flukes while
still reacting within the window.

The same window also defines the downlink fan-out set: the APs that
have heard anything from the client recently (paper footnote 1).

Performance: this is the code the controller runs every 2 ms for every
client, so the window is maintained *incrementally*.  Each link keeps
its readings twice — in arrival order (a deque, for O(1) expiry) and
in value order (a bisect-maintained sorted list) — giving O(log n)
``record``, O(1) median, and no per-query ``sorted()``.  Series that
prune to empty are dropped outright (and the per-client dict with
them), so a long multi-client run never accumulates dead state; the
surviving per-client dict doubles as the cached candidate set.
"""

from __future__ import annotations

from bisect import insort, bisect_left
from collections import deque
from math import fsum
from typing import Deque, Dict, List, Optional, Tuple


class _Window:
    """One link's sliding window, in arrival order and value order.

    ``entries`` is the arrival-ordered (time, value) deque the pruning
    walks; ``sorted_values`` is the same multiset in value order.  The
    incremental median is *exactly* the ``sorted(...)[n // 2]`` of the
    reference implementation — the equivalence property test in
    ``tests/test_perf_equivalence.py`` holds it to that, element for
    element, over randomized insert/expire sequences.
    """

    __slots__ = ("entries", "sorted_values")

    def __init__(self) -> None:
        self.entries: Deque[Tuple[int, float]] = deque()
        self.sorted_values: List[float] = []

    def add(self, time_us: int, value: float) -> None:
        self.entries.append((time_us, value))
        insort(self.sorted_values, value)

    def prune(self, horizon_us: int) -> None:
        """Drop readings strictly older than ``horizon_us``."""
        entries = self.entries
        while entries and entries[0][0] < horizon_us:
            _, value = entries.popleft()
            values = self.sorted_values
            del values[bisect_left(values, value)]

    def statistic(self, metric: str) -> float:
        if metric == "median":
            values = self.sorted_values
            return values[len(values) // 2]
        if metric == "latest":
            return self.entries[-1][1]
        # mean: fsum for exact agreement with the naive reference.
        return fsum(self.sorted_values) / len(self.sorted_values)


class ApSelector:
    """Sliding-window median-ESNR ranking, per client.

    ``metric`` selects the window statistic: "median" (the paper's
    choice — robust to single-frame fading flukes), "mean", or
    "latest" (agile but noise-prone); the alternatives exist for the
    ablation benches.
    """

    def __init__(self, window_us: int = 10_000, metric: str = "median"):
        if window_us <= 0:
            raise ValueError("window must be positive")
        if metric not in ("median", "mean", "latest"):
            raise ValueError(f"unknown selection metric {metric!r}")
        self.window_us = window_us
        self.metric = metric
        #: client -> ap -> window; empty windows are dropped eagerly.
        self._readings: Dict[str, Dict[str, _Window]] = {}

    def record(self, client_id: str, ap_id: str, time_us: int, esnr_db: float):
        """Ingest one CSI-derived ESNR reading — O(log window)."""
        per_client = self._readings.setdefault(client_id, {})
        window = per_client.get(ap_id)
        if window is None:
            window = per_client[ap_id] = _Window()
        window.add(time_us, esnr_db)
        window.prune(time_us - self.window_us)

    def _window(
        self, client_id: str, ap_id: str, now_us: int
    ) -> Optional[_Window]:
        """The pruned, non-empty window for one link (or None).

        Windows that prune to empty are deleted on the spot, so the
        per-client dict only ever holds live series.
        """
        per_client = self._readings.get(client_id)
        if per_client is None:
            return None
        window = per_client.get(ap_id)
        if window is None:
            return None
        window.prune(now_us - self.window_us)
        if not window.entries:
            del per_client[ap_id]
            if not per_client:
                del self._readings[client_id]
            return None
        return window

    def median_esnr(
        self, client_id: str, ap_id: str, now_us: int
    ) -> Optional[float]:
        """Window statistic of one link (O(1) median), or None if silent."""
        window = self._window(client_id, ap_id, now_us)
        if window is None:
            return None
        return window.statistic(self.metric)

    def candidates(self, client_id: str, now_us: int) -> List[str]:
        """APs that heard the client within the window — the fan-out set."""
        per_client = self._readings.get(client_id)
        if not per_client:
            return []
        horizon = now_us - self.window_us
        result: List[str] = []
        dead: List[str] = []
        for ap_id, window in per_client.items():
            # O(1) freshness check; pruning only touches expired entries.
            if window.entries and window.entries[-1][0] >= horizon:
                window.prune(horizon)
                result.append(ap_id)
            else:
                dead.append(ap_id)
        for ap_id in dead:
            del per_client[ap_id]
        if not per_client:
            del self._readings[client_id]
        return result

    def best_ap(
        self,
        client_id: str,
        now_us: int,
        incumbent: Optional[str] = None,
        margin_db: float = 0.0,
    ) -> Optional[str]:
        """The AP with the maximal median ESNR.

        A non-incumbent challenger must beat the incumbent's median by
        ``margin_db``; ties go to the incumbent, so silent flapping on
        equal links never happens.
        """
        per_client = self._readings.get(client_id)
        if not per_client:
            return incumbent
        metric = self.metric
        horizon = now_us - self.window_us
        best_ap: Optional[str] = None
        best_value = 0.0
        incumbent_value: Optional[float] = None
        dead: List[str] = []
        for ap_id, window in per_client.items():
            if not (window.entries and window.entries[-1][0] >= horizon):
                dead.append(ap_id)
                continue
            window.prune(horizon)
            value = window.statistic(metric)
            if best_ap is None or value > best_value:
                best_ap, best_value = ap_id, value
            if ap_id == incumbent:
                incumbent_value = value
        for ap_id in dead:
            del per_client[ap_id]
        if not per_client:
            del self._readings[client_id]
        if best_ap is None:
            return incumbent
        if (
            incumbent is not None
            and incumbent_value is not None
            and best_ap != incumbent
            and best_value < incumbent_value + margin_db
        ):
            return incumbent
        return best_ap

    def series_count(self, client_id: Optional[str] = None) -> int:
        """Live (client, AP) series held — the memory-bound invariant
        the long-run tests assert on."""
        if client_id is not None:
            return len(self._readings.get(client_id, {}))
        return sum(len(per_client) for per_client in self._readings.values())

    def forget_client(self, client_id: str) -> None:
        self._readings.pop(client_id, None)

    def forget_ap(self, ap_id: str) -> None:
        """Drop every client's window for one AP and free its memory.

        The liveness tracker calls this when an AP is declared DEAD: a
        dead AP must stop competing in :meth:`best_ap` and stop padding
        the fan-out set immediately — its last CSI reports may be only
        microseconds old and would otherwise keep it attractive for a
        full window.  It also closes the unbounded-growth hole where an
        AP that never reports again (decommissioned, dead, re-homed)
        would pin its windows forever on clients that also went silent.
        """
        empty_clients = []
        for client_id, per_client in self._readings.items():
            per_client.pop(ap_id, None)
            if not per_client:
                empty_clients.append(client_id)
        for client_id in empty_clients:
            del self._readings[client_id]

    # -- checkpoint support -------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
        """Arrival-ordered window entries per live (client, AP) series.

        Only ``entries`` is captured; ``sorted_values`` is the same
        multiset in value order and is rebuilt exactly on restore.
        """
        return {
            client_id: {
                ap_id: list(window.entries)
                for ap_id, window in per_client.items()
            }
            for client_id, per_client in self._readings.items()
        }

    def client_snapshot(
        self, client_id: str
    ) -> Dict[str, List[Tuple[int, float]]]:
        """One client's window entries per AP (see :meth:`snapshot`) —
        the per-client slice inter-shard handoff serializes."""
        per_client = self._readings.get(client_id)
        if not per_client:
            return {}
        return {
            ap_id: list(window.entries)
            for ap_id, window in per_client.items()
        }

    def restore_client(
        self, client_id: str, state: Dict[str, List[Tuple[int, float]]]
    ) -> None:
        """Merge one client's transferred windows into this selector.

        Used on the receiving side of an inter-shard handoff.  Series
        this selector already holds for the client (CSI its own APs
        overheard while the client approached the boundary) win over
        the transferred copies — they are fresher by construction and
        merging value-by-value would double-count readings.
        """
        per_client = self._readings.setdefault(client_id, {})
        for ap_id, entries in state.items():
            if not entries or ap_id in per_client:
                continue
            window = _Window()
            window.entries = deque((int(t), float(v)) for t, v in entries)
            window.sorted_values = sorted(v for _, v in window.entries)
            per_client[ap_id] = window
        if not per_client:
            del self._readings[client_id]

    def restore(
        self, state: Dict[str, Dict[str, List[Tuple[int, float]]]]
    ) -> None:
        """Rebuild every window from a snapshot (lossless: the rebuilt
        ``sorted_values`` equals the incrementally maintained one —
        both are the sorted multiset of the entries)."""
        readings: Dict[str, Dict[str, _Window]] = {}
        for client_id, per_client in state.items():
            rebuilt: Dict[str, _Window] = {}
            for ap_id, entries in per_client.items():
                if not entries:
                    continue
                window = _Window()
                window.entries = deque(
                    (int(t), float(v)) for t, v in entries
                )
                window.sorted_values = sorted(v for _, v in window.entries)
                rebuilt[ap_id] = window
            if rebuilt:
                readings[client_id] = rebuilt
        self._readings = readings
