"""WGTT AP selection: maximal median ESNR over a sliding window.

Every CSI report an AP forwards becomes one (time, ESNR) reading for
that client↔AP link. The controller keeps the last W = 10 ms of
readings per link and, when asked, picks the AP whose *median* reading
is highest (paper §3.1.1, Figure 6). The median — not the mean or the
latest sample — is what rides out single-frame fading flukes while
still reacting within the window.

The same window also defines the downlink fan-out set: the APs that
have heard anything from the client recently (paper footnote 1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class ApSelector:
    """Sliding-window median-ESNR ranking, per client.

    ``metric`` selects the window statistic: "median" (the paper's
    choice — robust to single-frame fading flukes), "mean", or
    "latest" (agile but noise-prone); the alternatives exist for the
    ablation benches.
    """

    def __init__(self, window_us: int = 10_000, metric: str = "median"):
        if window_us <= 0:
            raise ValueError("window must be positive")
        if metric not in ("median", "mean", "latest"):
            raise ValueError(f"unknown selection metric {metric!r}")
        self.window_us = window_us
        self.metric = metric
        #: client -> ap -> deque[(time_us, esnr_db)]
        self._readings: Dict[str, Dict[str, Deque[Tuple[int, float]]]] = {}

    def record(self, client_id: str, ap_id: str, time_us: int, esnr_db: float):
        """Ingest one CSI-derived ESNR reading."""
        per_client = self._readings.setdefault(client_id, {})
        series = per_client.setdefault(ap_id, deque())
        series.append((time_us, esnr_db))
        self._prune(series, time_us)

    def _prune(self, series: Deque[Tuple[int, float]], now_us: int) -> None:
        horizon = now_us - self.window_us
        while series and series[0][0] < horizon:
            series.popleft()

    def median_esnr(
        self, client_id: str, ap_id: str, now_us: int
    ) -> Optional[float]:
        """Median ESNR of one link over the window, or None if silent."""
        series = self._readings.get(client_id, {}).get(ap_id)
        if not series:
            return None
        self._prune(series, now_us)
        if not series:
            return None
        if self.metric == "latest":
            return series[-1][1]
        values = sorted(esnr for _, esnr in series)
        if self.metric == "mean":
            return sum(values) / len(values)
        return values[len(values) // 2]

    def candidates(self, client_id: str, now_us: int) -> List[str]:
        """APs that heard the client within the window — the fan-out set."""
        result = []
        for ap_id, series in self._readings.get(client_id, {}).items():
            self._prune(series, now_us)
            if series:
                result.append(ap_id)
        return result

    def best_ap(
        self,
        client_id: str,
        now_us: int,
        incumbent: Optional[str] = None,
        margin_db: float = 0.0,
    ) -> Optional[str]:
        """The AP with the maximal median ESNR.

        A non-incumbent challenger must beat the incumbent's median by
        ``margin_db``; ties go to the incumbent, so silent flapping on
        equal links never happens.
        """
        medians = {}
        for ap_id in self.candidates(client_id, now_us):
            median = self.median_esnr(client_id, ap_id, now_us)
            if median is not None:
                medians[ap_id] = median
        if not medians:
            return incumbent
        best_ap = max(medians, key=lambda ap: medians[ap])
        if incumbent is not None and incumbent in medians and best_ap != incumbent:
            if medians[best_ap] < medians[incumbent] + margin_db:
                return incumbent
        return best_ap

    def forget_client(self, client_id: str) -> None:
        self._readings.pop(client_id, None)
