"""The per-client cyclic queue (paper §3.1.2, Figure 7).

The controller fans every downlink packet out to all APs near the
client, tagged with an m-bit index (m = 12) that increments per packet
per client. Each AP stores the packet at that index in a cyclic buffer.
Only the serving AP drains its buffer to the radio; when duty moves to
another AP, a single index k in the start(c, k) message tells the new
AP exactly where to resume — its buffer already holds the backlog, so
nothing is re-sent over the backhaul.

Like any ring buffer, the reader must never pass the writer: the 12-bit
index space wraps every 4096 packets, so a slot "ahead of" the most
recent write holds a stale previous-lap packet, not future data. The
queue tracks its *write edge* and refuses to pop or count anything at
or beyond it — that is exactly the uniqueness guarantee the paper's
m = 12 choice provides on real hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet


class CyclicQueue:
    """One client's cyclic packet buffer at one AP."""

    def __init__(self, size: int = 4096):
        if size <= 0 or size & (size - 1):
            raise ValueError("cyclic queue size must be a power of two")
        self.size = size
        self._slots: Dict[int, Packet] = {}
        self._head = 0
        #: One past the most recently written index — the write edge.
        self._edge = 0
        self._started = False
        self.overwrites = 0
        self.stale_dropped = 0
        #: Largest head→edge pending span ever reached — the occupancy
        #: ceiling the soak SLO guard watches through the metrics
        #: collectors (a span that keeps growing means the reader has
        #: fallen behind the writer).
        self.high_watermark = 0
        #: Undelivered (pending) slots that were overwritten because the
        #: writer lapped the reader — real data loss, accounted here so
        #: it is never silent.  Stale previous-lap overwrites (the
        #: benign case at non-serving APs) stay in ``overwrites`` only.
        self.overflow_drops = 0

    @property
    def head(self) -> int:
        """Index of the next packet to hand to the lower stack."""
        return self._head

    @property
    def write_edge(self) -> int:
        """One past the newest index written (reader must stop here)."""
        return self._edge

    def _distance(self, from_index: int, to_index: int) -> int:
        return (to_index - from_index) % self.size

    def _pending_span(self) -> int:
        """How many index positions lie between head and write edge.

        A span of zero normally means empty; when the buffer is exactly
        full (writer lapped to the reader) the head slot is occupied
        and the whole ring is pending.
        """
        span = self._distance(self._head, self._edge)
        if span == 0 and self._head in self._slots:
            return self.size
        return span

    def pending_span(self) -> int:
        """Public alias for the head→edge span (backpressure input)."""
        return self._pending_span()

    def insert(self, index: int, packet: Packet) -> None:
        """Store a packet at its controller-assigned index.

        Overwriting an occupied slot is legal — the 12-bit index space
        wraps — but overwriting a slot the reader has *not yet served*
        (inside the head→edge span) destroys undelivered data.  That
        case is counted in ``overflow_drops`` so overload is explicit,
        never silent; the backpressure guardrail exists to keep the
        serving AP's span from ever getting there.
        """
        index %= self.size
        if index in self._slots:
            if self._distance(self._head, index) < self._pending_span():
                self.overflow_drops += 1
            self.overwrites += 1
        self._slots[index] = packet
        advance = self._distance(self._edge, index)
        if not self._started or advance < self.size // 2:
            self._edge = (index + 1) % self.size
            self._started = True
        span = self._pending_span()
        if span > self.high_watermark:
            self.high_watermark = span

    def pop_head(self) -> Optional[Tuple[int, Packet]]:
        """Take the next buffered packet between head and write edge.

        The head slot can be empty even though later slots are filled:
        this AP was outside the client's fan-out set when those indices
        were distributed. The controller's backhaul port is FIFO, so a
        present later index proves the earlier ones will never arrive —
        skip the gap. Slots at or past the write edge are previous-lap
        leftovers and are never served.
        """
        span = self._pending_span()
        if span == 0:
            return None
        packet = self._slots.pop(self._head, None)
        if packet is not None:
            index = self._head
            self._head = (self._head + 1) % self.size
            return index, packet
        best: Optional[int] = None
        best_distance = span
        for index in self._slots:
            distance = self._distance(self._head, index)
            if distance < best_distance:
                best, best_distance = index, distance
        if best is None:
            return None
        packet = self._slots.pop(best)
        self._head = (best + 1) % self.size
        return best, packet

    def advance_to(self, index: int) -> int:
        """Move the head to ``index`` (a start(c, k) message), dropping
        every slot logically before it. Returns how many were dropped.

        When k lies beyond our write edge (this AP missed the recent
        fan-out entirely), everything held is stale: clear it all and
        wait for fresh data.
        """
        index %= self.size
        if self._distance(self._edge, index) < self.size // 2 or not self._started:
            # k is ahead of anything we hold: nothing here is current.
            dropped = len(self._slots)
            self.stale_dropped += dropped
            self._slots.clear()
            self._head = index
            self._edge = index
            self._started = True
            return dropped
        dropped = 0
        steps = self._distance(self._head, index)
        for offset in range(steps):
            slot = (self._head + offset) % self.size
            if self._slots.pop(slot, None) is not None:
                dropped += 1
        self._head = index
        return dropped

    def backlog(self) -> int:
        """Occupied slots between head and write edge (what a switch
        inherits); previous-lap leftovers do not count."""
        span = self._pending_span()
        return sum(
            1
            for index in self._slots
            if self._distance(self._head, index) < span
        )

    def backlog_packets(self) -> List[Tuple[int, Packet]]:
        """The serveable backlog in index order (for inspection/tests)."""
        span = self._pending_span()
        entries = [
            (self._distance(self._head, index), index, packet)
            for index, packet in self._slots.items()
            if self._distance(self._head, index) < span
        ]
        entries.sort()
        return [(index, packet) for _, index, packet in entries]

    def occupancy(self) -> int:
        """Total occupied slots, including stale pre-head ones."""
        return len(self._slots)

    def clear(self) -> None:
        self._slots.clear()


class IndexAllocator:
    """Controller-side per-client m-bit index assignment."""

    def __init__(self, size: int = 4096):
        self.size = size
        self._next: Dict[str, int] = {}

    def allocate(self, client_id: str) -> int:
        value = self._next.get(client_id, 0)
        self._next[client_id] = (value + 1) % self.size
        return value

    def peek(self, client_id: str) -> int:
        return self._next.get(client_id, 0)

    def forget_client(self, client_id: str) -> None:
        """Free a departed client's cursor.

        Mirrors :meth:`ApSelector.forget_ap`: without this, every
        client that ever received a downlink packet pins a dict entry
        forever — unbounded growth on a transit system serving millions
        of one-ride commuters.
        """
        self._next.pop(client_id, None)

    def tracked_clients(self) -> int:
        """Live cursor count — the memory-bound invariant tests assert."""
        return len(self._next)

    def skid(self, amount: int) -> None:
        """Advance every cursor by ``amount`` index positions.

        A promoted standby restores cursors from a checkpoint that may
        be a whole shipping interval stale; the dead primary kept
        allocating past them.  Skipping ahead guarantees no allocated
        index is re-used — the cyclic queues treat the skipped span as
        an ordinary fan-out gap (readers skip gaps by design), so the
        margin costs nothing but index space.
        """
        if amount <= 0:
            return
        self._next = {
            client: (value + amount) % self.size
            for client, value in self._next.items()
        }

    def fast_forward(self, client_id: str, edge: int) -> bool:
        """Advance one cursor to ``edge`` if that is forward progress.

        ``edge`` is an AP's cyclic-queue write edge (one past the
        newest index it holds) from an ``edge-report``.  Moves the
        cursor only if the edge is *ahead* within half the ring —
        behind-or-equal reports (from APs that missed recent fan-outs)
        and wrapped ancient values are ignored, so replayed or
        reordered reports can never move a cursor backwards.
        """
        edge %= self.size
        current = self._next.get(client_id, 0)
        ahead = (edge - current) % self.size
        if 0 < ahead < self.size // 2:
            self._next[client_id] = edge
            return True
        return False

    def set_cursor(self, client_id: str, value: int) -> None:
        """Install one client's cursor verbatim.

        Inter-shard handoff: the receiving shard's allocator continues
        exactly where the sending shard's stopped, so the client's
        cyclic-queue index stream stays gap-free across the transfer
        (its new APs start empty and sync via edge-reports anyway —
        continuity keeps the index space from aliasing).
        """
        self._next[client_id] = int(value) % self.size

    # -- checkpoint support -------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        return dict(self._next)

    def restore(self, cursors: Dict[str, int]) -> None:
        self._next = {
            client: int(value) % self.size
            for client, value in cursors.items()
        }
