"""WGTT core: the paper's contribution (controller + AP protocol suite)."""

from repro.core.access_point import WgttAccessPoint
from repro.core.assoc_sync import AssociationDirectory, StaInfo
from repro.core.ba_forwarding import BaSeenCache, ForwardedBa
from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.core.cyclic_queue import CyclicQueue, IndexAllocator
from repro.core.dedup import PacketDeduplicator
from repro.core.liveness import ApLivenessTracker
from repro.core.selection import ApSelector
from repro.core.switching import (
    AckMsg,
    FailoverMsg,
    StartMsg,
    StopMsg,
    SwitchCoordinator,
    SwitchRecord,
)

__all__ = [
    "WgttAccessPoint",
    "AssociationDirectory",
    "StaInfo",
    "BaSeenCache",
    "ForwardedBa",
    "WgttConfig",
    "WgttController",
    "CyclicQueue",
    "IndexAllocator",
    "PacketDeduplicator",
    "ApLivenessTracker",
    "ApSelector",
    "AckMsg",
    "FailoverMsg",
    "StartMsg",
    "StopMsg",
    "SwitchCoordinator",
    "SwitchRecord",
]
