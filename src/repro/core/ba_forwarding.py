"""Block-ACK forwarding support (paper §3.2.1, Figure 8).

A non-serving AP that overhears a client's block ACK extracts the
client address, the starting sequence number, and the bitmap, and ships
them to the serving AP over the backhaul. The serving AP must ignore
information it has already applied — whether it came off its own NIC or
from another AP — so both sides share this small dedup/encoding module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

#: Forwarded-BA UDP payload: addresses + start seq + 8-byte bitmap.
BA_FORWARD_WIRE_BYTES = 64


@dataclass(frozen=True)
class ForwardedBa:
    """The block-ACK information one AP forwards to another."""

    client: str
    start_seq: int
    acked: FrozenSet[int]
    heard_by: str
    heard_at_us: int

    def key(self) -> Tuple[str, int, FrozenSet[int]]:
        return (self.client, self.start_seq, self.acked)


class BaSeenCache:
    """Remembers recently applied BA information (bounded, time-pruned)."""

    def __init__(self, horizon_us: int = 50_000):
        self.horizon_us = horizon_us
        self._seen: dict = {}

    def check_and_record(self, ba: ForwardedBa, now_us: int) -> bool:
        """True if this BA information is new (and records it)."""
        self._prune(now_us)
        key = ba.key()
        if key in self._seen:
            return False
        self._seen[key] = now_us
        return True

    def record_local(
        self, client: str, start_seq: int, acked: Set[int], now_us: int
    ) -> None:
        """Note a BA received on the local NIC so a forwarded copy of
        the same BA is dropped later."""
        self._prune(now_us)
        self._seen[(client, start_seq, frozenset(acked))] = now_us

    def _prune(self, now_us: int) -> None:
        horizon = now_us - self.horizon_us
        stale = [k for k, t in self._seen.items() if t < horizon]
        for key in stale:
            del self._seen[key]

    def __len__(self) -> int:
        return len(self._seen)
