"""Per-client fair pacing at the controller's downlink ingress.

PR 3's overload guardrail is a blunt instrument: while the serving AP
holds a client's backpressure signal, ``accept_downlink`` *drops* every
packet for that client.  That keeps the cyclic-queue index space from
lapping undelivered data, but it wastes the backhaul-side buffering a
real operator deployment would have — the controller box has RAM; the
12-bit ring at the AP is the scarce resource.

:class:`AdmissionPacer` upgrades the drop into shaping.  Each client
gets a token bucket (sustained ``admission_rate_pps``, burst
``admission_burst``) and a bounded drop-tail pacing queue.  Packets
that conform are fanned out immediately; over-rate packets — and every
packet for a backpressured client — park in the pacing queue and are
released by a deterministic round-robin timer as tokens refill and the
backpressure clears.  All arithmetic is integer (micro-tokens), all
iteration order is insertion/deque order, so paced runs are exactly
reproducible.

Config-gated off by default (``admission_enabled``): when off the
controller never constructs a pacer and the ingress path is byte-for-
byte the PR 3 code.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.core.config import WgttConfig
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator, Timer

#: Micro-units per token — integer token-bucket arithmetic with no
#: float drift: at ``rate_pps`` packets/s the bucket gains exactly
#: ``rate_pps`` micro-units per elapsed microsecond.
MICRO = 1_000_000


class _Bucket:
    """One client's token bucket + pacing queue."""

    __slots__ = ("tokens_micro", "last_refill_us", "queue")

    def __init__(self, now_us: int, burst: int, queue_slots: int):
        self.tokens_micro = burst * MICRO  # buckets start full
        self.last_refill_us = now_us
        self.queue = DropTailQueue(queue_slots, name="pacing")


class AdmissionPacer:
    """Deterministic token-bucket shaper over the downlink ingress.

    ``release_fn(client_id, packet)`` performs the actual fan-out;
    ``blocked_fn(client_id)`` reports whether release must hold (the
    client's serving AP currently signals backpressure).  ``stats`` is
    the controller's counter dict — the pacer owns the ``admission_*``
    keys in it.
    """

    def __init__(
        self,
        sim: Simulator,
        config: WgttConfig,
        release_fn: Callable[[str, Packet], None],
        blocked_fn: Callable[[str], bool],
        stats: Dict[str, int],
    ):
        self._sim = sim
        self._rate_pps = int(config.admission_rate_pps)
        self._burst = int(config.admission_burst)
        self._queue_slots = int(config.admission_queue_slots)
        self._interval_us = int(config.admission_release_interval_us)
        if self._rate_pps <= 0 or self._burst <= 0:
            raise ValueError("admission rate and burst must be positive")
        self._release_fn = release_fn
        self._blocked_fn = blocked_fn
        self._stats = stats
        self._buckets: Dict[str, _Bucket] = {}
        #: Round-robin release order over clients with a backlog.
        #: Membership mirrors ``queue non-empty``; insertion order is
        #: arrival order, so release is deterministic and fair.
        self._rr: Deque[str] = deque()
        self._rr_members: set = set()
        self._release_timer = Timer(self._sim, self._release_tick)

    # ------------------------------------------------------------------

    def _bucket(self, client_id: str) -> _Bucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = _Bucket(self._sim.now, self._burst, self._queue_slots)
            self._buckets[client_id] = bucket
        return bucket

    def _refill(self, bucket: _Bucket) -> None:
        now = self._sim.now
        elapsed = now - bucket.last_refill_us
        if elapsed <= 0:
            return
        bucket.last_refill_us = now
        bucket.tokens_micro = min(
            self._burst * MICRO,
            bucket.tokens_micro + elapsed * self._rate_pps,
        )

    def _enqueue_backlog(self, client_id: str, bucket: _Bucket) -> None:
        if client_id not in self._rr_members:
            self._rr.append(client_id)
            self._rr_members.add(client_id)
        if not self._release_timer.armed:
            self._release_timer.start(self._interval_us)

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def admit(self, client_id: str, packet: Packet) -> Optional[Packet]:
        """Shape one ingress packet.

        Returns the packet when it conforms (caller fans it out now);
        returns None when it was parked in the pacing queue or dropped
        (queue full — counted in ``admission_dropped``).
        """
        bucket = self._bucket(client_id)
        self._refill(bucket)
        conforms = (
            bucket.queue.empty
            and bucket.tokens_micro >= MICRO
            and not self._blocked_fn(client_id)
        )
        if conforms:
            bucket.tokens_micro -= MICRO
            self._stats["admission_passthrough"] += 1
            return packet
        if bucket.queue.enqueue(packet):
            self._stats["admission_enqueued"] += 1
            self._enqueue_backlog(client_id, bucket)
        else:
            self._stats["admission_dropped"] += 1
        return None

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------

    def _release_tick(self) -> None:
        """One round-robin pass over every backlogged client."""
        for _ in range(len(self._rr)):
            client_id = self._rr.popleft()
            self._rr_members.discard(client_id)
            bucket = self._buckets.get(client_id)
            if bucket is None or bucket.queue.empty:
                continue  # departed or drained since enqueue
            if self._blocked_fn(client_id):
                # Backpressured: hold the whole queue, keep the slot.
                self._rr.append(client_id)
                self._rr_members.add(client_id)
                continue
            self._refill(bucket)
            while bucket.tokens_micro >= MICRO and not bucket.queue.empty:
                released = bucket.queue.dequeue()
                assert released is not None
                bucket.tokens_micro -= MICRO
                self._stats["admission_released"] += 1
                self._release_fn(client_id, released)
            if not bucket.queue.empty:
                self._rr.append(client_id)
                self._rr_members.add(client_id)
        if self._rr:
            self._release_timer.start(self._interval_us)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def forget_client(self, client_id: str) -> None:
        """Departure: free the bucket and anything still queued."""
        bucket = self._buckets.pop(client_id, None)
        if bucket is not None and not bucket.queue.empty:
            self._stats["admission_dropped"] += bucket.queue.flush()
        if client_id in self._rr_members:
            self._rr_members.discard(client_id)
            try:
                self._rr.remove(client_id)
            except ValueError:
                pass

    def backlog(self) -> int:
        """Total packets parked across every pacing queue."""
        return sum(len(b.queue) for b in self._buckets.values())

    def tracked_clients(self) -> int:
        """Bucket count — a bounded-memory probe for the soak guard."""
        return len(self._buckets)

    def halt(self) -> None:
        """Controller crash: pacing state is volatile and dies with it."""
        self._release_timer.stop()
        for bucket in self._buckets.values():
            bucket.queue.flush()
        self._buckets.clear()
        self._rr.clear()
        self._rr_members.clear()
