"""The WGTT controller (paper Figure 5, control plane).

One commodity Linux box on the Ethernet backhaul runs everything:

* **CSI ingestion** — every AP forwards a CSI report per overheard
  client frame; the controller computes ESNR and feeds the selector.
* **AP selection** — maximal median ESNR over the sliding window, with
  time hysteresis (§3.1.1).
* **Downlink fan-out** — each downlink datagram gets a 12-bit index and
  is tunneled to every AP in the client's fan-out set (§3.1.2).
* **Switching** — the stop/start/ack coordinator (§3.1.2).
* **Uplink de-duplication** — first copy wins, by (source, IP-ID)
  (§3.2.2–3.2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.channel.csi import CsiReport
from repro.core.assoc_sync import AssociationDirectory, StaInfo
from repro.core.config import WgttConfig
from repro.core.cyclic_queue import IndexAllocator
from repro.core.dedup import PacketDeduplicator
from repro.core.selection import ApSelector
from repro.core.switching import SwitchCoordinator, SwitchRecord
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.net.tunnel import tunnel_wire_size
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry


class ClientState:
    """Controller-side per-client bookkeeping."""

    def __init__(self, client_id: str, serving_ap: str, now_us: int):
        self.client_id = client_id
        self.serving_ap = serving_ap
        self.last_switch_us = now_us
        self.last_selection_check_us = -(10**9)


class WgttController:
    """Central coordinator of the AP array."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        rng: RngRegistry,
        config: Optional[WgttConfig] = None,
        controller_id: str = "controller",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config or WgttConfig()
        self.controller_id = controller_id
        self.selector = ApSelector(
            self._config.selection_window_us,
            metric=self._config.selection_metric,
        )
        self.coordinator = SwitchCoordinator(
            sim, backhaul, self._config, controller_id
        )
        self.coordinator.on_complete = self._switch_completed
        self.dedup = PacketDeduplicator()
        self.directory = AssociationDirectory()
        self._index_alloc = IndexAllocator(self._config.cyclic_queue_size)
        self._clients: Dict[str, ClientState] = {}
        self._ap_ids: Set[str] = set()

        #: Delivered (de-duplicated) uplink datagrams go here.
        self.on_uplink: Callable[[Packet], None] = lambda packet: None
        #: Fired whenever a client's serving AP changes (also at
        #: association). Scenario glue uses it, e.g. to retune the
        #: client's radio in the multi-channel ablation.
        self.on_serving_update: Callable[[str, str], None] = (
            lambda client_id, ap_id: None
        )
        #: (time_us, client, ap) — serving-AP timeline for Figure 14/15.
        self.serving_timeline: List[Tuple[int, str, str]] = []

        self.stats = {
            "downlink_accepted": 0,
            "downlink_unassociated": 0,
            "fanout_messages": 0,
            "csi_reports": 0,
            "switches_initiated": 0,
        }
        backhaul.register(controller_id, self._on_backhaul)

    # ------------------------------------------------------------------
    # topology / association
    # ------------------------------------------------------------------

    def add_ap(self, ap_id: str) -> None:
        self._ap_ids.add(ap_id)

    def ap_ids(self) -> Set[str]:
        return set(self._ap_ids)

    def client_state(self, client_id: str) -> Optional[ClientState]:
        return self._clients.get(client_id)

    def serving_ap(self, client_id: str) -> Optional[str]:
        state = self._clients.get(client_id)
        return state.serving_ap if state else None

    def register_association(self, info: StaInfo) -> None:
        """Install a client (from sta-sync replication or directly)."""
        self.directory.admit(info)
        if info.client not in self._clients:
            self._clients[info.client] = ClientState(
                info.client, info.first_ap, self._sim.now
            )
            self._publish_serving(info.client, info.first_ap)
            self._start_selection_loop(info.client)

    def _start_selection_loop(self, client_id: str) -> None:
        """Periodic AP-selection evaluation for one client.

        Running on a fixed period (rather than on CSI arrival) means
        every decision sees the complete window of reports, not just
        whichever AP's report happened to arrive first.
        """
        period = self._config.selection_period_us

        def tick():
            self._maybe_switch(client_id)
            timer.start(period)

        timer = Timer(self._sim, tick)
        timer.start(period)

    def _publish_serving(self, client_id: str, ap_id: str) -> None:
        self.serving_timeline.append((self._sim.now, client_id, ap_id))
        self.on_serving_update(client_id, ap_id)
        for ap in sorted(self._ap_ids):
            self._backhaul.send_control(
                self.controller_id, ap, "serving-update", (client_id, ap_id)
            )

    # ------------------------------------------------------------------
    # downlink
    # ------------------------------------------------------------------

    def accept_downlink(self, packet: Packet) -> None:
        """Entry point for server traffic headed to a client."""
        client_id = packet.dst
        state = self._clients.get(client_id)
        if state is None:
            self.stats["downlink_unassociated"] += 1
            return
        self.stats["downlink_accepted"] += 1
        index = self._index_alloc.allocate(client_id)
        if self._config.fanout_enabled:
            fanout = set(self.selector.candidates(client_id, self._sim.now))
            fanout.add(state.serving_ap)
        else:
            fanout = {state.serving_ap}
        fanout &= self._ap_ids
        wire = tunnel_wire_size(packet, downlink=True)
        for ap_id in sorted(fanout):
            self.stats["fanout_messages"] += 1
            self._backhaul.send(
                self.controller_id,
                ap_id,
                "data",
                (client_id, index, packet),
                size_bytes=wire,
            )

    # ------------------------------------------------------------------
    # backhaul dispatch
    # ------------------------------------------------------------------

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if kind == "csi":
            self._handle_csi(payload)
        elif kind == "uplink":
            self._handle_uplink(payload)
        elif kind == "ack":
            self.coordinator.on_ack(payload)
        elif kind == "sta-sync":
            self.register_association(payload)

    def _handle_csi(self, report: CsiReport) -> None:
        self.stats["csi_reports"] += 1
        self.selector.record(
            report.client_id, report.ap_id, report.time_us, report.esnr_db
        )

    def _handle_uplink(self, packet: Packet) -> None:
        if self.dedup.accept(packet):
            self.on_uplink(packet)

    # ------------------------------------------------------------------
    # selection / switching
    # ------------------------------------------------------------------

    def _maybe_switch(self, client_id: str) -> None:
        state = self._clients.get(client_id)
        if state is None:
            return
        now = self._sim.now
        if self.coordinator.busy(client_id):
            return
        if now - state.last_switch_us < self._config.time_hysteresis_us:
            return
        best = self.selector.best_ap(
            client_id,
            now,
            incumbent=state.serving_ap,
            margin_db=self._config.switch_margin_db,
        )
        if best is None or best == state.serving_ap or best not in self._ap_ids:
            return
        state.last_switch_us = now
        self.stats["switches_initiated"] += 1
        self.coordinator.initiate(client_id, state.serving_ap, best)

    def _switch_completed(self, record: SwitchRecord) -> None:
        state = self._clients.get(record.client)
        if state is not None:
            state.serving_ap = record.to_ap
        self._publish_serving(record.client, record.to_ap)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def switch_durations_ms(self) -> List[float]:
        return [d / 1000.0 for d in self.coordinator.completed_durations_us()]

    def switch_rate_per_second(self, duration_us: int) -> float:
        if duration_us <= 0:
            return 0.0
        return len(self.coordinator.history) / (duration_us / 1e6)
