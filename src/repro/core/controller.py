"""The WGTT controller (paper Figure 5, control plane).

One commodity Linux box on the Ethernet backhaul runs everything:

* **CSI ingestion** — every AP forwards a CSI report per overheard
  client frame; the controller computes ESNR and feeds the selector.
* **AP selection** — maximal median ESNR over the sliding window, with
  time hysteresis (§3.1.1).
* **Downlink fan-out** — each downlink datagram gets a 12-bit index and
  is tunneled to every AP in the client's fan-out set (§3.1.2).
* **Switching** — the stop/start/ack coordinator (§3.1.2).
* **Uplink de-duplication** — first copy wins, by (source, IP-ID)
  (§3.2.2–3.2.3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.channel.csi import CsiReport
from repro.core.assoc_sync import (
    STA_SYNC_WIRE_BYTES,
    AssociationDirectory,
    StaInfo,
)
from repro.core.admission import AdmissionPacer
from repro.core.config import WgttConfig
from repro.core.cyclic_queue import IndexAllocator
from repro.core.dedup import PacketDeduplicator
from repro.core.liveness import ApLivenessTracker
from repro.core.selection import ApSelector
from repro.core.switching import (
    OUTCOME_FAILED_OVER,
    SwitchCoordinator,
    SwitchRecord,
)
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.net.tunnel import tunnel_wire_size
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry

#: serving-claim is a cold-restart resync mechanism: claims arrive
#: within a backhaul round trip of the controller's ctrl-hello.  A
#: claim landing long after the current epoch began can only be a
#: replayed capture from an *earlier* resync — accepting it would flip
#: a client onto whatever AP served it back then.
SERVING_CLAIM_WINDOW_US = 2_000_000

#: Departed clients remembered for sta-sync replay rejection (matches
#: the AP-side departed FIFO bound).
DEPARTED_MEMORY_CAP = 4096


class ClientState:
    """Controller-side per-client bookkeeping."""

    def __init__(self, client_id: str, serving_ap: str, now_us: int):
        self.client_id = client_id
        self.serving_ap = serving_ap
        self.last_switch_us = now_us
        self.last_selection_check_us = -(10**9)
        #: Set while the client has no live AP to fail over to (its
        #: serving AP is dead and no live AP has heard it recently).
        self.degraded_since: Optional[int] = None
        #: True while a deferred failover retry is scheduled.
        self.failover_retry_pending = False
        #: True while the serving AP signals cyclic-queue backpressure:
        #: ``accept_downlink`` paces (drops, explicitly counted) until
        #: the AP clears the signal.
        self.paced = False

    # -- checkpoint support -------------------------------------------

    def to_state(self) -> dict:
        return {
            "client_id": self.client_id,
            "serving_ap": self.serving_ap,
            "last_switch_us": self.last_switch_us,
            "last_selection_check_us": self.last_selection_check_us,
            "degraded_since": self.degraded_since,
            "failover_retry_pending": self.failover_retry_pending,
            "paced": self.paced,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ClientState":
        out = cls(
            state["client_id"], state["serving_ap"], state["last_switch_us"]
        )
        out.last_selection_check_us = state["last_selection_check_us"]
        out.degraded_since = state["degraded_since"]
        out.failover_retry_pending = state["failover_retry_pending"]
        out.paced = state["paced"]
        return out


class WgttController:
    """Central coordinator of the AP array."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        rng: RngRegistry,
        config: Optional[WgttConfig] = None,
        controller_id: str = "controller",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config or WgttConfig()
        self.controller_id = controller_id
        self.selector = ApSelector(
            self._config.selection_window_us,
            metric=self._config.selection_metric,
        )
        self.coordinator = SwitchCoordinator(
            sim, backhaul, self._config, controller_id
        )
        self.coordinator.on_complete = self._switch_completed
        self.coordinator.on_abort = self._switch_aborted
        self.liveness = ApLivenessTracker(
            sim,
            self._config.heartbeat_interval_us,
            self._config.heartbeat_miss_limit,
        )
        self.liveness.on_down = self._ap_down
        self.liveness.on_up = self._ap_up
        self.dedup = PacketDeduplicator()
        self.directory = AssociationDirectory()
        self._index_alloc = IndexAllocator(self._config.cyclic_queue_size)
        self._clients: Dict[str, ClientState] = {}
        #: Per-client periodic selection timers (tracked so crash stops
        #: them and checkpoint/restore re-arms them in phase).
        self._selection_timers: Dict[str, Timer] = {}
        #: Per-client deferred emergency-failover retry timers.
        self._retry_timers: Dict[str, Timer] = {}
        self._ap_ids: Set[str] = set()
        #: False while crashed (fault injection): timers stopped, the
        #: backhaul endpoint dark, volatile protocol state lost.
        self.alive = True  # volatile-ok: liveness is a property of the process, not the state — a restored controller is alive by construction
        #: "primary" | "standby" | "active" (a promoted standby).
        self.role = "primary"
        #: HA peer (warm standby) backhaul id; when set, serving
        #: updates are mirrored to it (part of the standby's warm feed).
        self.ha_peer: Optional[str] = None
        #: Fired after :meth:`restart` finishes (HA cluster hook).
        self.on_restart: Callable[[], None] = lambda: None
        #: Whether a cold restart announces itself with "ctrl-hello"
        #: (the HA cluster clears this on a demoted ex-primary).
        self.hello_on_restart = True
        self._ctrl_heartbeat_timer = Timer(
            self._sim, self._ctrl_heartbeat_tick
        )
        #: APs the liveness tracker has declared DEAD: excluded from
        #: selection, fan-out, and switch targets until they hello back.
        self._dead_aps: Set[str] = set()
        #: client -> ap -> (time_us, esnr_db): the most recent CSI heard
        #: per link, never pruned (bounded by #clients × #APs).  Only
        #: the emergency-failover path reads this — by the time a crash
        #: is *detected* the 10 ms selection window has expired, but
        #: the neighbours that heard the client ~100 ms ago are still
        #: by far the best guess for where it is.
        self._last_heard: Dict[str, Dict[str, Tuple[int, float]]] = {}
        #: serving-claim(client) received before the client's sta-sync
        #: (cold-restart resync): applied at registration time.
        self._pending_claims: Dict[str, str] = {}
        #: Controller epoch: when this incarnation's authority began
        #: (construction, restart, or standby promotion).  Serving
        #: generations are ``(epoch_us, seq)`` — lexicographic order
        #: makes every post-restart update dominate every pre-restart
        #: one without any cross-incarnation counter handoff.
        self.epoch_us = sim.now  # volatile-ok: per-incarnation authority; a promoted standby must mint a fresh, strictly-later epoch or replays from the dead primary could win
        self._serving_seq = 0  # volatile-ok: sequence within this incarnation's epoch; restarts at 0 under the fresh epoch by design
        #: client -> departure time: recently departed clients, for
        #: rejecting replayed sta-syncs that would resurrect them
        #: (bounded FIFO, mirroring the AP-side departed memory).
        self._departed_at: "OrderedDict[str, int]" = OrderedDict()

        #: Delivered (de-duplicated) uplink datagrams go here.
        self.on_uplink: Callable[[Packet], None] = lambda packet: None
        #: Fired whenever a client's serving AP changes (also at
        #: association). Scenario glue uses it, e.g. to retune the
        #: client's radio in the multi-channel ablation.
        self.on_serving_update: Callable[[str, str], None] = (
            lambda client_id, ap_id: None
        )
        #: Ownership predicate installed by the shard manager.  When
        #: set, uplinks from clients this controller does not own are
        #: rejected *before* de-duplication: near a shard boundary the
        #: neighbour shard's APs decode (and forward) the same frames,
        #: and without the gate both shards would deliver them upstream.
        #: None (the default) disables the check entirely.
        self.owns_client: Optional[Callable[[str], bool]] = None
        #: Backhaul kinds the dispatch table does not recognise land
        #: here (shard glue: the inter-shard handoff protocol rides the
        #: same controller endpoint without new controller state).
        self.on_unhandled: Callable[[str, str, object], None] = (
            lambda src, kind, payload: None
        )
        #: (time_us, client, ap) — serving-AP timeline for Figure 14/15.
        self.serving_timeline: List[Tuple[int, str, str]] = []  # volatile-ok: observability export, never read by protocol logic; crash docs promise it survives like an external metrics pipeline

        self.stats = {  # volatile-ok: observability counters, same external-pipeline contract as serving_timeline
            "downlink_accepted": 0,
            "downlink_unassociated": 0,
            "fanout_messages": 0,
            "csi_reports": 0,
            "switches_initiated": 0,
            "heartbeats": 0,
            "aps_declared_dead": 0,
            "aps_recovered": 0,
            "ap_resyncs": 0,
            "failovers_initiated": 0,
            "failover_no_candidate": 0,
            "csi_dropped_dead_ap": 0,
            "downlink_paced": 0,
            "backpressure_on": 0,
            "backpressure_off": 0,
            "cursor_fast_forwards": 0,
            "controller_crashes": 0,
            "controller_restarts": 0,
            "clients_departed": 0,
            "ctrl_heartbeats_sent": 0,
            "serving_claims": 0,
            "admission_passthrough": 0,
            "admission_enqueued": 0,
            "admission_released": 0,
            "admission_dropped": 0,
            # Adversary-facing rejection counters: zero on every
            # healthy run (metrics export filters them while zero so
            # adversary-free fingerprints are unchanged).
            "stale_sta_syncs": 0,
            "stale_serving_claims": 0,
            # Sharded deployments only (lazily exported like the stale
            # counters): uplinks rejected by the ownership gate.
            "uplink_unowned": 0,
        }
        #: Per-client fair pacing (soak extension).  None unless
        #: ``admission_enabled`` — the default ingress path never
        #: consults it, keeping runs bit-identical to the pre-admission
        #: simulator.
        self._pacer: Optional[AdmissionPacer] = None
        if self._config.admission_enabled:
            self._pacer = AdmissionPacer(
                sim,
                self._config,
                self._release_downlink,
                self._pacing_blocked,
                self.stats,
            )
        backhaul.register(controller_id, self._on_backhaul)

    # ------------------------------------------------------------------
    # topology / association
    # ------------------------------------------------------------------

    def add_ap(self, ap_id: str) -> None:
        self._ap_ids.add(ap_id)

    def ap_ids(self) -> Set[str]:
        return set(self._ap_ids)

    def live_aps(self) -> Set[str]:
        return self._ap_ids - self._dead_aps

    def dead_aps(self) -> Set[str]:
        return set(self._dead_aps)

    def client_state(self, client_id: str) -> Optional[ClientState]:
        return self._clients.get(client_id)

    def serving_ap(self, client_id: str) -> Optional[str]:
        state = self._clients.get(client_id)
        return state.serving_ap if state else None

    def register_association(self, info: StaInfo) -> None:
        """Install a client (from sta-sync replication or directly)."""
        departed_at = self._departed_at.get(info.client)
        if departed_at is not None:
            if info.associated_at_us <= departed_at:
                # A replayed sta-sync from *before* the departure:
                # admitting it would resurrect the client — recreating
                # its selection timer and serving entry with no radio
                # behind them, leaking both forever under churn.
                self.stats["stale_sta_syncs"] += 1
                tracer = self._sim.obs.trace
                if tracer.active:
                    tracer.emit(
                        "controller",
                        "stale-sta-sync",
                        track="assoc",
                        detail=True,
                        client=info.client,
                    )
                return
            # A genuine re-admission (fresh association after the
            # departure): forget the departure.
            del self._departed_at[info.client]
        self.directory.admit(info)
        if info.client not in self._clients:
            serving = self._pending_claims.pop(info.client, info.first_ap)
            self._clients[info.client] = ClientState(
                info.client, serving, self._sim.now
            )
            self._publish_serving(info.client, serving)
            self._start_selection_loop(info.client)

    def deregister_client(self, client_id: str) -> None:
        """Client departure: free every per-client resource.

        Closes the unbounded-growth holes a transit system would
        otherwise accumulate over millions of one-ride commuters — the
        :class:`IndexAllocator` cursor, the selection windows, the
        last-heard cache, the selection/retry timers — and tells every
        AP to drop the client's cyclic queue and serving duty.
        """
        state = self._clients.pop(client_id, None)
        if state is None:
            return
        self.stats["clients_departed"] += 1
        self._departed_at[client_id] = self._sim.now
        if len(self._departed_at) > DEPARTED_MEMORY_CAP:
            self._departed_at.popitem(last=False)
        timer = self._selection_timers.pop(client_id, None)
        if timer is not None:
            timer.stop()
        retry = self._retry_timers.pop(client_id, None)
        if retry is not None:
            retry.stop()
        if self.coordinator.busy(client_id):
            self.coordinator.abort(client_id, reason="client departed")
        self.directory.remove(client_id)
        self.selector.forget_client(client_id)
        self._index_alloc.forget_client(client_id)
        self._last_heard.pop(client_id, None)
        self._pending_claims.pop(client_id, None)
        if self._pacer is not None:
            self._pacer.forget_client(client_id)
        for ap in sorted(self._ap_ids):
            self._backhaul.send_control(
                self.controller_id, ap, "client-departed", client_id
            )

    def _start_selection_loop(
        self, client_id: str, first_deadline_us: Optional[int] = None
    ) -> None:
        """Periodic AP-selection evaluation for one client.

        Running on a fixed period (rather than on CSI arrival) means
        every decision sees the complete window of reports, not just
        whichever AP's report happened to arrive first.  Restore passes
        ``first_deadline_us`` so a restored controller's loop stays in
        phase with the original's.
        """
        period = self._config.selection_period_us

        def tick():
            self._maybe_switch(client_id)
            timer.start(period)

        timer = Timer(self._sim, tick)
        self._selection_timers[client_id] = timer
        if first_deadline_us is None:
            timer.start(period)
        else:
            timer.start_at(first_deadline_us)

    def _next_serving_gen(self) -> Tuple[int, int]:
        """Generation tag for one serving-update publication.

        ``(epoch_us, seq)`` compares lexicographically: within an
        incarnation ``seq`` orders updates exactly; across a restart or
        promotion the fresh (strictly later) epoch dominates every tag
        the previous incarnation ever issued.  Receivers drop any
        update whose tag is not strictly newer than the one they hold,
        which makes duplicated or replayed serving-updates harmless.
        """
        self._serving_seq += 1
        return (self.epoch_us, self._serving_seq)

    def _publish_serving(self, client_id: str, ap_id: str) -> None:
        gen = self._next_serving_gen()
        self.serving_timeline.append((self._sim.now, client_id, ap_id))
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "controller",
                "serving-update",
                track="serving",
                client=client_id,
                ap=ap_id,
                gen=gen,
            )
        self.on_serving_update(client_id, ap_id)
        targets = sorted(self._ap_ids)
        if self.ha_peer is not None:
            # Mirror to the warm standby: serving updates are part of
            # the event feed that keeps it current between checkpoints.
            targets.append(self.ha_peer)
        for ap in targets:
            self._backhaul.send_control(
                self.controller_id,
                ap,
                "serving-update",
                (client_id, ap_id, gen),
            )

    # ------------------------------------------------------------------
    # downlink
    # ------------------------------------------------------------------

    def accept_downlink(self, packet: Packet) -> None:
        """Entry point for server traffic headed to a client."""
        if not self.alive:
            return  # a crashed controller accepts nothing
        client_id = packet.dst
        state = self._clients.get(client_id)
        if state is None:
            self.stats["downlink_unassociated"] += 1
            return
        if self._pacer is not None:
            # Admission control on: token-bucket shaping replaces the
            # paced-drop below.  Over-rate and backpressured traffic
            # parks in the pacing queue; the round-robin release timer
            # re-enters via _release_downlink when it conforms.
            released = self._pacer.admit(client_id, packet)
            if released is None:
                return
            self._fanout(client_id, state, released)
            return
        if state.paced:
            # The serving AP's cyclic queue is near its wrap point:
            # admitting more fan-out would race the 12-bit index space
            # into the undelivered backlog (silent overwrites).  Drop
            # here instead — explicit, counted, and recoverable by the
            # transport — until the AP clears the signal.
            self.stats["downlink_paced"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "controller",
                    "downlink-paced",
                    track="downlink",
                    detail=True,
                    client=client_id,
                )
            return
        self._fanout(client_id, state, packet)

    def _release_downlink(self, client_id: str, packet: Packet) -> None:
        """Pacer release callback: fan out a formerly parked packet."""
        if not self.alive:
            return
        state = self._clients.get(client_id)
        if state is None:
            self.stats["downlink_unassociated"] += 1
            return
        self._fanout(client_id, state, packet)

    def _pacing_blocked(self, client_id: str) -> bool:
        """Pacer hold predicate: serving-AP backpressure engaged."""
        state = self._clients.get(client_id)
        return state is None or state.paced

    def _fanout(
        self, client_id: str, state: ClientState, packet: Packet
    ) -> None:
        self.stats["downlink_accepted"] += 1
        index = self._index_alloc.allocate(client_id)
        if self._config.fanout_enabled:
            fanout = set(self.selector.candidates(client_id, self._sim.now))
            fanout.add(state.serving_ap)
        else:
            fanout = {state.serving_ap}
        fanout &= self._ap_ids
        if self._dead_aps:
            # Dead APs receive nothing: their tunnel endpoint is gone,
            # and the bytes would only burn backhaul capacity.
            fanout -= self._dead_aps
        wire = tunnel_wire_size(packet, downlink=True)
        for ap_id in sorted(fanout):
            self.stats["fanout_messages"] += 1
            self._backhaul.send(
                self.controller_id,
                ap_id,
                "data",
                (client_id, index, packet),
                size_bytes=wire,
            )

    # ------------------------------------------------------------------
    # backhaul dispatch
    # ------------------------------------------------------------------

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if not self.alive:
            return  # backhaul already drops these; defense in depth
        if kind == "csi":
            self._handle_csi(payload)
        elif kind == "uplink":
            self._handle_uplink(payload)
        elif kind == "ack":
            self.coordinator.on_ack(payload)
        elif kind == "sta-sync":
            self.register_association(payload)
        elif kind == "heartbeat":
            self.stats["heartbeats"] += 1
            self.liveness.beat(src)
        elif kind == "ap-hello":
            self._ap_rejoined(src)
        elif kind == "backpressure":
            self._handle_backpressure(src, payload)
        elif kind == "serving-claim":
            self._handle_serving_claim(src, payload)
        elif kind == "edge-report":
            self._handle_edge_report(src, payload)
        else:
            self.on_unhandled(src, kind, payload)

    def _handle_edge_report(self, src: str, payload: object) -> None:
        """Re-home cursor resync: an AP's per-client cyclic write edges.

        A promoted standby restored its :class:`IndexAllocator` from a
        checkpoint up to one shipping interval stale; re-using indices
        the dead primary already allocated would overwrite undelivered
        cyclic-queue slots.  Each re-homing AP reports its write edges
        and the cursors fast-forward (never backwards) to cover them.
        """
        for client_id, edge in sorted(payload.items()):
            if self._index_alloc.fast_forward(client_id, int(edge)):
                self.stats["cursor_fast_forwards"] += 1

    def _handle_backpressure(self, src: str, payload: object) -> None:
        """Serving-AP overload signal: pace/resume one client's fan-out."""
        client_id, engaged = payload
        state = self._clients.get(client_id)
        if state is None or src != state.serving_ap:
            return  # stale signal from a former serving AP
        if engaged and not state.paced:
            state.paced = True
            self.stats["backpressure_on"] += 1
        elif not engaged and state.paced:
            state.paced = False
            self.stats["backpressure_off"] += 1

    def _handle_serving_claim(self, src: str, client_id: str) -> None:
        """Cold-restart resync: the AP actually serving ``client_id``
        corrects the restarted controller's first-AP guess."""
        if self._sim.now - self.epoch_us > SERVING_CLAIM_WINDOW_US:
            # Claims only legitimately arrive within a backhaul round
            # trip of our own ctrl-hello; this one is a stale replay
            # from an earlier resync and would flip the client onto
            # whatever AP served it back then.
            self.stats["stale_serving_claims"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "controller",
                    "stale-serving-claim",
                    track="serving",
                    detail=True,
                    client=client_id,
                    ap=src,
                )
            return
        self.stats["serving_claims"] += 1
        state = self._clients.get(client_id)
        if state is None:
            self._pending_claims[client_id] = src
            return
        if state.serving_ap != src and src in self._ap_ids:
            state.serving_ap = src
            self._publish_serving(client_id, src)

    def _handle_csi(self, report: CsiReport) -> None:
        if report.ap_id in self._dead_aps:
            # In-flight report from an AP declared dead moments ago:
            # admitting it would resurrect the AP in the selector.
            self.stats["csi_dropped_dead_ap"] += 1
            return
        self.stats["csi_reports"] += 1
        self.selector.record(
            report.client_id, report.ap_id, report.time_us, report.esnr_db
        )
        self._last_heard.setdefault(report.client_id, {})[report.ap_id] = (
            report.time_us,
            report.esnr_db,
        )

    def _handle_uplink(self, packet: Packet) -> None:
        if self.owns_client is not None and not self.owns_client(
            packet.src
        ):
            self.stats["uplink_unowned"] += 1
            return
        if self.dedup.accept(packet):
            self.on_uplink(packet)

    # ------------------------------------------------------------------
    # selection / switching
    # ------------------------------------------------------------------

    def _maybe_switch(self, client_id: str) -> None:
        state = self._clients.get(client_id)
        if state is None:
            return
        now = self._sim.now
        if self.coordinator.busy(client_id):
            return
        if state.serving_ap in self._dead_aps:
            # The emergency-failover path owns this client until it
            # lands on a live AP; regular hysteresis-gated selection
            # stays out of the way.
            return
        if now - state.last_switch_us < self._config.time_hysteresis_us:
            return
        best = self.selector.best_ap(
            client_id,
            now,
            incumbent=state.serving_ap,
            margin_db=self._config.switch_margin_db,
        )
        if best is None or best == state.serving_ap or best not in self._ap_ids:
            return
        if best in self._dead_aps:
            return  # never switch toward a dead AP
        state.last_switch_us = now
        self.stats["switches_initiated"] += 1
        self.coordinator.initiate(client_id, state.serving_ap, best)

    def _switch_completed(self, record: SwitchRecord) -> None:
        state = self._clients.get(record.client)
        if state is not None:
            state.serving_ap = record.to_ap
            state.degraded_since = None
            # Pacing was the *old* serving AP's signal; the new one's
            # queue state is unknown (and its backlog was just advanced
            # past), so resume and let it re-signal if needed.
            state.paced = False
        self._publish_serving(record.client, record.to_ap)

    def _switch_aborted(self, record: SwitchRecord) -> None:
        """A handshake died (retry cap, dead target, explicit abort).

        If the client's serving AP is itself dead, the abort must not
        strand it — schedule another failover attempt (the selector may
        name a different live target by then)."""
        state = self._clients.get(record.client)
        if state is None:
            return
        if state.serving_ap in self._dead_aps:
            self._schedule_failover_retry(record.client)

    # ------------------------------------------------------------------
    # AP liveness and emergency failover
    # ------------------------------------------------------------------

    def _ap_down(self, ap_id: str) -> None:
        """Liveness declared an AP DEAD: quarantine it everywhere and
        evacuate every client it was serving."""
        if ap_id in self._dead_aps:
            return
        self._dead_aps.add(ap_id)
        self.stats["aps_declared_dead"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit("controller", "ap-dead", track="liveness", ap=ap_id)
        # Its CSI history must stop competing in selection immediately
        # (and its windows are freed — the unbounded-growth fix).
        self.selector.forget_ap(ap_id)
        # Any handshake involving the dead AP can never finish.
        self.coordinator.abort_for_ap(ap_id)
        for client_id in sorted(self._clients):
            if self._clients[client_id].serving_ap == ap_id:
                self._emergency_failover(client_id, ap_id)

    def _ap_up(self, ap_id: str) -> None:
        if ap_id in self._dead_aps:
            self._dead_aps.discard(ap_id)
            self.stats["aps_recovered"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "controller", "ap-recovered", track="liveness", ap=ap_id
                )

    def _ap_rejoined(self, ap_id: str) -> None:
        """ap-hello: a (re)started AP announces itself.

        The controller replays the association directory (the paper's
        hostapd sta-sync, §4.3) and the current serving map so the AP
        can overhear, measure CSI, and accept fan-out for every
        admitted client again."""
        if ap_id not in self._ap_ids:
            self.add_ap(ap_id)
        self.liveness.mark_alive(ap_id)
        self.stats["ap_resyncs"] += 1
        for client_id in sorted(self.directory.clients()):
            self._backhaul.send(
                self.controller_id,
                ap_id,
                "sta-sync",
                self.directory.get(client_id),
                size_bytes=STA_SYNC_WIRE_BYTES,
            )
            state = self._clients.get(client_id)
            if state is not None:
                self._backhaul.send_control(
                    self.controller_id,
                    ap_id,
                    "serving-update",
                    (client_id, state.serving_ap, self._next_serving_gen()),
                )

    def _emergency_failover(self, client_id: str, dead_ap: str) -> None:
        """The serving AP died: restart the client at the next-best
        live AP *now*, bypassing time hysteresis.

        The paper's own fan-out makes this recovery nearly free — the
        target AP's cyclic queue already holds the client's downlink
        backlog, so a single one-hop handshake restarts the flow."""
        state = self._clients.get(client_id)
        if state is None or state.serving_ap != dead_ap:
            return
        if self.coordinator.busy(client_id):
            # A regular switch is mid-flight to/from the dead AP (or
            # elsewhere); tear it down — the slot is needed now.
            self.coordinator.abort(
                client_id, reason=f"serving AP {dead_ap} died"
            )
        now = self._sim.now
        target = self.selector.best_ap(client_id, now, incumbent=None)
        if target is not None and (
            target in self._dead_aps
            or target not in self._ap_ids
            or target == dead_ap
        ):
            live = [
                ap
                for ap in self.selector.candidates(client_id, now)
                if ap in self._ap_ids and ap not in self._dead_aps
            ]
            target = live[0] if live else None
        if target is None:
            target = self._last_heard_live_ap(client_id, now)
        if target is None:
            # Graceful degradation: no live AP has heard the client
            # recently.  Mark it degraded and keep retrying — the
            # client's keepalives will reach somebody as it moves.
            self.stats["failover_no_candidate"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "controller",
                    "failover-no-candidate",
                    track=f"switch/{client_id}",
                    client=client_id,
                    dead_ap=dead_ap,
                )
            if state.degraded_since is None:
                state.degraded_since = now
            self._schedule_failover_retry(client_id)
            return
        self.stats["failovers_initiated"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "controller",
                "failover-initiated",
                track=f"switch/{client_id}",
                client=client_id,
                dead_ap=dead_ap,
                target=target,
            )
        state.last_switch_us = now
        self.coordinator.initiate_failover(client_id, dead_ap, target)

    def _last_heard_live_ap(
        self, client_id: str, now_us: int
    ) -> Optional[str]:
        """Best live AP from the last-heard ESNR cache (emergency only).

        The regular selection window (10 ms) has usually expired by the
        time a crash is *detected* (~80 ms of heartbeat lag), so the
        emergency path widens the horizon to ``failover_lookback_us``
        and picks the live AP that most recently heard the client well.
        Strongest ESNR wins; ties break on ap_id for determinism.
        """
        heard = self._last_heard.get(client_id)
        if not heard:
            return None
        horizon = now_us - self._config.failover_lookback_us
        best: Optional[Tuple[float, str]] = None
        for ap_id in sorted(heard):
            if ap_id in self._dead_aps or ap_id not in self._ap_ids:
                continue
            time_us, esnr_db = heard[ap_id]
            if time_us < horizon:
                continue
            if best is None or esnr_db > best[0]:
                best = (esnr_db, ap_id)
        return best[1] if best else None

    def _schedule_failover_retry(
        self, client_id: str, deadline_us: Optional[int] = None
    ) -> None:
        state = self._clients.get(client_id)
        if state is None or (
            state.failover_retry_pending and deadline_us is None
        ):
            return
        state.failover_retry_pending = True
        timer = Timer(
            self._sim, lambda: self._failover_retry_fired(client_id)
        )
        self._retry_timers[client_id] = timer
        if deadline_us is None:
            timer.start(self._config.selection_period_us)
        else:
            timer.start_at(deadline_us)

    def _failover_retry_fired(self, client_id: str) -> None:
        self._retry_timers.pop(client_id, None)
        if not self.alive:
            return
        current = self._clients.get(client_id)
        if current is None:
            return
        current.failover_retry_pending = False
        if (
            current.serving_ap in self._dead_aps
            and not self.coordinator.busy(client_id)
        ):
            self._emergency_failover(client_id, current.serving_ap)

    # ------------------------------------------------------------------
    # controller crash / restart / HA plumbing
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fault injection: the controller process dies.

        Every timer stops (a dead box retransmits nothing), the backhaul
        endpoint goes dark, and all **volatile** protocol state is lost —
        exactly what a process kill destroys: selection windows, client
        table, index cursors, in-flight handshakes, the dedup window, the
        liveness table.  Durable observability (``stats``,
        ``serving_timeline``, switch ``history``) survives, as a real
        deployment's external metrics pipeline would.
        """
        if not self.alive:
            return
        self.alive = False
        self.stats["controller_crashes"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "controller", "ctrl-crash", track="ha", node=self.controller_id
            )
        for timer in self._selection_timers.values():
            timer.stop()
        self._selection_timers.clear()
        for timer in self._retry_timers.values():
            timer.stop()
        self._retry_timers.clear()
        self._ctrl_heartbeat_timer.stop()
        if self._pacer is not None:
            self._pacer.halt()
        self.coordinator.halt()
        self.coordinator.restore(
            {
                "next_switch_id": 1,
                "abandoned": self.coordinator.abandoned,
                "aborted": self.coordinator.aborted,
                "pending": {},
                "history": [
                    r.to_state() for r in self.coordinator.history
                ],
            }
        )
        self.liveness.stop()
        self.liveness.restore(
            {
                "last_beat": {},
                "dead": [],
                "events": [list(e) for e in self.liveness.events],
                "check_deadline_us": None,
            }
        )
        self.selector.restore({})
        self.dedup.restore(
            {
                "capacity": self.dedup.snapshot()["capacity"],
                "keys": [],
                "accepted": self.dedup.accepted,
                "duplicates": self.dedup.duplicates,
            }
        )
        self.directory = AssociationDirectory()
        self._index_alloc = IndexAllocator(self._config.cyclic_queue_size)
        self._clients.clear()
        self._dead_aps.clear()
        self._last_heard.clear()
        self._pending_claims.clear()
        self._departed_at.clear()
        self._backhaul.set_node_down(self.controller_id, True)

    def restart(self) -> None:
        """Cold restart after :meth:`crash` — empty-state boot.

        The backhaul endpoint comes back and (unless this node was
        demoted to standby by the HA cluster) the controller broadcasts
        ``ctrl-hello`` so every AP replays its association table and
        claims the clients it is actually serving (§4.3 sta-sync, plus
        the serving-claim resync this repo adds).
        """
        if self.alive:
            return
        self.alive = True
        self.stats["controller_restarts"] += 1
        # New incarnation, new authority: every serving generation and
        # every ctrl-hello issued from here on dominates the previous
        # incarnation's, so replays of pre-crash traffic can never win.
        self.epoch_us = self._sim.now
        self._serving_seq = 0
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "controller", "ctrl-restart", track="ha", node=self.controller_id
            )
        self._backhaul.set_node_down(self.controller_id, False)
        if self.hello_on_restart:
            for ap in sorted(self._ap_ids):
                self._backhaul.send_control(
                    self.controller_id, ap, "ctrl-hello", self.epoch_us
                )
        self.on_restart()

    def start_ctrl_heartbeats(self) -> None:
        """Begin periodic controller→AP heartbeats (HA mode only)."""
        interval = self._config.controller_heartbeat_interval_us
        if interval <= 0 or self._ctrl_heartbeat_timer.armed:
            return
        self._ctrl_heartbeat_timer.start(interval)

    def stop_ctrl_heartbeats(self) -> None:
        self._ctrl_heartbeat_timer.stop()

    def _ctrl_heartbeat_tick(self) -> None:
        if not self.alive:
            return
        self.stats["ctrl_heartbeats_sent"] += 1
        for ap in sorted(self._ap_ids):
            self._backhaul.send_control(
                self.controller_id, ap, "ctrl-heartbeat", None
            )
        if self.ha_peer is not None:
            self._backhaul.send_control(
                self.controller_id, self.ha_peer, "ctrl-heartbeat", None
            )
        self._ctrl_heartbeat_timer.start(
            self._config.controller_heartbeat_interval_us
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def switch_durations_ms(self) -> List[float]:
        return [d / 1000.0 for d in self.coordinator.completed_durations_us()]

    def switch_rate_per_second(self, duration_us: int) -> float:
        if duration_us <= 0:
            return 0.0
        return len(self.coordinator.history) / (duration_us / 1e6)

    def failover_records(self) -> List[SwitchRecord]:
        """Completed emergency failovers, in completion order."""
        return [
            r
            for r in self.coordinator.history
            if r.outcome == OUTCOME_FAILED_OVER
        ]

    def failover_latencies_ms(self) -> List[float]:
        """Handshake time of each completed failover (controller-side:
        initiation → ack; detection lag is accounted separately by the
        chaos audit, which joins against the injected crash times)."""
        return [
            r.duration_us / 1000.0
            for r in self.failover_records()
            if r.duration_us is not None
        ]
