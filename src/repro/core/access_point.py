"""The WGTT access point (paper §3, §4.2).

A thin wrapper around a :class:`~repro.mac.WifiDevice` that adds every
AP-side WGTT behaviour:

* per-client cyclic queues fed by the controller's downlink fan-out,
* the stop / start(c, k) sides of the switching protocol, with the
  kernel-ioctl index query and driver-queue filtering the paper
  implements in ``ieee80211_ops_tx()``,
* CSI measurement on every overheard client frame, forwarded to the
  controller,
* uplink packet forwarding (every decoded client datagram is tunneled
  to the controller, which de-duplicates),
* block-ACK forwarding: overheard BAs answering another AP's aggregate
  are shipped to the serving AP; incoming forwarded BAs are applied
  after the seen-before check,
* association-state replication (hostapd sta_info sync).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

import numpy as np

from repro.channel.csi import CsiReport
from repro.core.assoc_sync import STA_SYNC_WIRE_BYTES, AssociationDirectory, StaInfo
from repro.core.ba_forwarding import (
    BA_FORWARD_WIRE_BYTES,
    BaSeenCache,
    ForwardedBa,
)
from repro.core.config import WgttConfig
from repro.core.cyclic_queue import CyclicQueue
from repro.core.switching import AckMsg, FailoverMsg, StartMsg, StopMsg
from repro.mac.frames import BlockAckFrame
from repro.mac.medium import WirelessMedium
from repro.mac.wifi_device import WifiDevice
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.net.tunnel import tunnel_wire_size
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry

#: Wire size of one heartbeat (ap id + sequence + uptime).
HEARTBEAT_WIRE_BYTES = 32


class WgttAccessPoint:
    """One roadside WGTT AP."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        backhaul: EthernetBackhaul,
        rng: RngRegistry,
        ap_id: str,
        config: Optional[WgttConfig] = None,
        controller_id: str = "controller",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config or WgttConfig()
        self.ap_id = ap_id
        self._controller_id = controller_id
        self._rng = rng.stream(f"wgtt-ap/{ap_id}")

        self.device = WifiDevice(
            sim,
            medium,
            rng,
            ap_id,
            role="ap",
            addresses={self._config.bssid},
            monitor=True,
            response_jitter_us=self._config.ba_response_jitter_us,
        )
        self.device.ta_address = self._config.bssid
        self.device.on_refill_needed = self._refill
        self.device.on_overheard_block_ack = self._overheard_ba
        self.device.on_ba_processed = self._local_ba_processed
        self.device.on_csi = self._csi_measured
        self.device.on_packet = self._uplink_received
        self.device.on_mgmt = self._mgmt_received

        self.directory = AssociationDirectory()
        self._cyclic: Dict[str, CyclicQueue] = {}
        self._serving: Set[str] = set()
        #: Controller-published map of which AP serves each client.
        self._serving_view: Dict[str, str] = {}
        #: client -> highest serving generation applied; updates whose
        #: ``(epoch_us, seq)`` tag is not strictly newer are dropped,
        #: so duplicated or replayed serving-updates cannot roll the
        #: view back to a stale AP.
        self._serving_gen_view: Dict[str, Tuple[int, int]] = {}
        #: client -> highest switch_id handled (stop, start, or
        #: failover).  Replays from an *older* handshake are dropped;
        #: retransmissions of the current handshake (equal id) re-run
        #: the handler, which is the protocol's own recovery path.
        self._switch_handled: Dict[str, int] = {}
        #: Epoch of the newest controller authority acknowledged
        #: (ctrl-takeover / ctrl-hello payload).  A replayed older
        #: announcement must not re-home this AP to a dead controller.
        self._ctrl_epoch = -1
        self._ba_seen = BaSeenCache()
        self._refilling = False

        #: False while crashed (fault injection): no radio, no backhaul,
        #: volatile state gone.
        self.alive = True
        #: Fault-injection switch: measured CSI is silently discarded
        #: (models a wedged CSI extraction path on otherwise-healthy
        #: hardware — the controller must survive the staleness).
        self.csi_suppressed = False
        self._heartbeat_seq = 0
        #: Controller-liveness watch (HA mode).  Armed lazily on the
        #: first "ctrl-heartbeat" — a controller that never heartbeats
        #: (the non-HA configurations) costs nothing and is never
        #: declared down.
        self._ctrl_last_beat: Optional[int] = None
        self._ctrl_watch_timer = Timer(self._sim, self._ctrl_watch_tick)
        #: True while the controller is silent: uplink/CSI forwards are
        #: buffered (bounded, drop-oldest) instead of poured into a
        #: dead socket, and flushed on re-home.
        self._holding = False
        self._hold_buffer: Deque[Tuple[str, object, int]] = deque()
        #: Clients whose cyclic-queue span currently exceeds the high
        #: watermark (backpressure signalled, release pending).
        self._backpressured: Set[str] = set()
        #: Recently departed clients (bounded FIFO).  "client-departed"
        #: rides the prioritized control path and can overtake "data"
        #: messages already queued behind the per-port data FIFO; a
        #: late fan-out arriving after teardown would silently recreate
        #: the client's cyclic queue and leak it forever under churn.
        #: Maps client -> departure time so a replayed pre-departure
        #: sta-sync (associated_at_us <= departure) can be told apart
        #: from a genuine re-admission.
        self._departed: Dict[str, int] = {}
        self._departed_order: Deque[str] = deque()
        self._departed_cap = 4096

        self.stats = {
            "stops_handled": 0,
            "starts_handled": 0,
            "failovers_handled": 0,
            "packets_dropped_at_stop": 0,
            "cyclic_dropped_on_advance": 0,
            "ba_forwarded": 0,
            "ba_forward_applied": 0,
            "ba_forward_duplicate": 0,
            "uplink_forwarded": 0,
            "csi_reports": 0,
            "csi_suppressed": 0,
            "heartbeats_sent": 0,
            "crashes": 0,
            "restarts": 0,
            "ctrl_heartbeats_seen": 0,
            "ctrl_down_detected": 0,
            "hold_buffered": 0,
            "hold_dropped": 0,
            "hold_flushed": 0,
            "rehomed": 0,
            "serving_claims_sent": 0,
            "backpressure_signals": 0,
            "clients_departed": 0,
            "data_after_departure": 0,
            # Adversary-facing rejection counters: zero on every
            # healthy run (metrics export filters them while zero so
            # adversary-free fingerprints are unchanged).
            "stale_stops": 0,
            "stale_starts": 0,
            "stale_failovers": 0,
            "stale_takeovers": 0,
            "stale_ctrl_hellos": 0,
            "stale_serving_updates": 0,
            "stale_sta_syncs": 0,
            "serving_relinquished": 0,
            # Churn-facing guard: a stop/start/failover that was in
            # flight when the (prioritized) client-departed message
            # tore the client down must not resurrect serving duty.
            # Zero on churn-free runs (lazily exported).
            "serving_after_departure": 0,
        }
        backhaul.register(ap_id, self._on_backhaul)
        self._heartbeat_timer = Timer(self._sim, self._heartbeat_tick)
        if self._config.heartbeat_interval_us > 0:
            self._heartbeat_timer.start(self._config.heartbeat_interval_us)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def cyclic_queue(self, client_id: str) -> CyclicQueue:
        queue = self._cyclic.get(client_id)
        if queue is None:
            queue = CyclicQueue(self._config.cyclic_queue_size)
            self._cyclic[client_id] = queue
        return queue

    def is_serving(self, client_id: str) -> bool:
        return client_id in self._serving

    def start_serving(self, client_id: str) -> None:
        """Adopt transmission duty directly (initial association)."""
        self._serving.add(client_id)
        self.device.reset_tx_state(client_id, self.cyclic_queue(client_id).head)
        self.device.set_session_mode(client_id, "active")
        self._refill(client_id, self.device.queue_room(client_id))

    # ------------------------------------------------------------------
    # liveness: heartbeats, crash, restart
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.alive:
            self._heartbeat_seq += 1
            self._backhaul.send_control(
                self.ap_id,
                self._controller_id,
                "heartbeat",
                self._heartbeat_seq,
                size_bytes=HEARTBEAT_WIRE_BYTES,
            )
            self.stats["heartbeats_sent"] += 1
        self._heartbeat_timer.start(self._config.heartbeat_interval_us)

    def crash(self) -> None:
        """Fault injection: the AP process/host dies.

        The radio goes dark mid-whatever (no TX, no RX, no beacons),
        the backhaul endpoint falls silent, and all volatile state —
        cyclic queues, serving duty, replicated associations, BA seen
        cache — is lost, exactly as a reboot would lose it.
        """
        if not self.alive:
            return
        self.alive = False
        self.stats["crashes"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit("ap", "ap-crash", track=f"ap/{self.ap_id}", ap=self.ap_id)
        self._heartbeat_timer.stop()
        self._ctrl_watch_timer.stop()
        self._ctrl_last_beat = None
        self._holding = False
        self._hold_buffer.clear()
        self._backpressured.clear()
        self._departed.clear()
        self._departed_order.clear()
        self._switch_handled.clear()
        self.device.power_off()
        for queue in self._cyclic.values():
            queue.clear()
        self._cyclic.clear()
        self._serving.clear()
        self._serving_view.clear()
        self._serving_gen_view.clear()
        self.directory = AssociationDirectory()
        self._ba_seen = BaSeenCache()
        self._backhaul.set_node_down(self.ap_id, True)

    def restart(self) -> None:
        """Fault injection: the AP comes back up cold.

        It re-announces itself to the controller ("ap-hello"), which
        replays the association directory and serving map (§4.3 sta
        sync), resumes beaconing, and starts heartbeating again.  It
        serves nobody until the controller switches a client to it.
        """
        if self.alive:
            return
        self.alive = True
        self.stats["restarts"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit("ap", "ap-restart", track=f"ap/{self.ap_id}", ap=self.ap_id)
        self._backhaul.set_node_down(self.ap_id, False)
        self.device.power_on()
        self.device.start_beaconing()
        self._backhaul.send_control(
            self.ap_id, self._controller_id, "ap-hello", self.ap_id
        )
        if self._config.heartbeat_interval_us > 0:
            self._heartbeat_timer.start(self._config.heartbeat_interval_us)

    # ------------------------------------------------------------------
    # controller liveness: watch, hold, re-home (HA mode)
    # ------------------------------------------------------------------

    def controller_id(self) -> str:
        """Who this AP currently reports to (re-homing changes it)."""
        return self._controller_id

    def holding(self) -> bool:
        return self._holding

    def _ctrl_beat(self, src: str) -> None:
        """A controller heartbeat: (re)arm the watch, clear any hold."""
        self.stats["ctrl_heartbeats_seen"] += 1
        self._ctrl_last_beat = self._sim.now
        if self._holding and src == self._controller_id:
            # The primary came back before any takeover: resume.
            self._exit_hold()
        if not self._ctrl_watch_timer.armed:
            # Lazy arm: a controller that never heartbeats (every
            # non-HA configuration) is never watched, never "down".
            interval = self._config.controller_heartbeat_interval_us
            if interval > 0:
                self._ctrl_watch_timer.start(interval)

    def _ctrl_watch_tick(self) -> None:
        interval = self._config.controller_heartbeat_interval_us
        deadline = self._config.controller_miss_limit * interval
        if (
            not self._holding
            and self._ctrl_last_beat is not None
            and self._sim.now - self._ctrl_last_beat > deadline
        ):
            # Controller silent too long: buffer-and-hold.  Uplink and
            # CSI forwards queue locally (bounded) instead of pouring
            # into a dead socket; a takeover or a returning heartbeat
            # releases them.
            self._holding = True
            self.stats["ctrl_down_detected"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ap", "hold-enter", track=f"ap/{self.ap_id}", ap=self.ap_id
                )
        self._ctrl_watch_timer.start(interval)

    def _exit_hold(self) -> None:
        self._holding = False
        flushed = 0
        while self._hold_buffer:
            kind, payload, size_bytes = self._hold_buffer.popleft()
            self._backhaul.send(
                self.ap_id,
                self._controller_id,
                kind,
                payload,
                size_bytes=size_bytes,
            )
            self.stats["hold_flushed"] += 1
            flushed += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "ap",
                "hold-exit",
                track=f"ap/{self.ap_id}",
                ap=self.ap_id,
                flushed=flushed,
            )

    def _ctrl_epoch_ok(self, epoch: int, counter: str) -> bool:
        """Admit a controller authority announcement once per epoch.

        ``epoch`` is the announcing incarnation's start time, so a
        strictly larger value is genuinely newer authority.  An equal
        value is a duplicate of the announcement already applied and a
        smaller one is a replay from a dead incarnation — both would
        re-trigger the full re-home/resync storm (and a replay would
        point this AP at a dead controller), so both are dropped.
        """
        if epoch <= self._ctrl_epoch:
            self.stats[counter] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ap",
                    "stale-ctrl-epoch",
                    track=f"ap/{self.ap_id}",
                    detail=True,
                    ap=self.ap_id,
                    epoch=epoch,
                    current=self._ctrl_epoch,
                )
            return False
        self._ctrl_epoch = epoch
        # New controller incarnation: its switch_id space restarts, so
        # the per-client replay guard must restart with it.
        self._switch_handled.clear()
        return True

    def _rehome(self, new_controller_id: str, epoch: int) -> None:
        """ctrl-takeover: a promoted standby is the controller now."""
        if not self._ctrl_epoch_ok(epoch, "stale_takeovers"):
            return
        if new_controller_id != self._controller_id:
            self._controller_id = new_controller_id
            self.stats["rehomed"] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ap",
                    "rehome",
                    track=f"ap/{self.ap_id}",
                    ap=self.ap_id,
                    controller=new_controller_id,
                )
        self._ctrl_last_beat = self._sim.now
        if self._holding:
            self._exit_hold()
        # Beat immediately so the new controller's liveness tracker
        # hears this AP without waiting out a full heartbeat period.
        self._heartbeat_seq += 1
        self._backhaul.send_control(
            self.ap_id,
            self._controller_id,
            "heartbeat",
            self._heartbeat_seq,
            size_bytes=HEARTBEAT_WIRE_BYTES,
        )
        self.stats["heartbeats_sent"] += 1
        # Report per-client cyclic write edges so the promoted
        # controller can true up its (checkpoint-stale) index cursors
        # and never overwrite an undelivered slot.
        edges = {
            client_id: queue.write_edge
            for client_id, queue in sorted(self._cyclic.items())
        }
        if edges:
            self._backhaul.send(
                self.ap_id,
                self._controller_id,
                "edge-report",
                edges,
                size_bytes=16 + 8 * len(edges),
            )

    def _ctrl_resync(self, src: str, epoch: int) -> None:
        """ctrl-hello: a cold-restarted controller has empty state.

        Replay this AP's association directory (the sta-sync store the
        paper replicates to every AP, §4.3) and *claim* the clients this
        AP is actively serving, so the restarted controller's serving
        map converges on reality instead of every client's first AP.
        Claims ride the same FIFO data port as the sta-sync replay, so
        they can never arrive before the registration they refer to.
        """
        if not self._ctrl_epoch_ok(epoch, "stale_ctrl_hellos"):
            return
        self._controller_id = src
        self._ctrl_last_beat = self._sim.now
        if self._holding:
            self._exit_hold()
        for client_id in sorted(self.directory.clients()):
            self._backhaul.send(
                self.ap_id,
                src,
                "sta-sync",
                self.directory.get(client_id),
                size_bytes=STA_SYNC_WIRE_BYTES,
            )
        for client_id in sorted(self._serving):
            self._backhaul.send(
                self.ap_id, src, "serving-claim", client_id, size_bytes=64
            )
            self.stats["serving_claims_sent"] += 1

    def _client_departed(self, client_id: str) -> None:
        """client-departed: free every per-client resource on this AP."""
        self.stats["clients_departed"] += 1
        if client_id not in self._departed:
            self._departed_order.append(client_id)
            if len(self._departed_order) > self._departed_cap:
                self._departed.pop(self._departed_order.popleft(), None)
        self._departed[client_id] = self._sim.now
        self._serving.discard(client_id)
        self._backpressured.discard(client_id)
        self._serving_view.pop(client_id, None)
        self._serving_gen_view.pop(client_id, None)
        self._switch_handled.pop(client_id, None)
        self._cyclic.pop(client_id, None)
        if self.directory.is_associated(client_id):
            self.directory.remove(client_id)
        self.device.set_session_mode(client_id, "off")

    def _forward_to_controller(
        self, kind: str, payload: object, size_bytes: int
    ) -> None:
        """Uplink/CSI egress point, hold-aware.

        While the controller is silent the forward is buffered (bounded,
        drop-oldest — the freshest CSI and the newest uplink datagrams
        are worth the most after recovery)."""
        if self._holding:
            if len(self._hold_buffer) >= self._config.ctrl_hold_buffer_slots:
                self._hold_buffer.popleft()
                self.stats["hold_dropped"] += 1
            self._hold_buffer.append((kind, payload, size_bytes))
            self.stats["hold_buffered"] += 1
            return
        self._backhaul.send(
            self.ap_id,
            self._controller_id,
            kind,
            payload,
            size_bytes=size_bytes,
        )

    # ------------------------------------------------------------------
    # backhaul dispatch
    # ------------------------------------------------------------------

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if not self.alive:
            return  # backhaul already drops these; defense in depth
        if kind == "data":
            client_id, index, packet = payload
            self._downlink_data(client_id, index, packet)
        elif kind == "stop":
            self._handle_stop(payload)
        elif kind == "start":
            self._handle_start(payload)
        elif kind == "failover":
            self._handle_failover(payload)
        elif kind == "ba-fwd":
            self._handle_forwarded_ba(payload)
        elif kind == "sta-sync":
            departed_at = self._departed.get(payload.client)
            if departed_at is not None:
                if payload.associated_at_us <= departed_at:
                    # A replayed pre-departure sta-sync: lifting the
                    # departed guard for it would let late fan-outs
                    # recreate the torn-down cyclic queue and leak it.
                    self.stats["stale_sta_syncs"] += 1
                    return
                # Re-admission (a returning rider gets a fresh session):
                # lift the departed-drop guard so fan-outs flow again.
                del self._departed[payload.client]
                try:
                    self._departed_order.remove(payload.client)
                except ValueError:
                    pass
            self.directory.admit(payload)
        elif kind == "serving-update":
            client_id, ap_id, gen = payload
            last = self._serving_gen_view.get(client_id)
            if last is not None and gen <= last:
                # Duplicate or replayed update: the view already holds
                # a same-or-newer generation.  Applying it could point
                # BA forwarding at an AP that stopped serving long ago.
                self.stats["stale_serving_updates"] += 1
                return
            self._serving_gen_view[client_id] = gen
            self._serving_view[client_id] = ap_id
            if ap_id != self.ap_id and client_id in self._serving:
                # The controller has authoritatively placed this client
                # elsewhere while we still hold serving duty.  That only
                # happens when we were unreachable during a failover (a
                # partition hid the handover from us) — keep transmitting
                # and two APs serve one client.  Relinquish immediately:
                # the generation tag already proved this update is newer
                # than anything we acted on.
                self._serving.discard(client_id)
                self._backpressured.discard(client_id)
                session = self.device.session(client_id)
                session.ba_timer.stop()
                session.awaiting = None
                session.scoreboard.abandon_all()
                self.device.set_session_mode(client_id, "off")
                self.stats["serving_relinquished"] += 1
                tracer = self._sim.obs.trace
                if tracer.active:
                    tracer.emit(
                        "ap",
                        "serving-relinquish",
                        track=f"ap/{self.ap_id}",
                        ap=self.ap_id,
                        client=client_id,
                        new_ap=ap_id,
                    )
        elif kind == "ctrl-heartbeat":
            self._ctrl_beat(src)
        elif kind == "ctrl-takeover":
            self._rehome(src, payload)
        elif kind == "ctrl-hello":
            self._ctrl_resync(src, payload)
        elif kind == "client-departed":
            self._client_departed(payload)

    # ------------------------------------------------------------------
    # downlink: fan-out intake and radio refill
    # ------------------------------------------------------------------

    def _downlink_data(self, client_id: str, index: int, packet: Packet) -> None:
        if client_id in self._departed:
            # A fan-out that was already in flight behind the data FIFO
            # when the (prioritized) client-departed control message
            # overtook it.  Inserting would recreate the torn-down
            # cyclic queue — drop it instead, explicitly.
            self.stats["data_after_departure"] += 1
            return
        queue = self.cyclic_queue(client_id)
        queue.insert(index, packet)
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "ap",
                "cyclic-insert",
                track=f"ap/{self.ap_id}",
                detail=True,
                ap=self.ap_id,
                client=client_id,
                index=index,
                serving=client_id in self._serving,
            )
        if client_id in self._serving:
            self._refill(client_id, self.device.queue_room(client_id))
            self._check_backpressure(client_id, queue)

    def _check_backpressure(self, client_id: str, queue: CyclicQueue) -> None:
        """Hysteresis-banded overload signal for the serving AP's queue.

        Only the serving AP's span is meaningful — at non-serving APs
        the reader never moves, so the writer lapping it is the normal,
        benign previous-lap overwrite the 12-bit design expects.  Above
        the high watermark the controller is told to pace this client's
        fan-out (explicit, counted drops at ingress); below the low
        watermark the signal clears.
        """
        if (
            not self._config.backpressure_enabled
            or client_id not in self._serving
        ):
            return
        span = queue.pending_span()
        high = int(queue.size * self._config.backpressure_high_ratio)
        low = int(queue.size * self._config.backpressure_low_ratio)
        if client_id not in self._backpressured and span >= high:
            self._backpressured.add(client_id)
            self.stats["backpressure_signals"] += 1
            self._backhaul.send_control(
                self.ap_id,
                self._controller_id,
                "backpressure",
                (client_id, True),
            )
        elif client_id in self._backpressured and span <= low:
            self._backpressured.discard(client_id)
            self.stats["backpressure_signals"] += 1
            self._backhaul.send_control(
                self.ap_id,
                self._controller_id,
                "backpressure",
                (client_id, False),
            )

    def _refill(self, client_id: str, room: int = 0) -> None:
        """Top up the radio's service queue from the cyclic queue.

        Re-entrancy guard: enqueueing kicks the device, which asks for
        refills again — the inner call must be a no-op or the outer
        loop's stale room estimate would push packets into a full
        queue and lose them.
        """
        if client_id not in self._serving or self._refilling:
            return
        queue = self._cyclic.get(client_id)
        if queue is None:
            return
        self._refilling = True
        try:
            while self.device.queue_room(client_id) > 0:
                entry = queue.pop_head()
                if entry is None:
                    break
                index, packet = entry
                packet.meta["wgtt_index"] = index
                self.device.enqueue(packet, client_id)
        finally:
            self._refilling = False
        if client_id in self._backpressured:
            # Draining may have pulled the span back under the low
            # watermark — release the controller promptly.
            self._check_backpressure(client_id, queue)

    # ------------------------------------------------------------------
    # switching protocol, AP side
    # ------------------------------------------------------------------

    def _switch_id_ok(
        self, client_id: str, switch_id: int, counter: str
    ) -> bool:
        """Per-client handshake replay guard.

        The controller issues strictly increasing switch_ids per
        client, so a message carrying a *smaller* id than the newest
        one handled here is a replay from a finished handshake.
        Running it would be destructive — a stale stop revokes serving
        duty the controller believes this AP holds, and a stale start
        rewinds the cyclic reader over undelivered backlog.  An *equal*
        id is the live handshake's own retransmission and re-runs the
        handler: that re-execution is the protocol's loss-recovery
        path and must stay untouched.
        """
        handled = self._switch_handled.get(client_id, -1)
        if switch_id < handled:
            self.stats[counter] += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "ap",
                    "stale-switch-msg",
                    track=f"switch/{client_id}",
                    detail=True,
                    ap=self.ap_id,
                    client=client_id,
                    switch_id=switch_id,
                    handled=handled,
                    counter=counter,
                )
            return False
        self._switch_handled[client_id] = switch_id
        return True

    def _handle_stop(self, message: StopMsg) -> None:
        """stop(c): cease serving; find k; send start(c, k) to the target.

        The in-flight aggregate (the NIC hardware queue) is allowed to
        finish over the air — the paper lets AP1 drain ~6 ms of NIC
        backlog on its inferior link rather than discard it. Everything
        still in the software queues is filtered out; its first index
        becomes k.
        """
        client_id = message.client
        if client_id in self._departed:
            # A handshake message that lost the race with the
            # (prioritized) client-departed teardown.  Forwarding
            # start(c, k) now would resurrect serving duty for a rider
            # the controller no longer tracks — nothing would ever
            # revoke it.
            self.stats["serving_after_departure"] += 1
            return
        if not self._switch_id_ok(client_id, message.switch_id, "stale_stops"):
            return
        self.stats["stops_handled"] += 1
        tracer = self._sim.obs.trace
        span = (
            tracer.begin(
                "ap",
                "stop-processing",
                track=f"switch/{client_id}",
                ap=self.ap_id,
                client=client_id,
                switch_id=message.switch_id,
            )
            if tracer.active
            else None
        )
        self._serving.discard(client_id)
        # Any engaged backpressure is moot now: the controller clears
        # the pacing flag itself when the switch completes.
        self._backpressured.discard(client_id)
        # Drain mode: whatever is already on the scoreboard (the NIC
        # hardware queue, in the paper's terms) may still go out over
        # the inferior link — ~6 ms of airtime — but nothing new is
        # pulled. The software-queue backlog is filtered out; its first
        # index is k.
        self.device.set_session_mode(client_id, "drain")
        session = self.device.session(client_id)
        backlog = session.queue.drain()
        self.stats["packets_dropped_at_stop"] += len(backlog)

        def end_drain():
            if client_id in self._serving:
                return  # duty came back before the drain window closed
            session.ba_timer.stop()
            session.awaiting = None
            abandoned = session.scoreboard.abandon_all()
            self.stats["packets_dropped_at_stop"] += abandoned
            self.device.set_session_mode(client_id, "off")

        self._sim.schedule(self._config.nic_drain_us, end_drain)
        if backlog:
            k = backlog[0].meta.get("wgtt_index", self.cyclic_queue(client_id).head)
        else:
            k = self.cyclic_queue(client_id).head
        delay = self._stop_processing_delay_us()
        start = StartMsg(
            client=client_id,
            index=k,
            switch_id=message.switch_id,
            from_ap=self.ap_id,
        )
        def send_start():
            self._backhaul.send_control(
                self.ap_id, message.target_ap, "start", start
            )
            if span is not None:
                tracer.end(span, k=k, target_ap=message.target_ap)

        self._sim.schedule(delay, send_start)

    def _stop_processing_delay_us(self) -> int:
        """ioctl round trip + user-level Click handling (calibrated)."""
        mean = self._config.stop_processing_mean_us
        jitter = self._config.stop_processing_jitter_us
        return max(500, int(self._rng.normal(mean, jitter / 2.0)))

    def _handle_start(self, message: StartMsg) -> None:
        client_id = message.client
        if client_id in self._departed:
            # See _handle_stop: adopting serving duty for a departed
            # client leaks it forever (the controller forgot the
            # client, so no serving-update will ever relinquish it).
            self.stats["serving_after_departure"] += 1
            return
        if not self._switch_id_ok(client_id, message.switch_id, "stale_starts"):
            return
        self.stats["starts_handled"] += 1
        tracer = self._sim.obs.trace
        span = (
            tracer.begin(
                "ap",
                "start-processing",
                track=f"switch/{client_id}",
                ap=self.ap_id,
                client=client_id,
                switch_id=message.switch_id,
                k=message.index,
            )
            if tracer.active
            else None
        )
        dropped = self.cyclic_queue(client_id).advance_to(message.index)
        self.stats["cyclic_dropped_on_advance"] += dropped

        def activate():
            if client_id in self._departed:
                # Departure landed inside the start-processing window.
                self.stats["serving_after_departure"] += 1
                if span is not None:
                    tracer.end(span)
                return
            ack = AckMsg(
                client=client_id, ap=self.ap_id, switch_id=message.switch_id
            )
            self._backhaul.send_control(self.ap_id, self._controller_id, "ack", ack)
            if span is not None:
                tracer.end(span)
            self._serving.add(client_id)
            # Continue the client's shared sequence space from k: the
            # 12-bit WGTT index doubles as the MAC sequence number, so
            # the client's block-ACK/reorder state survives the switch.
            self.device.reset_tx_state(client_id, message.index)
            self.device.set_session_mode(client_id, "active")
            self._refill(client_id, self.device.queue_room(client_id))

        self._sim.schedule(self._config.start_processing_us, activate)

    def _handle_failover(self, message: FailoverMsg) -> None:
        """failover(c): the serving AP died — adopt the client *now*.

        No start(c, k) can come from the dead AP, so k is recovered
        locally: the controller's fan-out has been pre-placing this
        client's downlink stream in our cyclic queue all along (paper
        §3.1.2), so resuming from the first index of our own backlog
        restarts the flow with zero backhaul re-sends.  An empty
        backlog resumes at the write edge — the next fanned-out packet.
        """
        client_id = message.client
        if client_id in self._departed:
            # See _handle_stop: never adopt a departed client.
            self.stats["serving_after_departure"] += 1
            return
        if not self._switch_id_ok(
            client_id, message.switch_id, "stale_failovers"
        ):
            return
        self.stats["failovers_handled"] += 1
        queue = self.cyclic_queue(client_id)
        tracer = self._sim.obs.trace
        span = (
            tracer.begin(
                "ap",
                "failover-processing",
                track=f"switch/{client_id}",
                ap=self.ap_id,
                client=client_id,
                switch_id=message.switch_id,
                dead_ap=message.dead_ap,
            )
            if tracer.active
            else None
        )

        def activate():
            backlog = queue.backlog_packets()
            k = backlog[0][0] if backlog else queue.write_edge
            dropped = queue.advance_to(k)
            self.stats["cyclic_dropped_on_advance"] += dropped
            ack = AckMsg(
                client=client_id, ap=self.ap_id, switch_id=message.switch_id
            )
            self._backhaul.send_control(
                self.ap_id, self._controller_id, "ack", ack
            )
            if span is not None:
                tracer.end(span, k=k)
            self._serving.add(client_id)
            self.device.reset_tx_state(client_id, k)
            self.device.set_session_mode(client_id, "active")
            self._refill(client_id, self.device.queue_room(client_id))

        self._sim.schedule(self._config.start_processing_us, activate)

    # ------------------------------------------------------------------
    # uplink: CSI, data forwarding, BA forwarding
    # ------------------------------------------------------------------

    def _csi_measured(
        self, client_id: str, snr_db: np.ndarray, rssi_dbm: float
    ) -> None:
        if self.csi_suppressed:
            self.stats["csi_suppressed"] += 1
            return
        report = CsiReport(
            time_us=self._sim.now,
            ap_id=self.ap_id,
            client_id=client_id,
            subcarrier_snr_db=snr_db,
            rssi_dbm=rssi_dbm,
        )
        # Resolve the effective SNR now, while the batched medium's
        # PHY prewarm for this completion is still memo-resident; the
        # controller reads it after a backhaul delay, long after the
        # bounded memo may have recycled this snapshot's entry.
        report.esnr_db
        self.stats["csi_reports"] += 1
        self._forward_to_controller(
            "csi", report, report.wire_size_bytes()
        )

    def _uplink_received(self, packet: Packet, from_addr: str) -> None:
        self.stats["uplink_forwarded"] += 1
        self._forward_to_controller(
            "uplink", packet, tunnel_wire_size(packet, downlink=False)
        )

    def _overheard_ba(self, frame: BlockAckFrame) -> None:
        if not self._config.ba_forwarding_enabled:
            return
        client_id = frame.ta
        serving_ap = self._serving_view.get(client_id)
        if serving_ap is None or serving_ap == self.ap_id:
            return
        forwarded = ForwardedBa(
            client=client_id,
            start_seq=frame.start_seq,
            acked=frozenset(frame.acked),
            heard_by=self.ap_id,
            heard_at_us=self._sim.now,
        )
        self.stats["ba_forwarded"] += 1
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "ap",
                "ba-forward",
                track=f"ap/{self.ap_id}",
                detail=True,
                ap=self.ap_id,
                client=client_id,
                to_ap=serving_ap,
                start_seq=frame.start_seq,
            )
        self._backhaul.send(
            self.ap_id,
            serving_ap,
            "ba-fwd",
            forwarded,
            size_bytes=BA_FORWARD_WIRE_BYTES,
        )

    def _local_ba_processed(self, frame: BlockAckFrame) -> None:
        self._ba_seen.record_local(
            frame.ta, frame.start_seq, set(frame.acked), self._sim.now
        )

    def _handle_forwarded_ba(self, forwarded: ForwardedBa) -> None:
        if not self._ba_seen.check_and_record(forwarded, self._sim.now):
            self.stats["ba_forward_duplicate"] += 1
            return
        result = self.device.apply_block_ack_info(
            forwarded.client, set(forwarded.acked)
        )
        if result["delivered"]:
            self.stats["ba_forward_applied"] += 1

    # ------------------------------------------------------------------
    # association
    # ------------------------------------------------------------------

    def _mgmt_received(self, frame) -> None:
        if frame.subtype != "assoc-req":
            return
        client_id = frame.ta
        if self.directory.is_associated(client_id):
            return
        info = StaInfo(
            client=client_id,
            associated_at_us=self._sim.now,
            first_ap=self.ap_id,
        )
        self.directory.admit(info)
        # Replicate sta_info to every AP and the controller (§4.3).
        self._backhaul.broadcast(
            self.ap_id, "sta-sync", info, size_bytes=STA_SYNC_WIRE_BYTES
        )
        self.device.send_mgmt("assoc-resp", client_id)
