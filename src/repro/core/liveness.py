"""AP liveness tracking from backhaul heartbeats.

The paper's controller trusts the AP array blindly: selection considers
every AP that has ever reported CSI, and the stop/start/ack protocol
retransmits forever into a dead socket.  A transit deployment needs an
explicit failure detector.  Every WGTT AP beats over the (prioritized)
backhaul control path; the controller-side tracker here declares an AP
**DEAD** after ``miss_limit`` consecutive silent heartbeat periods and
**ALIVE** again on the next heartbeat or explicit hello.

State machine per AP::

    UNKNOWN --first beat--> ALIVE --miss_limit silent periods--> DEAD
       ^                      ^                                   |
       |                      +------------- beat / hello --------+
       (never beaten: not tracked, never declared dead)

The UNKNOWN state is deliberate: an AP that has never beaten is not
declared dead, so unit rigs and the Enhanced-802.11r baseline — which
run no heartbeats at all — see no behaviour change.  The periodic check
timer is started lazily on the first beat for the same reason.

Detection lag is bounded: the last beat lands at most one period before
the crash, and the check runs once per period, so DEAD is declared
within ``(miss_limit + 1) * interval`` of the crash — 80 ms with the
default 20 ms / 3-miss configuration, inside the 100 ms failover
deadline.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.sim.engine import Simulator, Timer

#: Liveness states (UNKNOWN is implicit: absent from the tracker).
ALIVE = "alive"
DEAD = "dead"


class ApLivenessTracker:
    """Heartbeat-driven failure detector for the AP array."""

    def __init__(
        self,
        sim: Simulator,
        interval_us: int,
        miss_limit: int = 3,
    ):
        if miss_limit <= 0:
            raise ValueError("miss_limit must be positive")
        self._sim = sim
        self.interval_us = int(interval_us)
        self.miss_limit = int(miss_limit)
        self._last_beat: Dict[str, int] = {}
        self._dead: set = set()
        self._check_timer = Timer(sim, self._check)
        #: Fired exactly once per ALIVE→DEAD transition.
        self.on_down: Callable[[str], None] = lambda ap_id: None
        #: Fired exactly once per DEAD→ALIVE transition.
        self.on_up: Callable[[str], None] = lambda ap_id: None
        #: (time_us, "down"|"up", ap_id) — the liveness event trace.
        self.events: List[Tuple[int, str, str]] = []

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------

    def beat(self, ap_id: str) -> None:
        """Record one heartbeat (or any other sign of life)."""
        if self.interval_us <= 0:
            return  # liveness disabled
        self._last_beat[ap_id] = self._sim.now
        if ap_id in self._dead:
            self._revive(ap_id)
        if not self._check_timer.armed:
            # Lazy start: no heartbeats ever -> no periodic load.
            self._check_timer.start(self.interval_us)

    def mark_alive(self, ap_id: str) -> None:
        """Explicit hello (AP restart announcement)."""
        self.beat(ap_id)

    def forget(self, ap_id: str) -> None:
        """Stop tracking an AP (decommissioned)."""
        self._last_beat.pop(ap_id, None)
        self._dead.discard(ap_id)

    def stop(self) -> None:
        """Disarm the periodic check (controller crash / teardown)."""
        self._check_timer.stop()

    def reset_clock(self, now_us: int) -> None:
        """Refresh every tracked AP's last-beat to ``now_us``.

        A promoted standby calls this: its checkpointed beat times are
        up to a checkpoint interval + an outage old, and judging them
        against the post-promotion clock would mass-declare the whole
        healthy array dead.  APs stay innocent until a fresh silent
        period proves otherwise.  Already-DEAD APs stay dead — only a
        real beat or hello revives them.
        """
        for ap_id in self._last_beat:
            if ap_id not in self._dead:
                self._last_beat[ap_id] = now_us

    # -- checkpoint support -------------------------------------------

    def snapshot(self) -> dict:
        return {
            "last_beat": dict(self._last_beat),
            "dead": sorted(self._dead),
            "events": [list(e) for e in self.events],
            "check_deadline_us": self._check_timer.deadline_us,
        }

    def restore(self, state: dict) -> None:
        self._last_beat = {
            ap: int(t) for ap, t in state["last_beat"].items()
        }
        self._dead = set(state["dead"])
        self.events = [tuple(e) for e in state["events"]]
        deadline = state["check_deadline_us"]
        if deadline is None:
            self._check_timer.stop()
        else:
            self._check_timer.start_at(int(deadline))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def state(self, ap_id: str) -> str:
        if ap_id in self._dead:
            return DEAD
        return ALIVE  # tracked-and-beating or UNKNOWN (never beaten)

    def is_dead(self, ap_id: str) -> bool:
        return ap_id in self._dead

    def dead_aps(self) -> FrozenSet[str]:
        return frozenset(self._dead)

    def tracked_aps(self) -> FrozenSet[str]:
        return frozenset(self._last_beat)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _revive(self, ap_id: str) -> None:
        self._dead.discard(ap_id)
        self.events.append((self._sim.now, "up", ap_id))
        self.on_up(ap_id)

    def _check(self) -> None:
        now = self._sim.now
        deadline = self.miss_limit * self.interval_us
        for ap_id in sorted(self._last_beat):
            if ap_id in self._dead:
                continue
            if now - self._last_beat[ap_id] > deadline:
                self._dead.add(ap_id)
                self.events.append((now, "down", ap_id))
                self.on_down(ap_id)
        self._check_timer.start(self.interval_us)
