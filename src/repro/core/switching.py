"""The three-step switching protocol (paper §3.1.2), hardened.

    controller --stop(c)-->  AP1            (cease sending to c)
    AP1        --start(c,k)-> AP2           (resume from index k)
    AP2        --ack------->  controller    (switch complete)

Control packets are prioritized end to end. The controller retransmits
stop(c) if no ack arrives within 30 ms, and never issues a second
switch for the same client while one is outstanding (paper footnote 2).
This module holds the controller-side coordinator and the message
dataclasses; the AP-side behaviour lives in ``access_point``.

Beyond the paper, the coordinator is hardened for a production array:

* retransmissions are **capped** and back off exponentially up to a
  bound (``switch_backoff_max_us``) instead of hammering a sick
  backhaul on a fixed 30 ms clock;
* a pending switch can be **aborted** (e.g. its target AP just died
  mid-handshake) — the slot is freed immediately so selection or
  failover can act, and ``busy()`` clears;
* a one-hop **failover** handshake (controller → new AP → ack) covers
  the case where the outgoing AP is dead and can never send start(c, k)
  — the new AP resumes from its own fanned-out cyclic-queue backlog;
* every :class:`SwitchRecord` carries an ``outcome``
  (``completed | aborted | failed-over``) for the chaos metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import WgttConfig
from repro.net.backhaul import EthernetBackhaul
from repro.sim.engine import Simulator, Timer


@dataclass(frozen=True)
class StopMsg:
    """controller → outgoing AP: stop serving ``client``; hand over to
    ``target_ap``. Carries both layer-2 addresses as in the paper."""

    client: str
    target_ap: str
    switch_id: int


@dataclass(frozen=True)
class StartMsg:
    """outgoing AP → incoming AP: resume ``client`` at index ``k``."""

    client: str
    index: int
    switch_id: int
    from_ap: str


@dataclass(frozen=True)
class AckMsg:
    """incoming AP → controller: switch complete."""

    client: str
    ap: str
    switch_id: int


@dataclass(frozen=True)
class FailoverMsg:
    """controller → incoming AP: the serving AP ``dead_ap`` died; adopt
    ``client`` immediately, resuming from your own cyclic-queue backlog
    (the controller cannot learn k — the AP that knew it is gone)."""

    client: str
    dead_ap: str
    switch_id: int


#: ``SwitchRecord.outcome`` values.
OUTCOME_COMPLETED = "completed"
OUTCOME_ABORTED = "aborted"
OUTCOME_FAILED_OVER = "failed-over"


@dataclass
class SwitchRecord:
    """One finished switch attempt, for Table 1 / chaos statistics."""

    client: str
    from_ap: str
    to_ap: str
    started_us: int
    completed_us: Optional[int] = None
    retries: int = 0
    #: "completed" | "aborted" | "failed-over" once finished; None while
    #: the handshake is still in flight.
    outcome: Optional[str] = None
    #: True for the emergency (dead serving AP) handshake.
    failover: bool = False
    #: Human-readable reason for an abort (dead target, retry cap...).
    abort_reason: Optional[str] = None

    @property
    def duration_us(self) -> Optional[int]:
        if self.completed_us is None:
            return None
        return self.completed_us - self.started_us

    # -- checkpoint support -------------------------------------------

    def to_state(self) -> dict:
        return {
            "client": self.client,
            "from_ap": self.from_ap,
            "to_ap": self.to_ap,
            "started_us": self.started_us,
            "completed_us": self.completed_us,
            "retries": self.retries,
            "outcome": self.outcome,
            "failover": self.failover,
            "abort_reason": self.abort_reason,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SwitchRecord":
        return cls(**state)


@dataclass
class _Pending:
    record: SwitchRecord
    switch_id: int
    timer: Timer = None  # set right after construction
    #: Open tracer span id for this handshake (None when tracing is off
    #: or the pending entry was rebuilt from a checkpoint).
    span: Optional[int] = None


class SwitchCoordinator:
    """Controller-side switching FSM, one slot per client."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        config: WgttConfig,
        controller_id: str = "controller",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config
        self._controller_id = controller_id
        self._pending: Dict[str, _Pending] = {}
        self._next_switch_id = 1
        self.history: List[SwitchRecord] = []
        self.abandoned = 0
        self.aborted = 0
        #: Acks that matched no pending handshake: duplicates of an ack
        #: already consumed, acks for a switch aborted meanwhile, or
        #: acks from superseded retransmission rounds.  All are
        #: idempotent no-ops by design — the counter exists so an
        #: adversary run can prove they happened *and* changed nothing.
        self.stale_acks = 0
        #: Called with the completed SwitchRecord.
        self.on_complete: Callable[[SwitchRecord], None] = lambda record: None
        #: Called with every aborted SwitchRecord (retry cap exhausted,
        #: dead target, explicit abort).
        self.on_abort: Callable[[SwitchRecord], None] = lambda record: None

    def busy(self, client_id: str) -> bool:
        return client_id in self._pending

    def pending_record(self, client_id: str) -> Optional[SwitchRecord]:
        pending = self._pending.get(client_id)
        return pending.record if pending else None

    def initiate(self, client_id: str, from_ap: str, to_ap: str) -> None:
        """Kick off stop/start/ack for one client."""
        pending = self._new_pending(client_id, from_ap, to_ap, failover=False)
        self._send_stop(pending)

    def initiate_failover(
        self, client_id: str, dead_ap: str, to_ap: str
    ) -> None:
        """Emergency path: ``dead_ap`` cannot execute a stop, so the
        controller messages the new AP directly and the fan-out backlog
        already sitting in its cyclic queue restarts the flow."""
        pending = self._new_pending(client_id, dead_ap, to_ap, failover=True)
        self._send_failover(pending)

    def _new_pending(
        self, client_id: str, from_ap: str, to_ap: str, failover: bool
    ) -> _Pending:
        if client_id in self._pending:
            raise RuntimeError(f"switch already pending for {client_id!r}")
        if from_ap == to_ap:
            raise ValueError("switch target equals current AP")
        switch_id = self._next_switch_id
        self._next_switch_id += 1
        record = SwitchRecord(
            client=client_id,
            from_ap=from_ap,
            to_ap=to_ap,
            started_us=self._sim.now,
            failover=failover,
        )
        pending = _Pending(record=record, switch_id=switch_id)
        pending.timer = Timer(self._sim, lambda: self._timeout(client_id))
        tracer = self._sim.obs.trace
        if tracer.active:
            pending.span = tracer.begin(
                "controller",
                "failover" if failover else "switch",
                track=f"switch/{client_id}",
                client=client_id,
                from_ap=from_ap,
                to_ap=to_ap,
                switch_id=switch_id,
            )
        self._pending[client_id] = pending
        return pending

    def _retry_delay_us(self, retries: int) -> int:
        """Bounded exponential backoff: 30, 30, 60, 120 ms ... capped.

        The first two rounds keep the paper's fixed 30 ms clock — a
        single lost control packet is the common case on a healthy
        backhaul and must recover at full speed.  Only *persistent*
        failure (a sick or partitioned backhaul, where retransmissions
        cannot help and only add load) backs off, doubling per round up
        to ``switch_backoff_max_us``.
        """
        base = self._config.switch_timeout_us
        cap = max(base, self._config.switch_backoff_max_us)
        shifted = base << min(max(0, retries - 1), 16)
        return min(shifted, cap)

    def _send_stop(self, pending: _Pending) -> None:
        message = StopMsg(
            client=pending.record.client,
            target_ap=pending.record.to_ap,
            switch_id=pending.switch_id,
        )
        self._backhaul.send_control(
            self._controller_id, pending.record.from_ap, "stop", message
        )
        pending.timer.start(self._retry_delay_us(pending.record.retries))

    def _send_failover(self, pending: _Pending) -> None:
        message = FailoverMsg(
            client=pending.record.client,
            dead_ap=pending.record.from_ap,
            switch_id=pending.switch_id,
        )
        self._backhaul.send_control(
            self._controller_id, pending.record.to_ap, "failover", message
        )
        pending.timer.start(self._retry_delay_us(pending.record.retries))

    def on_ack(self, message: AckMsg) -> None:
        pending = self._pending.get(message.client)
        if pending is None or pending.switch_id != message.switch_id:
            # Duplicate ack, ack after abort, or a superseded round:
            # strictly a no-op (the record must never be mutated twice),
            # but counted and traced so misbehaviour is visible.
            self.stale_acks += 1
            tracer = self._sim.obs.trace
            if tracer.active:
                tracer.emit(
                    "controller",
                    "stale-ack",
                    track=f"switch/{message.client}",
                    detail=True,
                    client=message.client,
                    ap=message.ap,
                    switch_id=message.switch_id,
                )
            return
        pending.timer.stop()
        del self._pending[message.client]
        record = pending.record
        record.completed_us = self._sim.now
        record.outcome = (
            OUTCOME_FAILED_OVER if record.failover else OUTCOME_COMPLETED
        )
        if pending.span is not None:
            self._sim.obs.trace.end(
                pending.span, outcome=record.outcome, retries=record.retries
            )
        self.history.append(record)
        self.on_complete(record)

    def abort(
        self, client_id: str, reason: str = "aborted"
    ) -> Optional[SwitchRecord]:
        """Tear down a pending switch and free the slot immediately.

        Used when the handshake can never finish — the target AP died
        mid-protocol, or failover needs the slot *now*.  Returns the
        aborted record (also appended to ``history``), or None if no
        switch was pending.
        """
        pending = self._pending.pop(client_id, None)
        if pending is None:
            return None
        pending.timer.stop()
        record = pending.record
        record.outcome = OUTCOME_ABORTED
        record.abort_reason = reason
        self.aborted += 1
        if pending.span is not None:
            self._sim.obs.trace.end(
                pending.span, outcome=record.outcome, reason=reason
            )
        self.history.append(record)
        self.on_abort(record)
        return record

    def abort_for_ap(self, ap_id: str) -> List[SwitchRecord]:
        """Abort every pending switch that involves a (now dead) AP."""
        aborted: List[SwitchRecord] = []
        for client_id in list(self._pending):
            record = self._pending[client_id].record
            if ap_id in (record.from_ap, record.to_ap):
                aborted.append(
                    self.abort(client_id, reason=f"{ap_id} died mid-handshake")
                )
        return aborted

    def _timeout(self, client_id: str) -> None:
        pending = self._pending.get(client_id)
        if pending is None:
            return
        record = pending.record
        record.retries += 1
        tracer = self._sim.obs.trace
        if record.retries > self._config.switch_retry_limit:
            # Give up: release the slot so selection can try again.
            del self._pending[client_id]
            self.abandoned += 1
            record.outcome = OUTCOME_ABORTED
            record.abort_reason = "retry limit exhausted"
            if pending.span is not None:
                tracer.end(
                    pending.span,
                    outcome=record.outcome,
                    reason=record.abort_reason,
                    retries=record.retries,
                )
            self.history.append(record)
            self.on_abort(record)
            return
        if tracer.active:
            tracer.emit(
                "controller",
                "switch-retry",
                track=f"switch/{client_id}",
                client=client_id,
                switch_id=pending.switch_id,
                retries=record.retries,
                failover=record.failover,
            )
        if record.failover:
            self._send_failover(pending)
        else:
            self._send_stop(pending)

    # -- crash / checkpoint support --------------------------------------

    def halt(self) -> None:
        """Controller crash: freeze every pending handshake in place.

        Timers stop (a dead controller retransmits nothing) but the
        pending records are *kept* — they are part of the state a
        restore re-arms, and a restarted controller resumes the
        retransmission clocks from its checkpoint.
        """
        for pending in self._pending.values():
            pending.timer.stop()

    def snapshot(self) -> dict:
        # ``stale_acks`` is deliberately NOT checkpointed: it is durable
        # observability (like ``stats``), not protocol state — and the
        # checkpoint's canonical bytes ride the backhaul, so a counter
        # that only moves under adversarial replay must not perturb
        # wire sizes of adversary-free runs.
        return {
            "next_switch_id": self._next_switch_id,
            "abandoned": self.abandoned,
            "aborted": self.aborted,
            "pending": {
                client_id: {
                    "record": pending.record.to_state(),
                    "switch_id": pending.switch_id,
                    "deadline_us": pending.timer.deadline_us,
                }
                for client_id, pending in self._pending.items()
            },
            "history": [record.to_state() for record in self.history],
        }

    def restore(self, state: dict) -> None:
        """Rebuild pending handshakes and history from a snapshot.

        Each pending switch's retransmission timer is re-armed at its
        checkpointed absolute deadline (clamped to now), so a restored
        controller retransmits at the same instants the original would
        have — the bit-identical-continuation property test holds the
        coordinator to this.
        """
        # Sorted keys: stop() order is inert today, but restore is the
        # bit-identical-continuation path — never let dict insertion
        # history pick an order here (repro.analysis DET005).
        for switch_id in sorted(self._pending):
            self._pending[switch_id].timer.stop()
        self._pending = {}
        self._next_switch_id = int(state["next_switch_id"])
        self.abandoned = int(state["abandoned"])
        self.aborted = int(state["aborted"])
        # Durable counter: keep the in-memory value unless the snapshot
        # carries one (it normally doesn't — see snapshot()).
        self.stale_acks = int(state.get("stale_acks", self.stale_acks))
        self.history = [
            SwitchRecord.from_state(record) for record in state["history"]
        ]
        for client_id in sorted(state["pending"]):
            entry = state["pending"][client_id]
            record = SwitchRecord.from_state(entry["record"])
            pending = _Pending(
                record=record, switch_id=int(entry["switch_id"])
            )
            pending.timer = Timer(
                self._sim, lambda c=client_id: self._timeout(c)
            )
            self._pending[client_id] = pending
            deadline = entry["deadline_us"]
            if deadline is not None:
                pending.timer.start_at(int(deadline))

    # -- statistics ------------------------------------------------------

    def completed_durations_us(self) -> List[int]:
        return [
            r.duration_us for r in self.history if r.duration_us is not None
        ]
