"""The three-step switching protocol (paper §3.1.2).

    controller --stop(c)-->  AP1            (cease sending to c)
    AP1        --start(c,k)-> AP2           (resume from index k)
    AP2        --ack------->  controller    (switch complete)

Control packets are prioritized end to end. The controller retransmits
stop(c) if no ack arrives within 30 ms, and never issues a second
switch for the same client while one is outstanding (paper footnote 2).
This module holds the controller-side coordinator and the message
dataclasses; the AP-side behaviour lives in ``access_point``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import WgttConfig
from repro.net.backhaul import EthernetBackhaul
from repro.sim.engine import Simulator, Timer


@dataclass(frozen=True)
class StopMsg:
    """controller → outgoing AP: stop serving ``client``; hand over to
    ``target_ap``. Carries both layer-2 addresses as in the paper."""

    client: str
    target_ap: str
    switch_id: int


@dataclass(frozen=True)
class StartMsg:
    """outgoing AP → incoming AP: resume ``client`` at index ``k``."""

    client: str
    index: int
    switch_id: int
    from_ap: str


@dataclass(frozen=True)
class AckMsg:
    """incoming AP → controller: switch complete."""

    client: str
    ap: str
    switch_id: int


@dataclass
class SwitchRecord:
    """One completed (or abandoned) switch, for Table 1 statistics."""

    client: str
    from_ap: str
    to_ap: str
    started_us: int
    completed_us: Optional[int] = None
    retries: int = 0

    @property
    def duration_us(self) -> Optional[int]:
        if self.completed_us is None:
            return None
        return self.completed_us - self.started_us


@dataclass
class _Pending:
    record: SwitchRecord
    switch_id: int
    timer: Timer = None  # set right after construction


class SwitchCoordinator:
    """Controller-side switching FSM, one slot per client."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        config: WgttConfig,
        controller_id: str = "controller",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self._config = config
        self._controller_id = controller_id
        self._pending: Dict[str, _Pending] = {}
        self._next_switch_id = 1
        self.history: List[SwitchRecord] = []
        self.abandoned = 0
        #: Called with the completed SwitchRecord.
        self.on_complete: Callable[[SwitchRecord], None] = lambda record: None

    def busy(self, client_id: str) -> bool:
        return client_id in self._pending

    def initiate(self, client_id: str, from_ap: str, to_ap: str) -> None:
        """Kick off stop/start/ack for one client."""
        if client_id in self._pending:
            raise RuntimeError(f"switch already pending for {client_id!r}")
        if from_ap == to_ap:
            raise ValueError("switch target equals current AP")
        switch_id = self._next_switch_id
        self._next_switch_id += 1
        record = SwitchRecord(
            client=client_id,
            from_ap=from_ap,
            to_ap=to_ap,
            started_us=self._sim.now,
        )
        pending = _Pending(record=record, switch_id=switch_id)
        pending.timer = Timer(self._sim, lambda: self._timeout(client_id))
        self._pending[client_id] = pending
        self._send_stop(pending)

    def _send_stop(self, pending: _Pending) -> None:
        message = StopMsg(
            client=pending.record.client,
            target_ap=pending.record.to_ap,
            switch_id=pending.switch_id,
        )
        self._backhaul.send_control(
            self._controller_id, pending.record.from_ap, "stop", message
        )
        pending.timer.start(self._config.switch_timeout_us)

    def on_ack(self, message: AckMsg) -> None:
        pending = self._pending.get(message.client)
        if pending is None or pending.switch_id != message.switch_id:
            return  # stale ack from a retransmitted round
        pending.timer.stop()
        del self._pending[message.client]
        pending.record.completed_us = self._sim.now
        self.history.append(pending.record)
        self.on_complete(pending.record)

    def _timeout(self, client_id: str) -> None:
        pending = self._pending.get(client_id)
        if pending is None:
            return
        pending.record.retries += 1
        if pending.record.retries > self._config.switch_retry_limit:
            # Give up: release the slot so selection can try again.
            del self._pending[client_id]
            self.abandoned += 1
            self.history.append(pending.record)
            return
        self._send_stop(pending)

    # -- statistics ------------------------------------------------------

    def completed_durations_us(self) -> List[int]:
        return [
            r.duration_us for r in self.history if r.duration_us is not None
        ]
