"""Uplink packet de-duplication at the controller (paper §3.2.3).

Every AP that decodes a client's uplink frame forwards it, so the
controller sees up to eight copies of each datagram. It keeps a
hash-set of 48-bit keys — source address bits combined with the 16-bit
IP identification field (§3.2.2) — and forwards only the first copy.
The set is bounded FIFO so memory stays constant on long runs.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.net.packet import Packet

#: Remembered keys; at 8k packets/s this covers several seconds.
DEFAULT_CAPACITY = 32_768


class PacketDeduplicator:
    """First-copy-wins filter keyed on (source, IP-ID)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._seen: "OrderedDict[int, None]" = OrderedDict()
        self.accepted = 0
        self.duplicates = 0

    def accept(self, packet: Packet) -> bool:
        """True exactly once per distinct datagram.

        ARP and other headerless traffic (paper footnote 5) bypasses
        de-duplication — duplicates there are harmless.
        """
        if packet.protocol == "arp":
            self.accepted += 1
            return True
        key = packet.dedup_key()
        if key in self._seen:
            self.duplicates += 1
            return False
        self._seen[key] = None
        if len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        self.accepted += 1
        return True

    def duplicate_ratio(self) -> float:
        total = self.accepted + self.duplicates
        return self.duplicates / total if total else 0.0

    def window_size(self) -> int:
        """Keys currently remembered (≤ capacity by construction) —
        a bounded-memory probe for the soak SLO guard."""
        return len(self._seen)

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- checkpoint support -------------------------------------------

    def snapshot(self) -> dict:
        """FIFO-ordered key list + counters, for controller checkpoints.

        Shipping the window to the warm standby is what bounds
        duplicate leakage across a controller failover: copies of a
        datagram the dead primary already forwarded are recognised by
        the promoted standby instead of re-forwarded upstream.
        """
        return {
            "capacity": self._capacity,
            "keys": list(self._seen),
            "accepted": self.accepted,
            "duplicates": self.duplicates,
        }

    def restore(self, state: dict) -> None:
        self._capacity = int(state["capacity"])
        self._seen = OrderedDict((int(k), None) for k in state["keys"])
        self.accepted = int(state["accepted"])
        self.duplicates = int(state["duplicates"])

    # -- inter-shard handoff support ----------------------------------

    def keys_for_src(self, src_bits: int) -> list:
        """FIFO-ordered remembered keys whose source bits match.

        A dedup key is ``(src_bits << 16) | ip_id``, so this is the
        per-client slice of the window — what an inter-shard handoff
        ships so the receiving shard recognises copies of datagrams the
        sending shard already forwarded upstream.  In-process only:
        ``src_bits`` derives from the per-process ``hash()``.
        """
        return [key for key in self._seen if key >> 16 == src_bits]

    def merge_keys(self, keys: list) -> None:
        """Append transferred keys (FIFO order kept, existing kept,
        capacity enforced)."""
        seen = self._seen
        for key in keys:
            key = int(key)
            if key in seen:
                continue
            seen[key] = None
            if len(seen) > self._capacity:
                seen.popitem(last=False)
