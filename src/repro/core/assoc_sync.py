"""Client-association synchronization (paper §4.3, Figure 12).

All WGTT APs present one BSSID, so the client associates once. The AP
that completes the association replicates the client's ``sta_info``
(addresses, authorization state) to every other AP over the backhaul —
the paper patches hostapd to do this with a TCP connection per peer.
Here the directory is the per-AP view of which clients are admitted;
replication is a broadcast backhaul message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

#: Wire size of one replicated sta_info record.
STA_SYNC_WIRE_BYTES = 256


@dataclass
class StaInfo:
    """Replicated association state for one client."""

    client: str
    associated_at_us: int
    first_ap: str
    authorized: bool = True


class AssociationDirectory:
    """One AP's (or the controller's) view of admitted clients."""

    def __init__(self):
        self._records: Dict[str, StaInfo] = {}

    def is_associated(self, client_id: str) -> bool:
        record = self._records.get(client_id)
        return record is not None and record.authorized

    def admit(self, info: StaInfo) -> bool:
        """Install a record; returns False if already present."""
        if info.client in self._records:
            return False
        self._records[info.client] = info
        return True

    def get(self, client_id: str) -> StaInfo:
        return self._records[client_id]

    def remove(self, client_id: str) -> None:
        self._records.pop(client_id, None)

    def clients(self) -> Set[str]:
        return set(self._records)
