"""WGTT system parameters, with the paper's defaults.

Every number here is either stated in the paper or calibrated against a
measurement the paper reports (noted inline). Experiments vary these —
the window-size sweep (Figure 21) and hysteresis sweep (Figure 22) are
literally parameter sweeps over this object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import MS


@dataclass
class WgttConfig:
    """Tunables of the WGTT controller/AP protocol suite."""

    #: Shared BSSID all WGTT APs present to clients (§4.3).
    bssid: str = "wgtt-bss"

    #: ESNR comparison sliding window W (§3.1.1; §5.3.1 picks 10 ms).
    selection_window_us: int = 10 * MS

    #: Minimum time between switches for one client (§5.3.3 sweeps
    #: 40/80/120 ms; smaller adapts faster — 40 ms is the best setting).
    time_hysteresis_us: int = 40 * MS

    #: How often the controller re-evaluates AP selection per client.
    selection_period_us: int = 2 * MS

    #: stop→ack retransmission timeout (§3.1.2: 30 ms).
    switch_timeout_us: int = 30 * MS

    #: Give up a switch after this many stop retransmissions.
    switch_retry_limit: int = 5

    #: Retransmission backoff cap: the n-th retry waits
    #: ``min(switch_timeout_us << n, switch_backoff_max_us)``, so a
    #: wedged handshake backs off instead of hammering a sick backhaul,
    #: but never waits longer than this bound.
    switch_backoff_max_us: int = 120 * MS

    # -- AP liveness / failover (robustness extension) ----------------

    #: AP → controller heartbeat period over the backhaul.  0 disables
    #: heartbeats (and with them dead-AP detection).
    heartbeat_interval_us: int = 20 * MS

    #: Consecutive missed heartbeats before an AP is declared DEAD.
    #: Detection lag is bounded by (miss_limit + 1) heartbeat periods.
    heartbeat_miss_limit: int = 3

    #: Recovery budget: a client whose serving AP dies mid-drive should
    #: be transmitting again from a live AP within this long of the
    #: crash.  With a 20 ms heartbeat and miss limit 3, detection takes
    #: at most ~80 ms, leaving ~20 ms for the failover handshake.
    failover_deadline_us: int = 100 * MS

    #: Emergency-failover CSI lookback.  The 10 ms selection window has
    #: usually expired by the time a crash is *detected* (~80 ms), so
    #: the failover target is chosen from the controller's last-heard
    #: ESNR cache instead, considering any live AP that heard the
    #: client within this horizon.  Never used on the regular
    #: selection path.
    failover_lookback_us: int = 500 * MS

    #: Cyclic queue depth: m = 12 bits of index space (§3.1.2).
    index_bits: int = 12

    #: Kernel ioctl round trip + Click user-level handling when a stop
    #: arrives (§3.1.2 "Implementing the switch"). Calibrated so the
    #: full three-step protocol averages ~17 ms as Table 1 measures.
    stop_processing_mean_us: int = 13 * MS
    stop_processing_jitter_us: int = 6 * MS

    #: Processing at the incoming AP between start(c, k) and its ack.
    start_processing_us: int = 3 * MS

    #: How long a stopped AP may keep draining its NIC hardware queue
    #: over the air (§3.1.2: "These packets take 6 ms to deliver").
    #: After this the leftover MPDUs are abandoned — a real NIC cannot
    #: replay seconds-old frames, and neither may the model (stale
    #: frames would alias in the 12-bit sequence space).
    nic_drain_us: int = 6 * MS

    #: Extra ESNR margin (dB) a challenger AP must beat the incumbent
    #: by; small, to suppress flapping on measurement noise.
    switch_margin_db: float = 1.5

    #: BA-response jitter APs apply (µs); §5.3.2 observes the interval
    #: between the last MPDU and the BA varying by microseconds, which
    #: is what keeps everyone-answers block ACKs from colliding.
    ba_response_jitter_us: int = 16

    #: One-way latency modelling the in-building content server (§5.1
    #: caches content locally to exclude Internet latency).
    server_latency_us: int = 1 * MS

    # -- controller high availability (HA extension) ------------------

    #: Master switch for the controller HA subsystem.  When False (the
    #: default) nothing changes: no standby is built, no controller
    #: heartbeats are broadcast, no checkpoints are shipped — runs are
    #: bit-identical to the pre-HA simulator.
    ha_enabled: bool = False

    #: Backhaul id of the warm-standby controller.
    standby_id: str = "controller-b"

    #: Primary → array "ctrl-heartbeat" broadcast period.  Both the
    #: standby (promotion trigger) and every AP (buffer-and-hold
    #: trigger) watch this stream.
    controller_heartbeat_interval_us: int = 20 * MS

    #: Consecutive missed controller heartbeats before the standby
    #: promotes itself / an AP enters buffer-and-hold.
    controller_miss_limit: int = 3

    #: How often the primary ships a full state checkpoint to the
    #: standby.  Smaller intervals bound duplicate leakage and lost
    #: packets across a failover at the cost of backhaul bytes — the
    #: ``ext_ha`` sweep measures the trade.
    checkpoint_interval_us: int = 100 * MS

    #: Bounded AP-side buffer for uplink/CSI traffic while the
    #: controller is unreachable (buffer-and-hold).  Oldest entries are
    #: dropped (and counted) when full.
    ctrl_hold_buffer_slots: int = 512

    #: Cyclic-queue indices the promoted standby skips ahead on every
    #: restored cursor.  The checkpoint it restores from is up to
    #: ``checkpoint_interval_us`` stale, so the dead primary may have
    #: allocated indices past the checkpointed cursor; re-using them
    #: would overwrite undelivered slots at the APs (counted in
    #: ``overflow_drops``).  Skipping is free — cyclic-queue readers
    #: skip gaps by design — and the ``edge-report`` resync the APs
    #: send on re-home trues the cursor up exactly afterwards.
    ha_index_skid: int = 256

    # -- cyclic-queue overload guardrails -----------------------------

    #: When True, the *serving* AP signals the controller when a
    #: client's cyclic-queue pending span crosses the high watermark;
    #: the controller then paces ``accept_downlink`` (drops are
    #: explicit and counted) until the low watermark is reached.
    #: Default False so fault-free runs stay bit-identical to the
    #: pre-guardrail simulator; ``overflow_drops`` accounting in
    #: :class:`~repro.core.cyclic_queue.CyclicQueue` is always on
    #: (counters never perturb behaviour).
    backpressure_enabled: bool = False

    #: Pending-span fractions of the cyclic-queue size at which the
    #: serving AP raises / clears backpressure.
    backpressure_high_ratio: float = 0.75
    backpressure_low_ratio: float = 0.50

    # -- admission control (soak extension) ---------------------------

    #: When True the controller runs per-client fair pacing on the
    #: downlink ingress: each client gets a token bucket, over-rate
    #: packets park in a bounded per-client pacing queue, and a
    #: deterministic round-robin release timer drains the queues as
    #: tokens refill.  This upgrades the PR 3 watermark backpressure
    #: (which *drops* while paced) into shaping: while a client is
    #: backpressured its pacing queue holds packets instead of the
    #: controller discarding them.  Default False — the admission path
    #: is never consulted and runs stay bit-identical to the
    #: pre-admission simulator.
    admission_enabled: bool = False

    #: Per-client sustained admission rate, packets per second.
    admission_rate_pps: int = 2000

    #: Token-bucket burst depth, packets.  A bucket starts full.
    admission_burst: int = 64

    #: Bounded per-client pacing queue (packets).  Drop-tail beyond
    #: this; drops are explicit (``admission_dropped``), never silent.
    admission_queue_slots: int = 256

    #: Round-robin release cadence while any pacing queue is backlogged.
    admission_release_interval_us: int = 1 * MS

    # -- ablation switches (all paper-default True/median) ------------

    #: Forward overheard block ACKs to the serving AP (§3.2.1).
    ba_forwarding_enabled: bool = True

    #: Fan downlink packets out to all candidate APs (§3.1.2). False
    #: sends only to the serving AP — handovers then start cold, which
    #: is what the cyclic-queue pre-placement design exists to avoid.
    fanout_enabled: bool = True

    #: Statistic the selector compares across APs: "median" (paper),
    #: "mean", or "latest".
    selection_metric: str = "median"

    @property
    def cyclic_queue_size(self) -> int:
        return 1 << self.index_bits
