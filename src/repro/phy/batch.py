"""Batched PHY kernels: whole link sets through the LUTs in one pass.

The scalar entry points in :mod:`repro.phy.esnr` / :mod:`repro.phy.per`
evaluate one ``(56,)`` snapshot per Python call.  A frame completion on
the shared medium, a CSI fan-out, or an oracle capacity probe needs the
same quantities for *every* receiver at one instant — a
``(n_links, 56)`` stack.  This module runs those stacks through the
same uniform-grid gather kernels (:class:`repro.phy.lut.ModulationLut`)
in one set of numpy ops.

**Equivalence contract**: every function here is bit-identical, element
for element, to mapping its scalar counterpart over the rows — the
heavy elementwise stages (grid gather, ``log10``, ``power``,
``add.reduce(axis=-1)``) produce the same bits on a 2-D stack as on
each 1-D row, and the cheap per-row finishing below runs the *same*
scalar helpers the scalar path runs (``math.log10`` wideband check,
scalar BER lookup, ``(1-ber)**n``).  ``tests/test_phy_batch.py`` sweeps
random link counts, modulations and NaN/±inf inputs to hold both paths
together, and to the scipy ``*_exact`` oracles.

The ``prewarm_*`` entry points seed the bounded identity memos of
:mod:`repro.phy.per`, so the per-frame scalar calls the MAC makes
afterwards (`preamble_success_probability`, `coded_ber`, …) collapse to
dictionary hits on exactly the values the scalar path would have
computed.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.esnr import DEFAULT_MODULATION, ESNR_CAP_DB
from repro.phy.lut import ber_at_snr_db_lut, lut_for
from repro.phy.mcs import CODING_GAIN_DB, MCS_TABLE, Mcs
from repro.phy.per import (
    _PREAMBLE_BITS,
    PREAMBLE_SNR_FLOOR_DB,
    seed_coded_ber,
    seed_effective_snr_db,
    seed_preamble_success,
    seed_rssi_offset,
)

__all__ = [
    "effective_snr_db_batch",
    "mean_ber_batch",
    "coded_ber_batch",
    "preamble_success_batch",
    "mpdu_payload_success_batch",
    "rssi_offset_batch",
    "prewarm_receivers",
    "prewarm_best_rate",
]


def _as_matrix(subcarrier_snr_db) -> np.ndarray:
    matrix = np.asarray(subcarrier_snr_db, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return matrix


def effective_snr_db_batch(
    subcarrier_snr_db,
    modulation: str = DEFAULT_MODULATION,
    capped: bool = True,
) -> np.ndarray:
    """Effective SNR (dB) for a ``(n_links, n_subcarriers)`` stack.

    ``capped=True`` matches :func:`repro.phy.esnr.effective_snr_db`
    (including its NaN-maps-to-cap ternary); ``capped=False`` matches
    the uncapped LUT path (:func:`repro.phy.lut.effective_snr_db_lut`).
    """
    matrix = _as_matrix(subcarrier_snr_db)
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(matrix)
    mean = np.add.reduce(ber, axis=-1) / matrix.shape[-1]
    esnr = lut.snr_db_for_ber_batch(mean)
    if capped:
        # np.where — not np.minimum — to match the scalar ternary
        # ``esnr if esnr < CAP else CAP`` bitwise (NaN takes the cap).
        esnr = np.where(esnr < ESNR_CAP_DB, esnr, ESNR_CAP_DB)
    return esnr


def mean_ber_batch(
    subcarrier_snr_db,
    modulation: str,
    coding_gain_db: float = 0.0,
) -> np.ndarray:
    """Row-wise :func:`repro.phy.lut.mean_ber_lut`."""
    matrix = _as_matrix(subcarrier_snr_db)
    if coding_gain_db:
        matrix = matrix + coding_gain_db
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(matrix)
    return np.add.reduce(ber, axis=-1) / matrix.shape[-1]


def coded_ber_batch(
    subcarrier_snr_db, mcs: Mcs
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`repro.phy.per.coded_ber`.

    Returns ``(coded_ber, esnr_db)`` — the per-row uncapped effective
    SNR is computed on the way and callers (the prewarm below) want to
    seed it too.
    """
    matrix = _as_matrix(subcarrier_snr_db)
    gain_db = CODING_GAIN_DB[mcs.coding_rate]
    esnr = effective_snr_db_batch(matrix, mcs.modulation, capped=False)
    values = np.empty(len(esnr))
    modulation = mcs.modulation
    for i in range(len(esnr)):
        # Same scalar lookup the memo path runs — float(np.float64)
        # round-trips bitwise.
        values[i] = ber_at_snr_db_lut(modulation, float(esnr[i]) + gain_db)
    return values, esnr


def preamble_success_batch(
    subcarrier_snr_db,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`repro.phy.per.preamble_success_probability`.

    Returns ``(p_preamble, bpsk_esnr_db)``; the BPSK effective SNR is
    evaluated for every row (the scalar path skips it below the
    wideband floor, but computing it never changes a value — only the
    memo seeds).
    """
    matrix = _as_matrix(subcarrier_snr_db)
    linear = np.power(10.0, matrix * 0.1)
    wideband = np.add.reduce(linear, axis=-1) / matrix.shape[-1]
    esnr = effective_snr_db_batch(matrix, "bpsk", capped=False)
    gain_db = CODING_GAIN_DB[1 / 2]
    # One vectorized LUT gather for every row's BER; the batch kernel
    # is bit-identical to the scalar lookup (tests/test_phy_batch.py),
    # and ``esnr + gain_db`` is the same IEEE add the scalar path does.
    bers = lut_for("bpsk").ber_of_db_batch(esnr + gain_db)
    out = np.empty(len(wideband))
    for i in range(len(wideband)):
        wideband_db = 10.0 * math.log10(max(float(wideband[i]), 1e-12))
        if wideband_db < PREAMBLE_SNR_FLOOR_DB:
            out[i] = 0.0
        else:
            # scalar ``**`` finishing — same op the scalar path runs
            out[i] = (1.0 - float(bers[i])) ** _PREAMBLE_BITS
    return out, esnr


def mpdu_payload_success_batch(
    subcarrier_snr_db, mcs: Mcs, length_bytes: int
) -> np.ndarray:
    """Row-wise :func:`repro.phy.per.mpdu_payload_success_probability`."""
    coded, _esnr = coded_ber_batch(subcarrier_snr_db, mcs)
    bits = 8 * int(length_bytes)
    out = np.empty(len(coded))
    for i in range(len(coded)):
        ber = float(coded[i])
        if ber >= 1.0:
            out[i] = 0.0
        else:
            out[i] = math.exp(bits * math.log1p(-min(ber, 0.999999)))
    return out


def rssi_offset_batch(subcarrier_snr_db) -> np.ndarray:
    """Row-wise :func:`repro.phy.per.wideband_rssi_offset_db`."""
    matrix = _as_matrix(subcarrier_snr_db)
    powers = 10.0 ** (matrix / 10.0)
    linear = np.add.reduce(powers, axis=-1) / matrix.shape[-1]
    out = np.empty(len(linear))
    for i in range(len(linear)):
        out[i] = 10.0 * math.log10(max(float(linear[i]), 1e-12))
    return out


# ----------------------------------------------------------------------
# memo prewarm (the medium's contention-domain batching layer)
# ----------------------------------------------------------------------


#: Below this preamble success probability a receiver's data / CSI
#: follow-up work is, for prewarming purposes, unreachable: the MAC
#: gates everything downstream on a ``draw < p`` preamble check.  Rows
#: under the threshold are simply not pre-seeded — on the (vanishingly
#: rare) draw that still passes, the scalar memo-miss path computes
#: the identical values.  Perf heuristic only; never changes a value.
PREWARM_MIN_PREAMBLE_P = 1e-9


def prewarm_receivers(
    rows: Sequence[np.ndarray],
    data_mcs: Optional[Mcs] = None,
    data_indices: Sequence[int] = (),
    csi_indices: Sequence[int] = (),
) -> None:
    """Batch-evaluate one completed transmission's receiver set and
    seed the :mod:`repro.phy.per` identity memos.

    ``rows`` are the *final* per-receiver snapshot arrays — the exact
    objects the MAC will hand to ``device.on_air_frame`` (interference
    penalties already applied) — because the memos key on object
    identity.  ``data_indices`` selects rows whose receiver will decode
    the payload (coded BER at ``data_mcs``); ``csi_indices`` selects
    rows whose receiver will take a CSI measurement (reference-
    modulation ESNR + wideband RSSI).  Sub-batches only cover rows the
    MAC can actually reach (see :data:`PREWARM_MIN_PREAMBLE_P`).

    The medium calls this with *no* index sets — preamble-only.  The
    preamble is evaluated unconditionally by every receiver, so the
    stacked kernel amortizes across the whole contention domain; the
    draw-gated data / CSI follow-ups measured cheaper left to the lazy
    memoized scalar path (see docs/performance.md).  The index-driven
    seeding remains for callers whose consumption is unconditional.
    """
    n_rows = len(rows)
    matrix = np.empty((n_rows, rows[0].shape[0]))
    for i, row in enumerate(rows):
        matrix[i] = row
    preamble, _bpsk_esnr = preamble_success_batch(matrix)
    for i, row in enumerate(rows):
        seed_preamble_success(row, float(preamble[i]))
    data_idx = [
        i
        for i in data_indices
        if preamble[i] >= PREWARM_MIN_PREAMBLE_P
    ]
    csi_idx = [
        i for i in csi_indices if preamble[i] >= PREWARM_MIN_PREAMBLE_P
    ]
    if data_mcs is None:
        data_idx = []

    def esnr_rows(modulation: str, idx: List[int]) -> np.ndarray:
        sub = matrix if len(idx) == n_rows else matrix[idx]
        return effective_snr_db_batch(sub, modulation, capped=False)

    data_esnr: Optional[np.ndarray] = None
    if data_idx:
        modulation = data_mcs.modulation
        data_esnr = esnr_rows(modulation, data_idx)
        gain_db = CODING_GAIN_DB[data_mcs.coding_rate]
        for j, i in enumerate(data_idx):
            esnr_db = float(data_esnr[j])
            seed_effective_snr_db(rows[i], modulation, esnr_db)
            seed_coded_ber(
                rows[i],
                data_mcs,
                ber_at_snr_db_lut(modulation, esnr_db + gain_db),
            )
    if csi_idx:
        if (
            data_esnr is not None
            and data_mcs.modulation == DEFAULT_MODULATION
            and data_idx == csi_idx
        ):
            esnr_ref = data_esnr  # same rows, same modulation: reuse
        else:
            esnr_ref = esnr_rows(DEFAULT_MODULATION, csi_idx)
        offsets = rssi_offset_batch(
            matrix if len(csi_idx) == n_rows else matrix[csi_idx]
        )
        for j, i in enumerate(csi_idx):
            seed_effective_snr_db(
                rows[i], DEFAULT_MODULATION, float(esnr_ref[j])
            )
            seed_rssi_offset(rows[i], float(offsets[j]))


def prewarm_best_rate(rows: Sequence[np.ndarray]) -> None:
    """Seed everything :func:`repro.phy.per.best_rate_bps` touches for a
    stack of probe snapshots: the preamble term plus the uncapped ESNR
    of every modulation in the MCS table (for rows whose preamble term
    is nonzero — ``best_rate_bps`` returns early otherwise).  The
    subsequent per-row ``best_rate_bps`` calls then reduce to memo hits
    plus cheap scalar finishing."""
    n_rows = len(rows)
    if not n_rows:
        return
    matrix = np.empty((n_rows, rows[0].shape[0]))
    for i, row in enumerate(rows):
        matrix[i] = row
    preamble, _bpsk_esnr = preamble_success_batch(matrix)
    for i, row in enumerate(rows):
        seed_preamble_success(row, float(preamble[i]))
    idx = [i for i in range(n_rows) if preamble[i] > 0.0]
    if not idx:
        return
    sub = matrix if len(idx) == n_rows else matrix[idx]
    seen: set = set()
    for mcs in MCS_TABLE:
        if mcs.modulation in seen:
            continue
        seen.add(mcs.modulation)
        esnr = effective_snr_db_batch(sub, mcs.modulation, capped=False)
        for j, i in enumerate(idx):
            seed_effective_snr_db(rows[i], mcs.modulation, float(esnr[j]))
