"""Packet-error model: from per-subcarrier SNR to delivery probability.

An MPDU of ``L`` bytes at a given MCS succeeds when all its coded bits
come through:  p = (1 - ber)^(8L), where ``ber`` is the mean coded BER
across subcarriers (modulation curve + coding-gain offset). This is the
Effective-SNR delivery model of Halperin et al., evaluated directly on
the subcarrier SNRs, and it is what gives WGTT's CSI-based AP selection
its predictive power: two links with equal RSSI but different
frequency-selective fades get very different delivery probabilities.

A decode also requires the PLCP preamble/header, sent at the most
robust rate, to be received; below a small SNR floor nothing decodes.

Hot path: all non-linear maps are served from the log-domain lookup
tables in :mod:`repro.phy.lut`, and the per-aggregate quantities
(coded BER, preamble success) carry one-slot *identity* memos: the MAC
evaluates the same SNR snapshot once per subframe of an A-MPDU, so
keying on the array object itself (a live reference is held, making
``id`` reuse impossible) collapses those repeats to a single
computation.  SNR arrays are treated as immutable throughout the
simulator — derived quantities always allocate fresh arrays.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.phy.lut import ber_at_snr_db_lut, interp as _interp, lut_for
from repro.phy.lut import _SNR_GRID_DB as _GRID  # shared forward grid
from repro.phy.mcs import CODING_GAIN_DB, Mcs

#: Below this wideband SNR (dB) the preamble itself is undetectable.
PREAMBLE_SNR_FLOOR_DB = -1.0
#: Preamble length in bits at the 6 Mbit/s base rate (for its own BER check).
_PREAMBLE_BITS = 192

#: One-slot identity memos (array-object keyed; see module docstring).
_coded_ber_memo: Optional[Tuple[np.ndarray, Mcs, float]] = None
_preamble_memo: Optional[Tuple[np.ndarray, float]] = None
_esnr_db_memo: Optional[Tuple[np.ndarray, str, float]] = None


def _effective_snr_db_memo(subcarrier_snr_db: np.ndarray, modulation: str) -> float:
    """Uncapped LUT effective SNR with a one-slot identity memo."""
    global _esnr_db_memo
    memo = _esnr_db_memo
    if (
        memo is not None
        and memo[0] is subcarrier_snr_db
        and memo[1] == modulation
    ):
        return memo[2]
    lut = lut_for(modulation)
    ber = _interp(subcarrier_snr_db, _GRID, lut.ber)
    mean = float(np.add.reduce(ber)) / ber.shape[0]
    esnr_db = lut.snr_db_for_ber(mean)
    if isinstance(subcarrier_snr_db, np.ndarray):
        _esnr_db_memo = (subcarrier_snr_db, modulation, esnr_db)
    return esnr_db


def coded_ber(subcarrier_snr_db: np.ndarray, mcs: Mcs) -> float:
    """Post-FEC BER for this MCS on a frequency-selective channel.

    Per Halperin et al.: collapse the subcarrier SNRs to the effective
    SNR for this MCS's *modulation* (uncoded mean-BER inversion), then
    evaluate the coded link at that single AWGN-equivalent point. The
    convolutional code and interleaver operate across the whole band,
    so coding is credited after the collapse, not per subcarrier.
    """
    global _coded_ber_memo
    memo = _coded_ber_memo
    if memo is not None and memo[0] is subcarrier_snr_db and memo[1] is mcs:
        return memo[2]
    gain_db = CODING_GAIN_DB[mcs.coding_rate]
    esnr_db = _effective_snr_db_memo(subcarrier_snr_db, mcs.modulation)
    value = ber_at_snr_db_lut(mcs.modulation, esnr_db + gain_db)
    if isinstance(subcarrier_snr_db, np.ndarray):
        _coded_ber_memo = (subcarrier_snr_db, mcs, value)
    return value


def preamble_success_probability(subcarrier_snr_db: np.ndarray) -> float:
    """Probability the PLCP preamble + header decode (BPSK 1/2)."""
    global _preamble_memo
    memo = _preamble_memo
    if memo is not None and memo[0] is subcarrier_snr_db:
        return memo[1]
    arr = np.asarray(subcarrier_snr_db, dtype=float)
    linear = np.power(10.0, arr * 0.1)
    # add.reduce/n is what np.mean computes, minus the dispatch layer.
    wideband_linear = float(np.add.reduce(linear)) / linear.shape[0]
    wideband_db = 10.0 * math.log10(max(wideband_linear, 1e-12))
    if wideband_db < PREAMBLE_SNR_FLOOR_DB:
        value = 0.0
    else:
        esnr_db = _effective_snr_db_memo(subcarrier_snr_db, "bpsk")
        ber = ber_at_snr_db_lut("bpsk", esnr_db + CODING_GAIN_DB[1 / 2])
        value = (1.0 - ber) ** _PREAMBLE_BITS
    if isinstance(subcarrier_snr_db, np.ndarray):
        _preamble_memo = (subcarrier_snr_db, value)
    return value


def mpdu_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Probability one MPDU of ``length_bytes`` delivers at ``mcs``.

    Includes the preamble detection term, so it is a complete
    per-transmission delivery probability. Within one A-MPDU the
    preamble is shared; :mod:`repro.mac` draws the preamble once per
    aggregate and this per-MPDU term for each subframe, using
    :func:`mpdu_payload_success_probability`.
    """
    return preamble_success_probability(
        subcarrier_snr_db
    ) * mpdu_payload_success_probability(subcarrier_snr_db, mcs, length_bytes)


def mpdu_payload_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Payload-only success term (preamble handled separately)."""
    ber = coded_ber(subcarrier_snr_db, mcs)
    if ber >= 1.0:
        return 0.0
    bits = 8 * int(length_bytes)
    # log-domain to survive long frames at moderate BER
    return math.exp(bits * math.log1p(-min(ber, 0.999999)))


def expected_throughput_bps(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int = 1500
) -> float:
    """Delivery-probability-weighted PHY rate; the link 'capacity' metric.

    Used by the capacity-loss analyses (Figures 4 and 21): the best AP
    at an instant is the one maximizing this quantity over the MCS set.
    """
    return mcs.data_rate_bps * mpdu_success_probability(
        subcarrier_snr_db, mcs, length_bytes
    )


def best_rate_bps(subcarrier_snr_db: np.ndarray, length_bytes: int = 1500) -> float:
    """max over the MCS table of :func:`expected_throughput_bps`."""
    from repro.phy.mcs import MCS_TABLE

    preamble = preamble_success_probability(subcarrier_snr_db)
    if preamble == 0.0:
        return 0.0
    return preamble * max(
        mcs.data_rate_bps
        * mpdu_payload_success_probability(subcarrier_snr_db, mcs, length_bytes)
        for mcs in MCS_TABLE
    )
