"""Packet-error model: from per-subcarrier SNR to delivery probability.

An MPDU of ``L`` bytes at a given MCS succeeds when all its coded bits
come through:  p = (1 - ber)^(8L), where ``ber`` is the mean coded BER
across subcarriers (modulation curve + coding-gain offset). This is the
Effective-SNR delivery model of Halperin et al., evaluated directly on
the subcarrier SNRs, and it is what gives WGTT's CSI-based AP selection
its predictive power: two links with equal RSSI but different
frequency-selective fades get very different delivery probabilities.

A decode also requires the PLCP preamble/header, sent at the most
robust rate, to be received; below a small SNR floor nothing decodes.

Hot path: all non-linear maps are served from the log-domain lookup
tables in :mod:`repro.phy.lut`, and the per-aggregate quantities
(effective SNR, coded BER, preamble success) carry bounded *identity*
memos: the MAC evaluates the same SNR snapshot once per subframe of an
A-MPDU, and the batched medium path (:mod:`repro.phy.batch`) pre-seeds
the same memos for every receiver of a completed transmission, so the
per-frame entry points below collapse to dictionary hits.  Keys embed
``id()`` of the snapshot array; a strong reference to the array is held
in each entry, making ``id`` reuse impossible while the entry lives.
The memos are LRU-bounded (:data:`PHY_MEMO_CAPACITY`) so hour-long
soak runs cannot grow them without limit, and hit/miss/eviction
counters are exported through :func:`phy_memo_stats` (the testbed
registers them with the ``MetricsRegistry``).  SNR arrays are treated
as immutable throughout the simulator — derived quantities always
allocate fresh arrays.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Dict, Tuple

import numpy as np

from repro.phy.esnr import DEFAULT_MODULATION, ESNR_CAP_DB
from repro.phy.lut import ber_at_snr_db_lut, lut_for
from repro.phy.mcs import CODING_GAIN_DB, Mcs

#: Below this wideband SNR (dB) the preamble itself is undetectable.
PREAMBLE_SNR_FLOOR_DB = -1.0
#: Preamble length in bits at the 6 Mbit/s base rate (for its own BER check).
_PREAMBLE_BITS = 192

#: Entry cap for each identity memo below.  A snapshot batch touches at
#: most ~#receivers × #modulations entries, so 128 comfortably covers a
#: full medium completion plus the controller's follow-up reads while
#: keeping worst-case growth bounded for soak runs.
PHY_MEMO_CAPACITY = 128


class _IdentityLru:
    """Bounded identity-keyed memo with hit/miss/eviction counters.

    Keys embed ``id()`` of a live array; each entry holds a strong
    reference to that array (and any other identity-keyed operand), so
    a key collision with a *different* object is impossible — CPython
    cannot recycle the id of an object the entry keeps alive.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int = PHY_MEMO_CAPACITY):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Any, Tuple[Any, ...]]" = OrderedDict()

    def get(self, key: Any) -> Any:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return entry

    def put(self, key: Any, entry: Tuple[Any, ...]) -> None:
        data = self._data
        if key in data:
            data[key] = entry
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = entry  # fresh keys insert at the recent end already

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: value: (snr_array, esnr_db) keyed by (id(array), modulation)
_esnr_memo = _IdentityLru()
#: value: (snr_array, mcs, coded_ber) keyed by (id(array), id(mcs))
_coded_memo = _IdentityLru()
#: value: (snr_array, p_preamble) keyed by id(array)
_preamble_memo_lru = _IdentityLru()
#: value: (snr_array, offset_db) keyed by id(array)
_rssi_memo = _IdentityLru()


def phy_memo_stats() -> Dict[str, Dict[str, int]]:
    """Counters for the bounded PHY memos (for the obs collectors)."""
    return {
        "esnr": _esnr_memo.stats(),
        "coded_ber": _coded_memo.stats(),
        "preamble": _preamble_memo_lru.stats(),
        "rssi": _rssi_memo.stats(),
    }


def reset_phy_memos() -> None:
    """Drop all memo entries (counters survive; tests use this)."""
    _esnr_memo.clear()
    _coded_memo.clear()
    _preamble_memo_lru.clear()
    _rssi_memo.clear()


def reset_phy_memo_stats() -> None:
    """Zero the hit/miss/eviction counters (entries untouched).

    The soak harness calls this alongside :func:`reset_phy_memos` so
    that two same-seed runs in one process stream byte-identical
    telemetry — the counters are process-lifetime by default and would
    otherwise carry the first run's totals into the second.
    """
    for memo in (_esnr_memo, _coded_memo, _preamble_memo_lru, _rssi_memo):
        memo.hits = 0
        memo.misses = 0
        memo.evictions = 0


# ----------------------------------------------------------------------
# batch prewarm hooks (repro.phy.batch seeds these after a fused
# multi-link evaluation so the per-frame scalar entry points hit)
# ----------------------------------------------------------------------


def seed_effective_snr_db(
    subcarrier_snr_db: np.ndarray, modulation: str, esnr_db: float
) -> None:
    _esnr_memo.put(
        (id(subcarrier_snr_db), modulation), (subcarrier_snr_db, esnr_db)
    )


def seed_coded_ber(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, value: float
) -> None:
    _coded_memo.put(
        (id(subcarrier_snr_db), id(mcs)), (subcarrier_snr_db, mcs, value)
    )


def seed_preamble_success(
    subcarrier_snr_db: np.ndarray, value: float
) -> None:
    _preamble_memo_lru.put(id(subcarrier_snr_db), (subcarrier_snr_db, value))


def seed_rssi_offset(subcarrier_snr_db: np.ndarray, value: float) -> None:
    _rssi_memo.put(id(subcarrier_snr_db), (subcarrier_snr_db, value))


def wideband_rssi_offset_db(subcarrier_snr_db: np.ndarray) -> float:
    """Wideband fading+SNR offset over the noise floor, in dB.

    ``NOISE_FLOOR_DBM + offset`` is the instantaneous RSSI a receiver
    reports for this snapshot (see ``WifiDevice._rssi_from_snr``).
    Factored here so the batched CSI fan-out can pre-seed it.
    """
    entry = _rssi_memo.get(id(subcarrier_snr_db))
    if entry is not None:
        return entry[1]
    powers = 10.0 ** (np.asarray(subcarrier_snr_db) / 10.0)
    linear = float(np.add.reduce(powers)) / powers.shape[0]
    value = 10.0 * math.log10(max(linear, 1e-12))
    if isinstance(subcarrier_snr_db, np.ndarray):
        _rssi_memo.put(id(subcarrier_snr_db), (subcarrier_snr_db, value))
    return value


def _effective_snr_db_memo(subcarrier_snr_db: np.ndarray, modulation: str) -> float:
    """Uncapped LUT effective SNR with a bounded identity memo."""
    key = (id(subcarrier_snr_db), modulation)
    entry = _esnr_memo.get(key)
    if entry is not None:
        return entry[1]
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(subcarrier_snr_db)
    mean = float(np.add.reduce(ber)) / ber.shape[0]
    esnr_db = lut.snr_db_for_ber(mean)
    if isinstance(subcarrier_snr_db, np.ndarray):
        _esnr_memo.put(key, (subcarrier_snr_db, esnr_db))
    return esnr_db


def effective_snr_db_memoized(
    subcarrier_snr_db: np.ndarray, modulation: str = DEFAULT_MODULATION
) -> float:
    """Capped effective SNR served through the bounded identity memo.

    Bit-identical to :func:`repro.phy.esnr.effective_snr_db` (same
    kernels, same cap ternary); the CSI path uses this entry point so a
    report whose snapshot was pre-seeded by the batched medium resolves
    without recomputing the LUT collapse.
    """
    esnr_db = _effective_snr_db_memo(subcarrier_snr_db, modulation)
    return esnr_db if esnr_db < ESNR_CAP_DB else ESNR_CAP_DB


def coded_ber(subcarrier_snr_db: np.ndarray, mcs: Mcs) -> float:
    """Post-FEC BER for this MCS on a frequency-selective channel.

    Per Halperin et al.: collapse the subcarrier SNRs to the effective
    SNR for this MCS's *modulation* (uncoded mean-BER inversion), then
    evaluate the coded link at that single AWGN-equivalent point. The
    convolutional code and interleaver operate across the whole band,
    so coding is credited after the collapse, not per subcarrier.
    """
    key = (id(subcarrier_snr_db), id(mcs))
    entry = _coded_memo.get(key)
    if entry is not None:
        return entry[2]
    gain_db = CODING_GAIN_DB[mcs.coding_rate]
    esnr_db = _effective_snr_db_memo(subcarrier_snr_db, mcs.modulation)
    value = ber_at_snr_db_lut(mcs.modulation, esnr_db + gain_db)
    if isinstance(subcarrier_snr_db, np.ndarray):
        _coded_memo.put(key, (subcarrier_snr_db, mcs, value))
    return value


def preamble_success_probability(subcarrier_snr_db: np.ndarray) -> float:
    """Probability the PLCP preamble + header decode (BPSK 1/2)."""
    entry = _preamble_memo_lru.get(id(subcarrier_snr_db))
    if entry is not None:
        return entry[1]
    arr = np.asarray(subcarrier_snr_db, dtype=float)
    linear = np.power(10.0, arr * 0.1)
    # add.reduce/n is what np.mean computes, minus the dispatch layer.
    wideband_linear = float(np.add.reduce(linear)) / linear.shape[0]
    wideband_db = 10.0 * math.log10(max(wideband_linear, 1e-12))
    if wideband_db < PREAMBLE_SNR_FLOOR_DB:
        value = 0.0
    else:
        esnr_db = _effective_snr_db_memo(subcarrier_snr_db, "bpsk")
        ber = ber_at_snr_db_lut("bpsk", esnr_db + CODING_GAIN_DB[1 / 2])
        value = (1.0 - ber) ** _PREAMBLE_BITS
    if isinstance(subcarrier_snr_db, np.ndarray):
        _preamble_memo_lru.put(
            id(subcarrier_snr_db), (subcarrier_snr_db, value)
        )
    return value


def mpdu_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Probability one MPDU of ``length_bytes`` delivers at ``mcs``.

    Includes the preamble detection term, so it is a complete
    per-transmission delivery probability. Within one A-MPDU the
    preamble is shared; :mod:`repro.mac` draws the preamble once per
    aggregate and this per-MPDU term for each subframe, using
    :func:`mpdu_payload_success_probability`.
    """
    return preamble_success_probability(
        subcarrier_snr_db
    ) * mpdu_payload_success_probability(subcarrier_snr_db, mcs, length_bytes)


def mpdu_payload_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Payload-only success term (preamble handled separately)."""
    ber = coded_ber(subcarrier_snr_db, mcs)
    if ber >= 1.0:
        return 0.0
    bits = 8 * int(length_bytes)
    # log-domain to survive long frames at moderate BER
    return math.exp(bits * math.log1p(-min(ber, 0.999999)))


def expected_throughput_bps(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int = 1500
) -> float:
    """Delivery-probability-weighted PHY rate; the link 'capacity' metric.

    Used by the capacity-loss analyses (Figures 4 and 21): the best AP
    at an instant is the one maximizing this quantity over the MCS set.
    """
    return mcs.data_rate_bps * mpdu_success_probability(
        subcarrier_snr_db, mcs, length_bytes
    )


def best_rate_bps(subcarrier_snr_db: np.ndarray, length_bytes: int = 1500) -> float:
    """max over the MCS table of :func:`expected_throughput_bps`."""
    from repro.phy.mcs import MCS_TABLE

    preamble = preamble_success_probability(subcarrier_snr_db)
    if preamble == 0.0:
        return 0.0
    return preamble * max(
        mcs.data_rate_bps
        * mpdu_payload_success_probability(subcarrier_snr_db, mcs, length_bytes)
        for mcs in MCS_TABLE
    )
