"""Packet-error model: from per-subcarrier SNR to delivery probability.

An MPDU of ``L`` bytes at a given MCS succeeds when all its coded bits
come through:  p = (1 - ber)^(8L), where ``ber`` is the mean coded BER
across subcarriers (modulation curve + coding-gain offset). This is the
Effective-SNR delivery model of Halperin et al., evaluated directly on
the subcarrier SNRs, and it is what gives WGTT's CSI-based AP selection
its predictive power: two links with equal RSSI but different
frequency-selective fades get very different delivery probabilities.

A decode also requires the PLCP preamble/header, sent at the most
robust rate, to be received; below a small SNR floor nothing decodes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.phy.mcs import CODING_GAIN_DB, Mcs

#: Below this wideband SNR (dB) the preamble itself is undetectable.
PREAMBLE_SNR_FLOOR_DB = -1.0
#: Preamble length in bits at the 6 Mbit/s base rate (for its own BER check).
_PREAMBLE_BITS = 192


def coded_ber(subcarrier_snr_db: np.ndarray, mcs: Mcs) -> float:
    """Post-FEC BER for this MCS on a frequency-selective channel.

    Per Halperin et al.: collapse the subcarrier SNRs to the effective
    SNR for this MCS's *modulation* (uncoded mean-BER inversion), then
    evaluate the coded link at that single AWGN-equivalent point. The
    convolutional code and interleaver operate across the whole band,
    so coding is credited after the collapse, not per subcarrier.
    """
    from repro.phy.ber import BER_BY_MODULATION, linear_to_db
    from repro.phy.esnr import effective_snr_linear

    gain_db = CODING_GAIN_DB[mcs.coding_rate]
    esnr_linear = effective_snr_linear(subcarrier_snr_db, mcs.modulation)
    esnr_db = float(linear_to_db(esnr_linear))
    coded_point = 10.0 ** ((esnr_db + gain_db) / 10.0)
    return float(BER_BY_MODULATION[mcs.modulation](coded_point))


def preamble_success_probability(subcarrier_snr_db: np.ndarray) -> float:
    """Probability the PLCP preamble + header decode (BPSK 1/2)."""
    wideband_db = 10.0 * math.log10(
        max(float(np.mean(10.0 ** (np.asarray(subcarrier_snr_db) / 10.0))), 1e-12)
    )
    if wideband_db < PREAMBLE_SNR_FLOOR_DB:
        return 0.0
    from repro.phy.ber import ber_bpsk, linear_to_db
    from repro.phy.esnr import effective_snr_linear

    esnr_db = float(linear_to_db(effective_snr_linear(subcarrier_snr_db, "bpsk")))
    coded_point = 10.0 ** ((esnr_db + CODING_GAIN_DB[1 / 2]) / 10.0)
    ber = float(ber_bpsk(coded_point))
    return (1.0 - ber) ** _PREAMBLE_BITS


def mpdu_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Probability one MPDU of ``length_bytes`` delivers at ``mcs``.

    Includes the preamble detection term, so it is a complete
    per-transmission delivery probability. Within one A-MPDU the
    preamble is shared; :mod:`repro.mac` draws the preamble once per
    aggregate and this per-MPDU term for each subframe, using
    :func:`mpdu_payload_success_probability`.
    """
    return preamble_success_probability(
        subcarrier_snr_db
    ) * mpdu_payload_success_probability(subcarrier_snr_db, mcs, length_bytes)


def mpdu_payload_success_probability(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int
) -> float:
    """Payload-only success term (preamble handled separately)."""
    ber = coded_ber(subcarrier_snr_db, mcs)
    if ber >= 1.0:
        return 0.0
    bits = 8 * int(length_bytes)
    # log-domain to survive long frames at moderate BER
    return math.exp(bits * math.log1p(-min(ber, 0.999999)))


def expected_throughput_bps(
    subcarrier_snr_db: np.ndarray, mcs: Mcs, length_bytes: int = 1500
) -> float:
    """Delivery-probability-weighted PHY rate; the link 'capacity' metric.

    Used by the capacity-loss analyses (Figures 4 and 21): the best AP
    at an instant is the one maximizing this quantity over the MCS set.
    """
    return mcs.data_rate_bps * mpdu_success_probability(
        subcarrier_snr_db, mcs, length_bytes
    )


def best_rate_bps(subcarrier_snr_db: np.ndarray, length_bytes: int = 1500) -> float:
    """max over the MCS table of :func:`expected_throughput_bps`."""
    from repro.phy.mcs import MCS_TABLE

    return max(
        expected_throughput_bps(subcarrier_snr_db, mcs, length_bytes)
        for mcs in MCS_TABLE
    )
